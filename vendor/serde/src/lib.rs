//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde` cannot be
//! fetched. This repository only ever *derives* `Serialize`/`Deserialize` and
//! hands values to `serde_json::to_string_pretty` for human-readable result
//! files — no binary formats, no deserialisation, no custom impls. The stub
//! therefore models the two traits as blanket markers:
//!
//! * [`Serialize`] requires [`core::fmt::Debug`] (every derived type in the
//!   workspace also derives `Debug`) and is implemented for all such types.
//!   The vendored `serde_json` renders values through their `Debug` output.
//! * [`Deserialize`] is a pure marker implemented for every type; nothing in
//!   the workspace deserialises.
//!
//! The derive macros re-exported from `serde_derive` emit nothing, so
//! `#[derive(Serialize, Deserialize)]` and `serde::Serialize` bounds compile
//! unchanged against this stub. Swapping the real serde back in later only
//! requires changing the `[workspace.dependencies]` entry.

use core::fmt::Debug;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for values that can be rendered by the vendored `serde_json`.
///
/// Blanket-implemented for every `Debug` type; the `Debug` representation is
/// the serialisation source.
pub trait Serialize: Debug {}

impl<T: Debug + ?Sized> Serialize for T {}

/// Marker for deserialisable values. Nothing in this workspace deserialises,
/// so the trait carries no behaviour; it exists so `use serde::Deserialize`
/// and derive bounds resolve.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}
