//! Vendored minimal stand-in for `criterion`.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This stub keeps the same authoring surface the
//! workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — and implements a simple but
//! honest measurement loop: warm-up, then timed batches, reporting the median
//! batch's nanoseconds per iteration. There is no statistical analysis,
//! plotting or result persistence; swap the real criterion back in via
//! `[workspace.dependencies]` when the environment allows.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each bench spends warming up and measuring.
///
/// Tuned so a full `cargo bench` stays in seconds; override with the
/// `CRITERION_STUB_MS` environment variable (milliseconds per phase).
fn phase_budget() -> Duration {
    let ms = std::env::var("CRITERION_STUB_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Entry point handed to bench functions, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finish the group (formatting no-op in the stub).
    pub fn finish(self) {}
}

/// Measurement driver passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`: warm up, then time batches and keep the median.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let budget = phase_budget();

        // Warm-up: run until the budget elapses, learning a batch size that
        // takes roughly 1/20 of the measurement budget.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < budget {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = budget.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch =
            ((budget.as_nanos() as f64 / 20.0 / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        // Measurement: timed batches until the budget elapses.
        let mut samples = Vec::new();
        let measure_start = Instant::now();
        let mut total_iters = 0u64;
        while measure_start.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples.get(samples.len() / 2).copied().unwrap_or(per_iter);
        self.iters = warm_iters + total_iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<44} (no measurement)");
        } else if self.ns_per_iter >= 10_000.0 {
            println!(
                "{name:<44} {:>12.2} us/iter ({} iters)",
                self.ns_per_iter / 1_000.0,
                self.iters
            );
        } else {
            println!(
                "{name:<44} {:>12.1} ns/iter ({} iters)",
                self.ns_per_iter, self.iters
            );
        }
    }
}

/// Declare a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; the stub
            // has no CLI surface, so flags are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_STUB_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
