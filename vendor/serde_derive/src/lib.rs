//! Vendored stand-in for `serde_derive`.
//!
//! The build environment for this repository has no network access, so the
//! real `serde`/`serde_derive` crates cannot be fetched. The sibling `serde`
//! stub implements `Serialize`/`Deserialize` as blanket marker traits, which
//! means the derive macros have nothing to generate: they validate nothing and
//! emit an empty token stream. `#[derive(Serialize, Deserialize)]` therefore
//! compiles exactly as it would with the real crate, and the actual
//! serialisation behaviour lives in the vendored `serde_json`.

use proc_macro::TokenStream;

/// No-op derive for `serde::Serialize` (blanket-implemented in the stub).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `serde::Deserialize` (blanket-implemented in the stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
