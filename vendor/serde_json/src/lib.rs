//! Vendored minimal stand-in for `serde_json`.
//!
//! The build environment has no network access, so the real `serde_json`
//! cannot be fetched. The workspace uses exactly one entry point —
//! [`to_string_pretty`] — to persist experiment results as human-readable
//! JSON. The vendored `serde` models `Serialize` as "has a `Debug` impl", so
//! this crate serialises by rendering the value with `{:#?}` and then
//! mechanically rewriting Rust's pretty `Debug` grammar into JSON:
//!
//! * `StructName { field: v, .. }` → `{ "field": v, .. }`
//! * `TupleStruct(a, b)` / tuples → `[a, b]`
//! * unit enum variants (`FaceGsc`) and other bare idents → `"FaceGsc"`
//! * `Some(x)` → `x`, `None` → `null`, string/char literals pass through
//!
//! The rewrite understands string literals, so quoted text is never mangled.
//! It is a pragmatic bridge, not a general serialiser: it covers the shapes
//! the experiment-result structs actually have (numbers, strings, booleans,
//! vectors, nested derived structs and unit enums). Exotic `Debug` output
//! falls through as best-effort text in an otherwise valid document.

use std::fmt;

/// Error type mirroring `serde_json::Error`'s public face.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialise `value` as pretty-printed JSON.
///
/// Renders the value's `Debug` representation and rewrites it into JSON (see
/// the crate docs for the exact mapping). Infallible for the types this
/// workspace serialises; the `Result` keeps the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(debug_to_json(&format!("{value:#?}")))
}

/// Serialise `value` as compact JSON (same rewrite, single-line `Debug`).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(debug_to_json(&format!("{value:?}")))
}

/// Tokens of Rust's `Debug` grammar that matter for the JSON rewrite.
#[derive(Debug, PartialEq)]
enum Tok {
    /// `{`, `}`, `[`, `]`, `(`, `)`, `,`, `:`
    Punct(char),
    /// A bare identifier: struct/variant name, field name, `true`, `None`, ..
    Ident(String),
    /// A numeric literal, passed through verbatim.
    Number(String),
    /// A string or char literal including its original escapes.
    Str(String),
}

fn lex(input: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' | '}' | '[' | ']' | '(' | ')' | ',' | ':' => toks.push(Tok::Punct(c)),
            '"' | '\'' => {
                // A quoted literal: copy until the matching unescaped quote.
                let quote = c;
                let mut s = String::new();
                s.push('"');
                while let Some(c2) = chars.next() {
                    if c2 == '\\' {
                        s.push('\\');
                        if let Some(c3) = chars.next() {
                            s.push(c3);
                        }
                    } else if c2 == quote {
                        break;
                    } else if c2 == '"' {
                        // A double quote inside a char literal needs escaping.
                        s.push('\\');
                        s.push('"');
                    } else {
                        s.push(c2);
                    }
                }
                s.push('"');
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::from(c);
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '.' || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // `-inf` starts with '-' and lands here rather than in the
                // ident branch that handles `inf`/`NaN`.
                if s == "-inf" {
                    toks.push(Tok::Number("-1e999".to_string()));
                    continue;
                }
                // Strip type suffixes Debug sometimes emits (e.g. `1.5s` from
                // Duration) down to the leading numeric part.
                let numeric: String = s
                    .chars()
                    .take_while(|c2| c2.is_ascii_digit() || *c2 == '.' || *c2 == '-')
                    .collect();
                toks.push(Tok::Number(if numeric.is_empty() { s } else { numeric }));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::from(c);
                while let Some(&c2) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            _ => {} // whitespace and anything else is insignificant
        }
    }
    toks
}

/// Rewrite a `Debug` rendering into JSON text.
fn debug_to_json(debug: &str) -> String {
    let toks = lex(debug);
    let mut out = String::new();
    let mut indent = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Ident(name) => {
                let next = toks.get(i + 1);
                match next {
                    // `Name {` / `Name [` → drop the name, keep the delimiter.
                    Some(Tok::Punct('{')) | Some(Tok::Punct('[')) => {}
                    // `Name( ... )` → `Some`/newtype unwrapping or tuple-as-array.
                    Some(Tok::Punct('(')) => {}
                    // `field:` → `"field":`
                    Some(Tok::Punct(':')) => {
                        out.push('"');
                        out.push_str(name);
                        out.push_str("\": ");
                        i += 2;
                        continue;
                    }
                    // Bare ident value: boolean, null, or unit variant.
                    _ => match name.as_str() {
                        "true" | "false" => out.push_str(name),
                        "None" => out.push_str("null"),
                        "NaN" => out.push_str("null"),
                        "inf" => out.push_str("1e999"),
                        _ => {
                            out.push('"');
                            out.push_str(name);
                            out.push('"');
                        }
                    },
                }
            }
            Tok::Number(n) => out.push_str(n),
            Tok::Str(s) => out.push_str(s),
            Tok::Punct(p) => match p {
                '{' | '[' => {
                    out.push(if *p == '{' { '{' } else { '[' });
                    indent += 1;
                    newline(&mut out, indent);
                }
                '}' | ']' => {
                    indent = indent.saturating_sub(1);
                    newline(&mut out, indent);
                    out.push(if *p == '}' { '}' } else { ']' });
                }
                '(' => {
                    // Count the elements to decide between unwrapping a
                    // newtype (`Lsn(7)` → `7`) and a tuple (`(a, b)` → array).
                    let elems = paren_arity(&toks, i);
                    if elems != 1 {
                        out.push('[');
                        indent += 1;
                        newline(&mut out, indent);
                    }
                }
                ')' => {
                    let open = matching_open(&toks, i);
                    if paren_arity(&toks, open) != 1 {
                        indent = indent.saturating_sub(1);
                        newline(&mut out, indent);
                        out.push(']');
                    }
                }
                ',' => {
                    // Debug allows trailing commas; JSON does not.
                    let closes = matches!(
                        toks.get(i + 1),
                        Some(Tok::Punct('}'))
                            | Some(Tok::Punct(']'))
                            | Some(Tok::Punct(')'))
                            | None
                    );
                    if !closes {
                        out.push(',');
                        newline(&mut out, indent);
                    }
                }
                _ => {}
            },
        }
        i += 1;
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Number of top-level comma-separated elements inside the paren group that
/// opens at token index `open` (which must be a `(`).
fn paren_arity(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut elems = 1usize;
    let mut any = false;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t {
            Tok::Punct('(') | Tok::Punct('{') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct('}') | Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // A trailing comma (pretty `Debug` always emits one) does not
            // start a new element.
            Tok::Punct(',') if depth == 1 && !matches!(toks.get(i + 1), Some(Tok::Punct(')'))) => {
                elems += 1;
            }
            _ if depth >= 1 => any = true,
            _ => {}
        }
    }
    if any {
        elems
    } else {
        0
    }
}

/// Index of the `(` that the `)` at `close` matches.
fn matching_open(toks: &[Tok], close: usize) -> usize {
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        match toks[i] {
            Tok::Punct(')') | Tok::Punct('}') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('{') | Tok::Punct('[') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    #[allow(dead_code)]
    struct Inner {
        label: String,
        hits: u64,
    }

    #[derive(Debug)]
    #[allow(dead_code)]
    enum Kind {
        FaceGsc,
    }

    #[derive(Debug)]
    #[allow(dead_code)]
    struct Outer {
        kind: Kind,
        ratio: f64,
        on: bool,
        items: Vec<Inner>,
        missing: Option<u32>,
        present: Option<u32>,
    }

    fn parses_as_json(s: &str) {
        // A tiny structural validator: balanced delimiters, no bare idents.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
                prev = if prev == '\\' && c == '\\' { ' ' } else { c };
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced in {s}");
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced in {s}");
        assert!(!in_str, "unterminated string in {s}");
    }

    #[test]
    fn vec_of_numbers_is_json() {
        let s = to_string_pretty(&vec![1, 2, 3]).unwrap();
        parses_as_json(&s);
        assert!(s.contains('1') && s.contains('3'));
        assert!(s.trim_start().starts_with('['));
    }

    #[test]
    fn derived_struct_becomes_object() {
        let v = Outer {
            kind: Kind::FaceGsc,
            ratio: 2.5,
            on: true,
            items: vec![Inner {
                label: "FaCE +GSC {tricky}".to_string(),
                hits: 9,
            }],
            missing: None,
            present: Some(7),
        };
        let s = to_string_pretty(&v).unwrap();
        parses_as_json(&s);
        assert!(s.contains("\"kind\": \"FaceGsc\""), "{s}");
        assert!(s.contains("\"ratio\": 2.5"), "{s}");
        assert!(s.contains("\"on\": true"), "{s}");
        assert!(s.contains("\"label\": \"FaCE +GSC {tricky}\""), "{s}");
        assert!(s.contains("\"missing\": null"), "{s}");
        assert!(s.contains("\"present\": 7"), "{s}");
    }

    #[test]
    fn tuples_become_arrays() {
        let s = to_string(&(1u32, "two", 3.0f64)).unwrap();
        parses_as_json(&s);
        assert!(s.starts_with('['), "{s}");
        assert!(s.contains("\"two\""), "{s}");
    }

    #[test]
    fn float_specials_stay_parseable() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Specials {
            pos: f64,
            neg: f64,
            nan: f64,
        }
        let s = to_string_pretty(&Specials {
            pos: f64::INFINITY,
            neg: f64::NEG_INFINITY,
            nan: f64::NAN,
        })
        .unwrap();
        parses_as_json(&s);
        assert!(s.contains("\"pos\": 1e999"), "{s}");
        assert!(s.contains("\"neg\": -1e999"), "{s}");
        assert!(s.contains("\"nan\": null"), "{s}");
    }

    #[test]
    fn newtype_unwraps() {
        #[derive(Debug)]
        struct Lsn(#[allow(dead_code)] u64);
        let s = to_string(&Lsn(42)).unwrap();
        assert_eq!(s.trim(), "42");
    }
}
