//! Vendored minimal stand-in for `serde_json`.
//!
//! The build environment has no network access, so the real `serde_json`
//! cannot be fetched. The workspace uses exactly one entry point —
//! [`to_string_pretty`] — to persist experiment results as human-readable
//! JSON. The vendored `serde` models `Serialize` as "has a `Debug` impl", so
//! this crate serialises by rendering the value with `{:#?}` and then
//! mechanically rewriting Rust's pretty `Debug` grammar into JSON:
//!
//! * `StructName { field: v, .. }` → `{ "field": v, .. }`
//! * `TupleStruct(a, b)` / tuples → `[a, b]`
//! * unit enum variants (`FaceGsc`) and other bare idents → `"FaceGsc"`
//! * `Some(x)` → `x`, `None` → `null`, string/char literals pass through
//!
//! The rewrite understands string literals, so quoted text is never mangled.
//! It is a pragmatic bridge, not a general serialiser: it covers the shapes
//! the experiment-result structs actually have (numbers, strings, booleans,
//! vectors, nested derived structs and unit enums). Exotic `Debug` output
//! falls through as best-effort text in an otherwise valid document.
//!
//! The *deserialisation* side ([`from_str`] / [`Value`]) is, by contrast, a
//! complete little JSON parser: the schema checker uses it to validate the
//! committed `BENCH_*.json` files, so it must accept everything the JSON
//! grammar allows and reject everything it does not.

use std::collections::BTreeMap;
use std::fmt;

/// Error type mirroring `serde_json::Error`'s public face.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialise `value` as pretty-printed JSON.
///
/// Renders the value's `Debug` representation and rewrites it into JSON (see
/// the crate docs for the exact mapping). Infallible for the types this
/// workspace serialises; the `Result` keeps the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(debug_to_json(&format!("{value:#?}")))
}

/// Serialise `value` as compact JSON (same rewrite, single-line `Debug`).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(debug_to_json(&format!("{value:?}")))
}

/// A parsed JSON document, mirroring `serde_json::Value`'s shape for the
/// accessors this workspace uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`; the schema checker only tests
    /// presence and shape, never exact integer round-trips).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` instead of the real crate's preserving map —
    /// key order does not matter for validation.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The member under `key` if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Parse a JSON document. Strict: the whole input must be one JSON value
/// (plus surrounding whitespace), escapes must be valid, and numbers must
/// match the JSON grammar.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.insert(key, self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            elems.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            self.pos += 4;
                            // Surrogate pairs (and lone surrogates) collapse to
                            // the replacement character — the schema checker
                            // never inspects such strings.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar, however many bytes it spans.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

/// Tokens of Rust's `Debug` grammar that matter for the JSON rewrite.
#[derive(Debug, PartialEq)]
enum Tok {
    /// `{`, `}`, `[`, `]`, `(`, `)`, `,`, `:`
    Punct(char),
    /// A bare identifier: struct/variant name, field name, `true`, `None`, ..
    Ident(String),
    /// A numeric literal, passed through verbatim.
    Number(String),
    /// A string or char literal including its original escapes.
    Str(String),
}

fn lex(input: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' | '}' | '[' | ']' | '(' | ')' | ',' | ':' => toks.push(Tok::Punct(c)),
            '"' | '\'' => {
                // A quoted literal: copy until the matching unescaped quote.
                let quote = c;
                let mut s = String::new();
                s.push('"');
                while let Some(c2) = chars.next() {
                    if c2 == '\\' {
                        s.push('\\');
                        if let Some(c3) = chars.next() {
                            s.push(c3);
                        }
                    } else if c2 == quote {
                        break;
                    } else if c2 == '"' {
                        // A double quote inside a char literal needs escaping.
                        s.push('\\');
                        s.push('"');
                    } else {
                        s.push(c2);
                    }
                }
                s.push('"');
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::from(c);
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '.' || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // `-inf` starts with '-' and lands here rather than in the
                // ident branch that handles `inf`/`NaN`.
                if s == "-inf" {
                    toks.push(Tok::Number("-1e999".to_string()));
                    continue;
                }
                // Strip type suffixes Debug sometimes emits (e.g. `1.5s` from
                // Duration) down to the leading numeric part.
                let numeric: String = s
                    .chars()
                    .take_while(|c2| c2.is_ascii_digit() || *c2 == '.' || *c2 == '-')
                    .collect();
                toks.push(Tok::Number(if numeric.is_empty() { s } else { numeric }));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::from(c);
                while let Some(&c2) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            _ => {} // whitespace and anything else is insignificant
        }
    }
    toks
}

/// Rewrite a `Debug` rendering into JSON text.
fn debug_to_json(debug: &str) -> String {
    let toks = lex(debug);
    let mut out = String::new();
    let mut indent = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            Tok::Ident(name) => {
                let next = toks.get(i + 1);
                match next {
                    // `Name {` / `Name [` → drop the name, keep the delimiter.
                    Some(Tok::Punct('{')) | Some(Tok::Punct('[')) => {}
                    // `Name( ... )` → `Some`/newtype unwrapping or tuple-as-array.
                    Some(Tok::Punct('(')) => {}
                    // `field:` → `"field":`
                    Some(Tok::Punct(':')) => {
                        out.push('"');
                        out.push_str(name);
                        out.push_str("\": ");
                        i += 2;
                        continue;
                    }
                    // Bare ident value: boolean, null, or unit variant.
                    _ => match name.as_str() {
                        "true" | "false" => out.push_str(name),
                        "None" => out.push_str("null"),
                        "NaN" => out.push_str("null"),
                        "inf" => out.push_str("1e999"),
                        _ => {
                            out.push('"');
                            out.push_str(name);
                            out.push('"');
                        }
                    },
                }
            }
            Tok::Number(n) => out.push_str(n),
            Tok::Str(s) => out.push_str(s),
            Tok::Punct(p) => match p {
                '{' | '[' => {
                    out.push(if *p == '{' { '{' } else { '[' });
                    indent += 1;
                    newline(&mut out, indent);
                }
                '}' | ']' => {
                    indent = indent.saturating_sub(1);
                    newline(&mut out, indent);
                    out.push(if *p == '}' { '}' } else { ']' });
                }
                '(' => {
                    // Count the elements to decide between unwrapping a
                    // newtype (`Lsn(7)` → `7`) and a tuple (`(a, b)` → array).
                    let elems = paren_arity(&toks, i);
                    if elems != 1 {
                        out.push('[');
                        indent += 1;
                        newline(&mut out, indent);
                    }
                }
                ')' => {
                    let open = matching_open(&toks, i);
                    if paren_arity(&toks, open) != 1 {
                        indent = indent.saturating_sub(1);
                        newline(&mut out, indent);
                        out.push(']');
                    }
                }
                ',' => {
                    // Debug allows trailing commas; JSON does not.
                    let closes = matches!(
                        toks.get(i + 1),
                        Some(Tok::Punct('}'))
                            | Some(Tok::Punct(']'))
                            | Some(Tok::Punct(')'))
                            | None
                    );
                    if !closes {
                        out.push(',');
                        newline(&mut out, indent);
                    }
                }
                _ => {}
            },
        }
        i += 1;
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Number of top-level comma-separated elements inside the paren group that
/// opens at token index `open` (which must be a `(`).
fn paren_arity(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut elems = 1usize;
    let mut any = false;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t {
            Tok::Punct('(') | Tok::Punct('{') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct('}') | Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // A trailing comma (pretty `Debug` always emits one) does not
            // start a new element.
            Tok::Punct(',') if depth == 1 && !matches!(toks.get(i + 1), Some(Tok::Punct(')'))) => {
                elems += 1;
            }
            _ if depth >= 1 => any = true,
            _ => {}
        }
    }
    if any {
        elems
    } else {
        0
    }
}

/// Index of the `(` that the `)` at `close` matches.
fn matching_open(toks: &[Tok], close: usize) -> usize {
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        match toks[i] {
            Tok::Punct(')') | Tok::Punct('}') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('{') | Tok::Punct('[') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    #[allow(dead_code)]
    struct Inner {
        label: String,
        hits: u64,
    }

    #[derive(Debug)]
    #[allow(dead_code)]
    enum Kind {
        FaceGsc,
    }

    #[derive(Debug)]
    #[allow(dead_code)]
    struct Outer {
        kind: Kind,
        ratio: f64,
        on: bool,
        items: Vec<Inner>,
        missing: Option<u32>,
        present: Option<u32>,
    }

    fn parses_as_json(s: &str) {
        // A tiny structural validator: balanced delimiters, no bare idents.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
                prev = if prev == '\\' && c == '\\' { ' ' } else { c };
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced in {s}");
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced in {s}");
        assert!(!in_str, "unterminated string in {s}");
    }

    #[test]
    fn vec_of_numbers_is_json() {
        let s = to_string_pretty(&vec![1, 2, 3]).unwrap();
        parses_as_json(&s);
        assert!(s.contains('1') && s.contains('3'));
        assert!(s.trim_start().starts_with('['));
    }

    #[test]
    fn derived_struct_becomes_object() {
        let v = Outer {
            kind: Kind::FaceGsc,
            ratio: 2.5,
            on: true,
            items: vec![Inner {
                label: "FaCE +GSC {tricky}".to_string(),
                hits: 9,
            }],
            missing: None,
            present: Some(7),
        };
        let s = to_string_pretty(&v).unwrap();
        parses_as_json(&s);
        assert!(s.contains("\"kind\": \"FaceGsc\""), "{s}");
        assert!(s.contains("\"ratio\": 2.5"), "{s}");
        assert!(s.contains("\"on\": true"), "{s}");
        assert!(s.contains("\"label\": \"FaCE +GSC {tricky}\""), "{s}");
        assert!(s.contains("\"missing\": null"), "{s}");
        assert!(s.contains("\"present\": 7"), "{s}");
    }

    #[test]
    fn tuples_become_arrays() {
        let s = to_string(&(1u32, "two", 3.0f64)).unwrap();
        parses_as_json(&s);
        assert!(s.starts_with('['), "{s}");
        assert!(s.contains("\"two\""), "{s}");
    }

    #[test]
    fn float_specials_stay_parseable() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Specials {
            pos: f64,
            neg: f64,
            nan: f64,
        }
        let s = to_string_pretty(&Specials {
            pos: f64::INFINITY,
            neg: f64::NEG_INFINITY,
            nan: f64::NAN,
        })
        .unwrap();
        parses_as_json(&s);
        assert!(s.contains("\"pos\": 1e999"), "{s}");
        assert!(s.contains("\"neg\": -1e999"), "{s}");
        assert!(s.contains("\"nan\": null"), "{s}");
    }

    #[test]
    fn newtype_unwraps() {
        #[derive(Debug)]
        struct Lsn(#[allow(dead_code)] u64);
        let s = to_string(&Lsn(42)).unwrap();
        assert_eq!(s.trim(), "42");
    }

    #[test]
    fn from_str_parses_scalars_and_containers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(
            from_str(r#""a\"b\nA""#).unwrap(),
            Value::String("a\"b\nA".to_string())
        );
        let v = from_str(r#"[{"k": 1}, {"k": 2}]"#).unwrap();
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn from_str_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            r#"{"k": }"#,
            "[1] extra",
            r#""unterminated"#,
            "nul",
            "01x",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn serialised_bench_rows_round_trip_through_the_parser() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Row {
            policy: String,
            ghost_admission: bool,
            flash_pages_written: u64,
            flash_writes_per_txn: f64,
        }
        let s = to_string_pretty(&vec![Row {
            policy: "s3-fifo".to_string(),
            ghost_admission: true,
            flash_pages_written: 123,
            flash_writes_per_txn: 0.25,
        }])
        .unwrap();
        let v = from_str(&s).expect("serialised output must parse");
        let row = &v.as_array().unwrap()[0];
        assert_eq!(row.get("policy").and_then(Value::as_str), Some("s3-fifo"));
        assert_eq!(
            row.get("flash_pages_written").and_then(Value::as_f64),
            Some(123.0)
        );
    }
}
