//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access, so the real `parking_lot`
//! cannot be fetched. This shim preserves the API shape the workspace relies
//! on — `lock()`, `read()` and `write()` returning guards directly rather
//! than `Result`s — on top of the standard library primitives. Lock poisoning
//! (which `parking_lot` does not have) is erased by handing back the guard
//! from a poisoned lock: the paper reproduction's locks protect plain data
//! with no broken-invariant recovery paths, matching `parking_lot` semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock without blocking, if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably access the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire a shared read guard without blocking, if no writer holds the
    /// lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire an exclusive write guard without blocking, if the lock is free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably access the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable usable with [`Mutex`] guards.
///
/// Divergence from upstream `parking_lot`: `wait`/`wait_while` take and
/// return the guard *by value* instead of through `&mut`, because the
/// in-place swap cannot be written against `std`'s consuming API without
/// `unsafe`. Poisoning is erased as everywhere else in this stub.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified, atomically releasing and re-acquiring the lock
    /// behind `guard`. Spurious wake-ups are possible, as with any condvar.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until `condition` returns false (i.e. wait *while* it holds).
    pub fn wait_while<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        condition: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        self.0
            .wait_while(guard, condition)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_try_variants_report_contention() {
        let l = RwLock::new(5);
        {
            let _r = l.read();
            // A reader blocks writers but not other readers.
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
        }
        assert!(l.try_write().is_some());
    }

    #[test]
    fn condvar_wakes_waiters() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let guard = lock.lock();
                let guard = cv.wait_while(guard, |ready| !*ready);
                *guard
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_single_wait_round_trip() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut guard = lock.lock();
            while *guard == 0 {
                guard = cv.wait(guard);
            }
            *guard
        });
        // Nudge until the waiter observes the value (tolerates spurious
        // wake-up ordering).
        let (lock, cv) = &*pair;
        *lock.lock() = 7;
        cv.notify_one();
        assert_eq!(t.join().unwrap(), 7);
    }
}
