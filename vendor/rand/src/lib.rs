//! Vendored minimal stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. The workspace uses a deliberately small slice of the API — a
//! seedable small RNG plus `gen_range` over integer ranges — which this stub
//! reproduces with the same trait shapes (`Rng`, `RngCore`, `SeedableRng`,
//! `rngs::SmallRng`). Everything is deterministic from the seed, which the
//! repository's tests and benches rely on for reproducibility.
//!
//! The generator is xorshift64\* seeded through SplitMix64 — statistically
//! solid for workload generation (TPC-C NURand skew, access traces), not for
//! cryptography, exactly like the real `SmallRng`'s contract.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A range that `Rng::gen_range` can sample from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive integer ranges).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small deterministic generator: xorshift64\* over a SplitMix64-mixed
    /// seed. Mirrors `rand::rngs::SmallRng`'s role (fast, non-crypto).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Marsaglia / Vigna).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Self::seed_from_u64(u64::from_le_bytes(seed))
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 scramble so that small seeds (0, 1, 2, ..) do not
            // yield correlated streams; also guarantees a non-zero state.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == b.gen_range(0u32..1000))
            .count();
        assert!(same < 50);
    }

    #[test]
    fn ranges_are_respected_and_cover() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5u64..=14);
            assert!((5..=14).contains(&v));
            seen[(v - 5) as usize] = true;
            let w = r.gen_range(-3i32..3);
            assert!((-3..3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
    }
}
