//! Vendored minimal stand-in for `proptest`.
//!
//! The build environment has no network access, so the real `proptest` cannot
//! be fetched. This stub reimplements the slice of the API the workspace's
//! property tests use:
//!
//! * [`Strategy`] with `generate`, [`Strategy::prop_map`] and
//!   [`Strategy::boxed`]; implemented for integer ranges, tuples (arity ≤ 6)
//!   and the combinators below.
//! * [`any`] over an [`Arbitrary`] trait for the primitive types plus
//!   [`sample::Index`].
//! * [`collection::vec`] with a strategy-or-range size argument.
//! * The [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros and [`ProptestConfig::with_cases`].
//!
//! Semantics differ from the real crate in two deliberate ways: there is **no
//! shrinking** (a failing case panics with the generated values via the plain
//! `assert!` machinery), and generation is **deterministic** — the RNG is
//! seeded from the test function's name, so `cargo test` produces the same
//! cases on every run, which the repository requires for reproducibility.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving all value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (typically the test name),
    /// so every run of the same test sees the same cases.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`, mirroring `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives; backs [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<V> Union<V> {
    /// A strategy choosing uniformly among `options` each case.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AnyStrategy<{}>", std::any::type_name::<T>())
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A half-open length range for collection strategies, mirroring
    /// `proptest::collection::SizeRange`. Constructed via `Into` from the
    /// range forms tests actually write, which also pins bare integer
    /// literals to `usize` exactly like the real crate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with `size` entries.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose size is only known at use-time,
    /// mirroring `proptest::sample::Index`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `[0, len)`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supports the two forms the workspace uses: an optional leading
/// `#![proptest_config(expr)]` followed by one or more
/// `fn name(arg in strategy, ..) { body }` items carrying their own
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property assertion; plain `assert!` in the stub (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; plain `assert_eq!` in the stub.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion; plain `assert_ne!` in the stub.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies of a common value type, mirroring
/// `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };

    /// The `prop::` module path used by `prop::collection::vec` and friends.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn run_cases<S: Strategy>(s: S, n: usize) -> Vec<S::Value> {
        let mut rng = crate::TestRng::deterministic("unit");
        (0..n).map(|_| s.generate(&mut rng)).collect()
    }

    #[test]
    fn ranges_stay_in_bounds() {
        for v in run_cases(3u8..7, 200) {
            assert!((3..7).contains(&v));
        }
        for v in run_cases(10u64..=12, 200) {
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        for v in run_cases(prop::collection::vec((0u8..4, any::<bool>()), 2..5), 50) {
            assert!((2..5).contains(&v.len()));
            for (a, _b) in v {
                assert!(a < 4);
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_options() {
        let s = prop_oneof![
            (0u32..1).prop_map(|_| "low"),
            (0u32..1).prop_map(|_| "high"),
        ];
        let got = run_cases(s, 100);
        assert!(got.contains(&"low") && got.contains(&"high"));
    }

    #[test]
    fn index_projects_into_len() {
        for idx in run_cases(any::<prop::sample::Index>(), 100) {
            assert!(idx.index(17) < 17);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = run_cases(0u64..1_000_000, 32);
        let b = run_cases(0u64..1_000_000, 32);
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(a in 0u8..10, v in prop::collection::vec(any::<u16>(), 0..8)) {
            prop_assert!(a < 10);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0i32..5) {
            prop_assert!(x >= 0);
        }
    }
}
