//! `face-lint`: a dependency-free source pass enforcing the workspace's
//! concurrency and hygiene contract.
//!
//! Rules (all scanning `crates/**/*.rs` and `src/**/*.rs`, never `vendor/`):
//!
//! - `raw-lock` — raw `parking_lot` usage outside `face-analysis`. Every
//!   lock must go through `OrderedMutex`/`OrderedRwLock` so the lockdep
//!   witness sees it.
//! - `sleep` — `thread::sleep` outside the device-latency emulators
//!   (`face-iosim`, `face_engine::latency`, and the fault injector's
//!   latency-spike mode in `face_pagestore::fault`), the arrival-schedule
//!   emulator (`face_workload::arrival`, which paces transaction release the
//!   way `latency.rs` paces device service) and test code. Library code must
//!   never block on wall-clock time.
//! - `print` — `println!`/`eprintln!`/`print!`/`dbg!` in library crates
//!   (the bench/report binaries and test code are exempt).
//! - `unwrap-device` — `.unwrap()`/`.expect(` on the device-path files
//!   (flash store, WAL storage/writer, page stores, the fault/latency/iocheck
//!   device wrappers, and the destage + degrade recovery machinery) outside
//!   `#[cfg(test)]` scopes: device failures must surface as typed errors,
//!   and the code that handles them must not itself panic.
//!
//! A finding can be waived line-by-line with a trailing
//! `face-lint: allow(<rule>)` comment stating why — reviewed debt, not an
//! escape hatch: the marker names exactly one rule and is itself grep-able.
//!
//! `#[cfg(test)]` scopes are detected with a brace-depth scanner; `tests/`,
//! `benches/`, `examples/` and `src/bin/` trees are exempt wholesale.
//!
//! The separate docs check ([`check_docs`]) renders the canonical lock-order
//! block from `face_analysis::classes` and rejects drift between it and the
//! marked regions in README.md and ROADMAP.md.

use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`raw-lock`, `sleep`, `print`, `unwrap-device`,
    /// `docs-drift`).
    pub rule: &'static str,
    /// File the finding is in, relative to the scanned root.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// The offending source line or a description.
    pub text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule,
            self.text.trim()
        )
    }
}

/// Files whose non-test `.unwrap()`/`.expect(` calls are device-path debt.
const DEVICE_PATH_FILES: &[&str] = &[
    "crates/face/src/store.rs",
    "crates/face/src/destage.rs",
    "crates/face/src/degrade.rs",
    "crates/wal/src/storage.rs",
    "crates/wal/src/writer.rs",
    "crates/pagestore/src/file_store.rs",
    "crates/pagestore/src/mem_store.rs",
    "crates/pagestore/src/fault.rs",
    "crates/engine/src/latency.rs",
    "crates/engine/src/iocheck.rs",
];

/// The begin/end markers bracketing the generated lock-order block in docs.
pub const DOC_BEGIN: &str = "<!-- lock-order:begin -->";
/// See [`DOC_BEGIN`].
pub const DOC_END: &str = "<!-- lock-order:end -->";

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Per-line view of a source file with `#[cfg(test)]` scope tracking and
/// comment stripping.
struct ScopedLine<'a> {
    /// 1-based line number.
    number: usize,
    /// The raw line (for display).
    raw: &'a str,
    /// The line with comments removed (for matching).
    code: String,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    in_test_scope: bool,
}

/// Walk `source` producing comment-stripped lines annotated with whether
/// they are inside a `#[cfg(test)]` scope.
fn scoped_lines(source: &str) -> Vec<ScopedLine<'_>> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // Depths at which a #[cfg(test)] item's brace opened.
    let mut test_depths: Vec<i64> = Vec::new();
    let mut pending_cfg_test = false;
    let mut in_block_comment = false;
    let mut in_string = false;
    for (idx, raw) in source.lines().enumerate() {
        let in_test_at_start = !test_depths.is_empty();
        let mut code = String::with_capacity(raw.len());
        let mut chars = raw.chars().peekable();
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            if in_string {
                code.push(c);
                if c == '\\' {
                    // Skip the escaped character.
                    if let Some(e) = chars.next() {
                        code.push(e);
                    }
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => break, // line comment
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                '"' => {
                    in_string = true;
                    code.push(c);
                }
                '\'' => {
                    // Char literal (or lifetime). Consume a possible escaped
                    // or plain char followed by a closing quote so braces in
                    // char literals do not confuse the depth counter.
                    code.push(c);
                    match chars.peek() {
                        Some('\\') => {
                            chars.next();
                            chars.next();
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                            }
                        }
                        Some(&n) if n != '\'' => {
                            chars.next();
                            if chars.peek() == Some(&'\'') {
                                chars.next(); // closing quote: char literal
                            }
                            // Otherwise a lifetime: nothing more to consume.
                        }
                        _ => {}
                    }
                }
                '{' => {
                    depth += 1;
                    if pending_cfg_test {
                        test_depths.push(depth);
                        pending_cfg_test = false;
                    }
                    code.push(c);
                }
                '}' => {
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    depth -= 1;
                    code.push(c);
                }
                _ => code.push(c),
            }
        }
        let trimmed = code.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && code.contains(';') && !code.contains('{') {
            // `#[cfg(test)] use …;` — no scope to attach to.
            pending_cfg_test = false;
        }
        out.push(ScopedLine {
            number: idx + 1,
            raw,
            code,
            in_test_scope: in_test_at_start || !test_depths.is_empty(),
        });
    }
    out
}

fn is_exempt_tree(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/")
        || rel.ends_with("/main.rs")
        || rel.ends_with("/build.rs")
}

/// Run the source rules over `root` (the workspace root). Returns findings;
/// an empty vector means the tree is clean.
pub fn scan_sources(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        // The lint's own sources and tests mention every forbidden pattern
        // as string literals and fixtures; the witness crate owns the raw
        // primitives by design.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        let exempt_tree = is_exempt_tree(&rel);
        let is_device_file = DEVICE_PATH_FILES.contains(&rel.as_str());
        for line in scoped_lines(&source) {
            let code = line.code.as_str();
            // A `face-lint: allow(<rule>)` comment waives that one rule on
            // this line. The marker lives in a comment, so it is matched on
            // the raw text (comments are stripped from `code`).
            let allowed = |rule: &str| line.raw.contains(&format!("face-lint: allow({rule})"));
            if code.contains("parking_lot")
                && !rel.starts_with("crates/analysis/")
                && !allowed("raw-lock")
            {
                findings.push(Finding {
                    rule: "raw-lock",
                    file: rel.clone(),
                    line: line.number,
                    text: line.raw.to_string(),
                });
            }
            if !line.in_test_scope && !exempt_tree {
                if code.contains("thread::sleep")
                    && !rel.starts_with("crates/iosim/")
                    && rel != "crates/engine/src/latency.rs"
                    && rel != "crates/workload/src/arrival.rs"
                    && rel != "crates/pagestore/src/fault.rs"
                    && !allowed("sleep")
                {
                    findings.push(Finding {
                        rule: "sleep",
                        file: rel.clone(),
                        line: line.number,
                        text: line.raw.to_string(),
                    });
                }
                if (code.contains("println!")
                    || code.contains("eprintln!")
                    || code.contains("print!")
                    || code.contains("dbg!"))
                    && !rel.starts_with("crates/bench/")
                    && !allowed("print")
                {
                    findings.push(Finding {
                        rule: "print",
                        file: rel.clone(),
                        line: line.number,
                        text: line.raw.to_string(),
                    });
                }
                if is_device_file
                    && (code.contains(".unwrap()") || code.contains(".expect("))
                    && !allowed("unwrap-device")
                {
                    findings.push(Finding {
                        rule: "unwrap-device",
                        file: rel.clone(),
                        line: line.number,
                        text: line.raw.to_string(),
                    });
                }
            }
        }
    }
    findings
}

fn extract_doc_block(content: &str) -> Option<String> {
    let begin = content.find(DOC_BEGIN)?;
    let end = content.find(DOC_END)?;
    let inner = &content[begin + DOC_BEGIN.len()..end];
    Some(inner.trim().to_string())
}

/// Check that README.md and ROADMAP.md carry the canonical lock-order block
/// (rendered from the `face-analysis` class registry) between the
/// `lock-order:begin`/`lock-order:end` markers.
pub fn check_docs(root: &Path) -> Vec<Finding> {
    let expected = face_analysis::classes::lock_order_doc();
    let expected = expected.trim();
    let mut findings = Vec::new();
    for doc in ["README.md", "ROADMAP.md"] {
        let path = root.join(doc);
        let Ok(content) = fs::read_to_string(&path) else {
            findings.push(Finding {
                rule: "docs-drift",
                file: doc.to_string(),
                line: 0,
                text: "file missing".to_string(),
            });
            continue;
        };
        match extract_doc_block(&content) {
            None => findings.push(Finding {
                rule: "docs-drift",
                file: doc.to_string(),
                line: 0,
                text: format!("missing `{DOC_BEGIN}` … `{DOC_END}` block"),
            }),
            Some(actual) if actual != expected => {
                // Report the first differing line to make the drift findable.
                let detail = expected
                    .lines()
                    .zip(actual.lines().chain(std::iter::repeat("<missing>")))
                    .find(|(e, a)| e != a)
                    .map(|(e, a)| format!("expected `{e}`, found `{a}`"))
                    .unwrap_or_else(|| "block has extra trailing lines".to_string());
                findings.push(Finding {
                    rule: "docs-drift",
                    file: doc.to_string(),
                    line: 0,
                    text: format!(
                        "lock-order block drifted from face_analysis::classes ({detail}); \
                         regenerate with `cargo run -p face-lint -- --print-docs`"
                    ),
                });
            }
            Some(_) => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf()
    }

    fn temp_root(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("face_lint_{tag}_{}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn write(root: &Path, rel: &str, content: &str) {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }

    #[test]
    fn the_workspace_is_clean() {
        let findings = scan_sources(&repo_root());
        assert!(
            findings.is_empty(),
            "workspace lint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn the_docs_match_the_registry() {
        let findings = check_docs(&repo_root());
        assert!(
            findings.is_empty(),
            "docs drift:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn seeded_violations_fail_the_scan() {
        let root = temp_root("seeded");
        write(
            &root,
            "crates/foo/src/lib.rs",
            "use parking_lot::Mutex;\n\
             pub fn nap() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n\
             pub fn shout() { println!(\"loud\"); }\n",
        );
        write(
            &root,
            "crates/face/src/store.rs",
            "pub fn read() { std::fs::read(\"x\").unwrap(); }\n",
        );
        let findings = scan_sources(&root);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"raw-lock"), "{findings:?}");
        assert!(rules.contains(&"sleep"), "{findings:?}");
        assert!(rules.contains(&"print"), "{findings:?}");
        assert!(rules.contains(&"unwrap-device"), "{findings:?}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cfg_test_scopes_and_exempt_trees_are_allowed() {
        let root = temp_root("clean");
        write(
            &root,
            "crates/face/src/store.rs",
            "pub fn fine() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \u{20}   #[test]\n\
             \u{20}   fn t() { std::fs::read(\"x\").unwrap(); std::thread::sleep(d); println!(\"ok\"); }\n\
             }\n",
        );
        write(
            &root,
            "crates/engine/tests/gate.rs",
            "fn t() { std::thread::sleep(d); println!(\"ok\"); }\n",
        );
        write(
            &root,
            "crates/iosim/src/lib.rs",
            "pub fn tick() { std::thread::sleep(d); }\n",
        );
        write(
            &root,
            "crates/bench/src/report.rs",
            "pub fn emit() { println!(\"row\"); }\n",
        );
        write(
            &root,
            "crates/analysis/src/ordered.rs",
            "use parking_lot::Mutex;\n",
        );
        let findings = scan_sources(&root);
        assert!(
            findings.is_empty(),
            "{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn allow_markers_waive_exactly_one_rule() {
        let root = temp_root("allow");
        write(
            &root,
            "crates/face/src/store.rs",
            // The waived expect passes; the unmarked unwrap on the next line
            // and a marker naming the wrong rule still fail.
            "pub fn a() { std::fs::read(\"x\").expect(\"y\"); } // face-lint: allow(unwrap-device)\n\
             pub fn b() { std::fs::read(\"x\").unwrap(); }\n\
             pub fn c() { std::fs::read(\"x\").unwrap(); } // face-lint: allow(sleep)\n",
        );
        let findings = scan_sources(&root);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "unwrap-device"));
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn comments_do_not_trip_rules() {
        let root = temp_root("comments");
        write(
            &root,
            "crates/foo/src/lib.rs",
            "// parking_lot is wrapped by face-analysis; println! is banned.\n\
             /* thread::sleep(…) would be a bug here */\n\
             pub fn quiet() {}\n",
        );
        let findings = scan_sources(&root);
        assert!(findings.is_empty(), "{findings:?}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn docs_drift_is_detected() {
        let root = temp_root("docs");
        let good = format!(
            "# Title\n\n{}\n{}\n{}\n",
            DOC_BEGIN,
            face_analysis::classes::lock_order_doc().trim(),
            DOC_END
        );
        write(&root, "README.md", &good);
        write(&root, "ROADMAP.md", &good);
        assert!(check_docs(&root).is_empty());

        let stale = format!("# Title\n\n{DOC_BEGIN}\nsome stale order\n{DOC_END}\n");
        write(&root, "README.md", &stale);
        let findings = check_docs(&root);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "docs-drift");
        fs::remove_dir_all(&root).unwrap();
    }
}
