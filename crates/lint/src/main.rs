//! CLI for `face-lint`. Deny semantics: any finding exits non-zero.
//!
//! Usage:
//!   face-lint [--root <path>] [--sources] [--check-docs] [--print-docs]
//!
//! With neither `--sources` nor `--check-docs`, both passes run. The
//! `--print-docs` flag emits the canonical lock-order block (for pasting
//! between the markers in README.md / ROADMAP.md) and exits.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut sources = false;
    let mut docs = false;
    let mut print_docs = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(value) = args.next() else {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(value);
            }
            "--sources" => sources = true,
            "--check-docs" => docs = true,
            "--print-docs" => print_docs = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    if print_docs {
        println!("{}", face_lint::DOC_BEGIN);
        print!("{}", face_analysis::classes::lock_order_doc());
        println!("{}", face_lint::DOC_END);
        return ExitCode::SUCCESS;
    }
    if !sources && !docs {
        sources = true;
        docs = true;
    }
    let mut findings = Vec::new();
    if sources {
        findings.extend(face_lint::scan_sources(&root));
    }
    if docs {
        findings.extend(face_lint::check_docs(&root));
    }
    if findings.is_empty() {
        println!("face-lint: clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("face-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
