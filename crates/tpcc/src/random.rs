//! TPC-C random number generation: uniform helpers and the non-uniform
//! NURand function that produces the benchmark's skewed customer and item
//! accesses (TPC-C specification §2.1.6).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The constant `C` values used by NURand. The specification requires them to
/// be chosen once per run; fixed values keep experiments reproducible.
const C_LAST: u64 = 123;
const C_CUST_ID: u64 = 259;
const C_ITEM_ID: u64 = 7911;

/// A deterministic random source for TPC-C drivers.
#[derive(Debug, Clone)]
pub struct TpccRandom {
    rng: SmallRng,
}

impl TpccRandom {
    /// A generator seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        self.rng.gen_range(lo..=hi)
    }

    /// A probability check: true with probability `percent`/100.
    pub fn chance(&mut self, percent: u32) -> bool {
        self.rng.gen_range(0u32..100) < percent
    }

    /// NURand(A, x, y) as defined by the specification.
    pub fn nurand(&mut self, a: u64, x: u64, y: u64) -> u64 {
        let c = match a {
            255 => C_LAST,
            1023 => C_CUST_ID,
            8191 => C_ITEM_ID,
            _ => 42,
        };
        (((self.uniform(0, a) | self.uniform(x, y)) + c) % (y - x + 1)) + x
    }

    /// A customer id (1..=3000) with NURand(1023) skew.
    pub fn customer_id(&mut self) -> u64 {
        self.nurand(1023, 1, 3000)
    }

    /// An item id (1..=100000) with NURand(8191) skew.
    pub fn item_id(&mut self) -> u64 {
        self.nurand(8191, 1, 100_000)
    }

    /// A district id (1..=10), uniform.
    pub fn district_id(&mut self) -> u64 {
        self.uniform(1, 10)
    }

    /// Number of order lines in a NewOrder (5..=15, uniform).
    pub fn order_line_count(&mut self) -> u64 {
        self.uniform(5, 15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn determinism_with_same_seed() {
        let mut a = TpccRandom::new(7);
        let mut b = TpccRandom::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(1, 1000), b.uniform(1, 1000));
            assert_eq!(a.item_id(), b.item_id());
        }
        let mut c = TpccRandom::new(8);
        let same: usize = (0..100)
            .filter(|_| TpccRandom::new(7).uniform(1, 1000) == c.uniform(1, 1000))
            .count();
        assert!(same < 100);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = TpccRandom::new(1);
        for _ in 0..1000 {
            let v = r.uniform(5, 15);
            assert!((5..=15).contains(&v));
        }
        assert_eq!(r.uniform(9, 9), 9);
        assert_eq!(r.uniform(10, 3), 10);
    }

    #[test]
    fn nurand_stays_in_range_and_is_skewed() {
        let mut r = TpccRandom::new(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            let v = r.item_id();
            assert!((1..=100_000).contains(&v));
            *counts.entry(v).or_default() += 1;
        }
        // Skew: the most popular 10% of drawn items should cover far more
        // than 10% of the draws.
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = freqs.iter().take(freqs.len() / 10).sum();
        let total: u64 = freqs.iter().sum();
        assert!(
            top_decile as f64 > 0.2 * total as f64,
            "NURand should concentrate accesses (top decile = {:.1}%)",
            100.0 * top_decile as f64 / total as f64
        );
    }

    #[test]
    fn helpers_are_in_spec_ranges() {
        let mut r = TpccRandom::new(3);
        for _ in 0..1000 {
            assert!((1..=3000).contains(&r.customer_id()));
            assert!((1..=10).contains(&r.district_id()));
            assert!((5..=15).contains(&r.order_line_count()));
        }
        let heads = (0..10_000).filter(|_| r.chance(50)).count();
        assert!(heads > 4000 && heads < 6000);
        assert_eq!((0..1000).filter(|_| r.chance(0)).count(), 0);
        assert_eq!((0..1000).filter(|_| r.chance(100)).count(), 1000);
    }
}
