//! A multi-threaded TPC-C driver for the *functional* engine.
//!
//! The trace-driven simulator models concurrency with virtual client clocks;
//! this driver creates real OS threads over one shared
//! [`face_engine::Database`] (whose operations all take `&self`). Each thread
//! runs its own [`TpccWorkload`] with
//!
//! * a **per-thread RNG stream** (the base seed offset by the thread index,
//!   so runs are reproducible yet streams are independent), and
//! * a **disjoint warehouse range** ([`TpccWorkload::with_home_range`]), so
//!   thread write-sets never collide — the engine page-latches but does not
//!   lock rows, matching the paper's host system.
//!
//! Page accesses map to key-value operations on the engine: every distinct
//! TPC-C page is a key (`key = page id`), writes are `put`s, reads are
//! `get`s, and each transaction commits through the WAL's group commit.

use std::sync::Arc;
use std::time::{Duration, Instant};

use face_engine::Database;
use face_workload::{LatencyHistogram, LatencySummary};

use crate::workload::{TpccConfig, TpccWorkload, TransactionKind};

/// Configuration of a concurrent driver run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads. Must not exceed `warehouses` (each thread needs at
    /// least one home warehouse).
    pub threads: usize,
    /// Transactions each thread executes.
    pub txns_per_thread: usize,
    /// TPC-C scale factor shared by all threads.
    pub warehouses: u32,
    /// Base RNG seed; thread `t` uses `seed + t`.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            txns_per_thread: 200,
            warehouses: 8,
            seed: 42,
        }
    }
}

/// What one worker thread observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadStats {
    /// Thread index.
    pub thread: usize,
    /// Transactions committed.
    pub committed: u64,
    /// NewOrder transactions committed (the tpmC numerator).
    pub new_orders: u64,
    /// `put` operations performed.
    pub puts: u64,
    /// `get` operations performed.
    pub gets: u64,
    /// This thread's busy wall time.
    pub wall: Duration,
}

/// Per-thread stats plus the merged view of a whole run.
#[derive(Debug, Clone, Default)]
pub struct DriverReport {
    /// One entry per worker thread.
    pub per_thread: Vec<ThreadStats>,
    /// Wall time from first spawn to last join.
    pub wall: Duration,
    /// Merged per-transaction commit latencies (begin → commit, including
    /// the group-commit log force). Each thread records into a private
    /// histogram; the driver merges them after `join`.
    pub latency: LatencyHistogram,
}

impl DriverReport {
    /// Total committed transactions across threads.
    pub fn committed(&self) -> u64 {
        self.per_thread.iter().map(|t| t.committed).sum()
    }

    /// Total committed NewOrder transactions.
    pub fn new_orders(&self) -> u64 {
        self.per_thread.iter().map(|t| t.new_orders).sum()
    }

    /// Total `put` operations.
    pub fn puts(&self) -> u64 {
        self.per_thread.iter().map(|t| t.puts).sum()
    }

    /// Total `get` operations.
    pub fn gets(&self) -> u64 {
        self.per_thread.iter().map(|t| t.gets).sum()
    }

    /// Aggregate committed transactions per second over the run's wall time.
    pub fn tps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.committed() as f64 / secs
        }
    }

    /// Percentile summary of per-transaction commit latency across threads.
    pub fn latency_summary(&self) -> LatencySummary {
        self.latency.summary()
    }

    /// Aggregate committed NewOrders per minute (the paper's tpmC metric).
    pub fn tpmc(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.new_orders() as f64 * 60.0 / secs
        }
    }
}

/// Split `1..=warehouses` into `threads` contiguous, non-empty ranges.
fn warehouse_range(warehouses: u32, threads: usize, thread: usize) -> (u64, u64) {
    let w = warehouses as u64;
    let n = threads as u64;
    let t = thread as u64;
    let lo = t * w / n + 1;
    let hi = (t + 1) * w / n;
    (lo, hi.max(lo))
}

/// Drive `db` with `config.threads` concurrent TPC-C client threads and
/// return the per-thread and merged statistics.
///
/// # Panics
/// Panics if `threads == 0`, `threads > warehouses`, or an engine operation
/// fails (the driver is a test/benchmark harness; failures are bugs).
pub fn run_concurrent(db: &Arc<Database>, config: &DriverConfig) -> DriverReport {
    assert!(config.threads > 0, "need at least one thread");
    assert!(
        config.threads <= config.warehouses as usize,
        "need one warehouse per thread ({} threads > {} warehouses)",
        config.threads,
        config.warehouses
    );
    let start = Instant::now();
    let mut per_thread = vec![ThreadStats::default(); config.threads];
    let mut latency = LatencyHistogram::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(config.threads);
        for t in 0..config.threads {
            let db = Arc::clone(db);
            let cfg = config.clone();
            handles.push(s.spawn(move || run_thread(&db, &cfg, t)));
        }
        for (t, handle) in handles.into_iter().enumerate() {
            let (stats, hist) = handle.join().expect("worker thread panicked");
            per_thread[t] = stats;
            latency.merge(&hist);
        }
    });
    DriverReport {
        per_thread,
        wall: start.elapsed(),
        latency,
    }
}

/// One measurement window of a post-restart throughput ramp
/// ([`run_ramp`]) — the functional analogue of one point on the paper's
/// Figure 6 time series.
#[derive(Debug, Clone, Copy, Default)]
pub struct RampWindow {
    /// Window index (0 = first window after the restart).
    pub window: usize,
    /// Transactions committed in this window.
    pub committed: u64,
    /// Wall-clock seconds the window took.
    pub secs: f64,
    /// Committed transactions per minute over the window.
    pub tpm: f64,
    /// DRAM misses served by the flash cache during the window.
    pub flash_hits: u64,
    /// DRAM misses served by the disk during the window.
    pub disk_fetches: u64,
}

/// Drive `db` through `windows` equal transaction budgets and measure each
/// window's throughput and fetch mix. Run immediately after
/// [`face_engine::Database::restart`] (or `restart_cold`), this traces the
/// post-crash throughput ramp: a warm flash cache serves the early windows'
/// misses at flash speed, a cold one pays disk reads until it refills.
///
/// Each window executes `config.txns_per_thread` transactions per thread
/// with a window-specific seed (runs stay reproducible, windows stay
/// distinct).
pub fn run_ramp(db: &Arc<Database>, config: &DriverConfig, windows: usize) -> Vec<RampWindow> {
    let mut out = Vec::with_capacity(windows);
    for w in 0..windows {
        let before = db.buffer_stats();
        let cfg = DriverConfig {
            seed: config.seed + (w as u64 + 1) * 7_919,
            ..config.clone()
        };
        let report = run_concurrent(db, &cfg);
        let after = db.buffer_stats();
        let secs = report.wall.as_secs_f64();
        out.push(RampWindow {
            window: w,
            committed: report.committed(),
            secs,
            tpm: if secs > 0.0 {
                report.committed() as f64 * 60.0 / secs
            } else {
                0.0
            },
            flash_hits: after.flash_hits - before.flash_hits,
            disk_fetches: after.disk_fetches - before.disk_fetches,
        });
    }
    out
}

/// Configuration of a read-heavy key-value sweep — the workload behind
/// `bench_read_throughput`. Uniform random `get`s over the whole key space
/// with a small fraction of `put`s; each thread writes only its own key
/// partition (the engine page-latches but does not lock rows), while reads
/// range over everything, TPC-C-style ~2:1 read-dominance pushed to the 90/10
/// mix the paper's flash-hit argument cares about.
#[derive(Debug, Clone)]
pub struct ReadHeavyConfig {
    /// Worker threads.
    pub threads: usize,
    /// Operations (gets + puts) each thread executes.
    pub ops_per_thread: usize,
    /// Keys in the table (pre-loaded with [`load_read_heavy`]).
    pub keys: u64,
    /// Percentage of operations that are reads (0..=100).
    pub read_pct: u32,
    /// Operations per transaction (commit granularity).
    pub ops_per_txn: usize,
    /// Base RNG seed; thread `t` uses `seed + t`.
    pub seed: u64,
}

impl Default for ReadHeavyConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 1_000,
            keys: 8_192,
            read_pct: 90,
            ops_per_txn: 8,
            seed: 42,
        }
    }
}

/// A tiny splitmix64 stream — enough randomness for key picking without
/// pulling the workload RNG into the driver.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pre-load `keys` sequential keys (single-threaded, batched commits) so a
/// read-heavy run starts from a fully populated table whose cold pages have
/// already flowed through the buffer into the flash cache.
pub fn load_read_heavy(db: &Arc<Database>, keys: u64) {
    let mut value = [0u8; 16];
    let mut next = 0u64;
    while next < keys {
        let txn = db.begin();
        for key in next..(next + 64).min(keys) {
            value[..8].copy_from_slice(&key.to_le_bytes());
            db.put(txn, key, &value).expect("load put failed");
        }
        db.commit(txn).expect("load commit failed");
        next += 64;
    }
}

/// Drive `db` with `config.threads` concurrent read-heavy clients and return
/// the per-thread and merged statistics. Call [`load_read_heavy`] first.
///
/// # Panics
/// Panics if `threads == 0`, `threads > keys`, `read_pct > 100`, or an
/// engine operation fails.
pub fn run_read_heavy(db: &Arc<Database>, config: &ReadHeavyConfig) -> DriverReport {
    assert!(config.threads > 0, "need at least one thread");
    assert!(
        (config.threads as u64) <= config.keys,
        "need at least one key per thread"
    );
    assert!(config.read_pct <= 100, "read_pct is a percentage");
    let start = Instant::now();
    let mut per_thread = vec![ThreadStats::default(); config.threads];
    let mut latency = LatencyHistogram::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(config.threads);
        for t in 0..config.threads {
            let db = Arc::clone(db);
            let cfg = config.clone();
            handles.push(s.spawn(move || run_read_heavy_thread(&db, &cfg, t)));
        }
        for (t, handle) in handles.into_iter().enumerate() {
            let (stats, hist) = handle.join().expect("worker thread panicked");
            per_thread[t] = stats;
            latency.merge(&hist);
        }
    });
    DriverReport {
        per_thread,
        wall: start.elapsed(),
        latency,
    }
}

fn run_read_heavy_thread(
    db: &Database,
    config: &ReadHeavyConfig,
    thread: usize,
) -> (ThreadStats, LatencyHistogram) {
    // Disjoint write partition, shared read range.
    let n = config.threads as u64;
    let t = thread as u64;
    let write_lo = t * config.keys / n;
    let write_hi = ((t + 1) * config.keys / n).max(write_lo + 1);
    let mut state = config.seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + t;
    let mut stats = ThreadStats {
        thread,
        ..ThreadStats::default()
    };
    let mut latency = LatencyHistogram::new();
    let started = Instant::now();
    let mut value = [0u8; 16];
    let ops_per_txn = config.ops_per_txn.max(1);
    let mut op = 0;
    while op < config.ops_per_thread {
        let txn_started = Instant::now();
        let txn = db.begin();
        for _ in 0..ops_per_txn.min(config.ops_per_thread - op) {
            let r = splitmix64(&mut state);
            if r % 100 < config.read_pct as u64 {
                let key = splitmix64(&mut state) % config.keys;
                db.get(key).expect("get failed");
                stats.gets += 1;
            } else {
                let key = write_lo + splitmix64(&mut state) % (write_hi - write_lo);
                value[..8].copy_from_slice(&key.to_le_bytes());
                value[8..].copy_from_slice(&t.to_le_bytes());
                db.put(txn, key, &value).expect("put failed");
                stats.puts += 1;
            }
            op += 1;
        }
        db.commit(txn).expect("commit failed");
        latency.record(txn_started.elapsed());
        stats.committed += 1;
    }
    stats.wall = started.elapsed();
    (stats, latency)
}

/// Configuration of a skew-heavy key-value mix — the workload behind
/// `bench_flash_economy`. A small **hot set** of keys receives most of the
/// operations (re-references that deserve flash residency), while the rest
/// of the operations spray uniformly over the cold majority — one-touch
/// pages that an admission-filtered cache should never pay a flash write
/// for. Writes stay within each thread's key partition of the chosen range,
/// like [`ReadHeavyConfig`].
#[derive(Debug, Clone)]
pub struct SkewedMixConfig {
    /// Worker threads.
    pub threads: usize,
    /// Operations (gets + puts) each thread executes.
    pub ops_per_thread: usize,
    /// Keys in the table (pre-loaded with [`load_read_heavy`]).
    pub keys: u64,
    /// Percentage of the key space forming the hot set (0..=100; clamped to
    /// at least one key).
    pub hot_key_pct: u32,
    /// Percentage of operations aimed at the hot set (0..=100).
    pub hot_op_pct: u32,
    /// Percentage of operations that are reads (0..=100).
    pub read_pct: u32,
    /// Operations per transaction (commit granularity).
    pub ops_per_txn: usize,
    /// Base RNG seed; thread `t` uses a stream derived from `seed + t`.
    pub seed: u64,
}

impl Default for SkewedMixConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 1_000,
            keys: 8_192,
            hot_key_pct: 10,
            hot_op_pct: 90,
            read_pct: 70,
            ops_per_txn: 8,
            seed: 42,
        }
    }
}

/// Drive `db` with `config.threads` concurrent skew-heavy clients (see
/// [`SkewedMixConfig`]). Call [`load_read_heavy`] first.
///
/// # Panics
/// Panics if `threads == 0`, `threads > keys`, any percentage exceeds 100,
/// or an engine operation fails.
pub fn run_skewed_mix(db: &Arc<Database>, config: &SkewedMixConfig) -> DriverReport {
    assert!(config.threads > 0, "need at least one thread");
    assert!(
        (config.threads as u64) <= config.keys,
        "need at least one key per thread"
    );
    assert!(config.hot_key_pct <= 100, "hot_key_pct is a percentage");
    assert!(config.hot_op_pct <= 100, "hot_op_pct is a percentage");
    assert!(config.read_pct <= 100, "read_pct is a percentage");
    let start = Instant::now();
    let mut per_thread = vec![ThreadStats::default(); config.threads];
    let mut latency = LatencyHistogram::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(config.threads);
        for t in 0..config.threads {
            let db = Arc::clone(db);
            let cfg = config.clone();
            handles.push(s.spawn(move || run_skewed_mix_thread(&db, &cfg, t)));
        }
        for (t, handle) in handles.into_iter().enumerate() {
            let (stats, hist) = handle.join().expect("worker thread panicked");
            per_thread[t] = stats;
            latency.merge(&hist);
        }
    });
    DriverReport {
        per_thread,
        wall: start.elapsed(),
        latency,
    }
}

fn run_skewed_mix_thread(
    db: &Database,
    config: &SkewedMixConfig,
    thread: usize,
) -> (ThreadStats, LatencyHistogram) {
    let n = config.threads as u64;
    let t = thread as u64;
    // Hot keys at the front of the key space; at least one, never all.
    let hot_keys = (config.keys * config.hot_key_pct as u64 / 100)
        .max(1)
        .min(config.keys - 1);
    let cold_keys = config.keys - hot_keys;
    // Reads range over the whole chosen region; writes stay in this thread's
    // slice of it (disjoint write partitions, like the read-heavy driver).
    let pick = |range_lo: u64, range_len: u64, write: bool, r: u64| {
        if write {
            let lo = t * range_len / n;
            let hi = ((t + 1) * range_len / n).max(lo + 1).min(range_len);
            range_lo + lo + r % (hi - lo)
        } else {
            range_lo + r % range_len
        }
    };
    let mut state = config.seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + t;
    let mut stats = ThreadStats {
        thread,
        ..ThreadStats::default()
    };
    let mut latency = LatencyHistogram::new();
    let started = Instant::now();
    let mut value = [0u8; 16];
    let ops_per_txn = config.ops_per_txn.max(1);
    let mut op = 0;
    while op < config.ops_per_thread {
        let txn_started = Instant::now();
        let txn = db.begin();
        for _ in 0..ops_per_txn.min(config.ops_per_thread - op) {
            let hot = splitmix64(&mut state) % 100 < config.hot_op_pct as u64;
            let write = splitmix64(&mut state) % 100 >= config.read_pct as u64;
            let r = splitmix64(&mut state);
            let key = if hot {
                pick(0, hot_keys, write, r)
            } else {
                pick(hot_keys, cold_keys, write, r)
            };
            if write {
                value[..8].copy_from_slice(&key.to_le_bytes());
                value[8..].copy_from_slice(&t.to_le_bytes());
                db.put(txn, key, &value).expect("put failed");
                stats.puts += 1;
            } else {
                db.get(key).expect("get failed");
                stats.gets += 1;
            }
            op += 1;
        }
        db.commit(txn).expect("commit failed");
        latency.record(txn_started.elapsed());
        stats.committed += 1;
    }
    stats.wall = started.elapsed();
    (stats, latency)
}

fn run_thread(
    db: &Database,
    config: &DriverConfig,
    thread: usize,
) -> (ThreadStats, LatencyHistogram) {
    let (lo, hi) = warehouse_range(config.warehouses, config.threads, thread);
    let mut workload = TpccWorkload::with_home_range(
        TpccConfig {
            warehouses: config.warehouses,
            seed: config.seed + thread as u64,
        },
        lo,
        hi,
    );
    let mut stats = ThreadStats {
        thread,
        ..ThreadStats::default()
    };
    let mut latency = LatencyHistogram::new();
    let started = Instant::now();
    let mut value = [0u8; 16];
    for _ in 0..config.txns_per_thread {
        let spec = workload.next_transaction();
        let txn_started = Instant::now();
        let txn = db.begin();
        for access in &spec.accesses {
            let key = access.page.to_u64();
            if access.write {
                value[..8].copy_from_slice(&key.to_le_bytes());
                value[8..].copy_from_slice(&(thread as u64).to_le_bytes());
                db.put(txn, key, &value).expect("put failed");
                stats.puts += 1;
            } else {
                db.get(key).expect("get failed");
                stats.gets += 1;
            }
        }
        db.commit(txn).expect("commit failed");
        latency.record(txn_started.elapsed());
        stats.committed += 1;
        if spec.kind == TransactionKind::NewOrder {
            stats.new_orders += 1;
        }
    }
    stats.wall = started.elapsed();
    (stats, latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use face_engine::EngineConfig;

    fn db(buckets: u32) -> Arc<Database> {
        Arc::new(
            Database::open(
                EngineConfig::in_memory()
                    .buffer_frames(512)
                    .table_buckets(buckets)
                    .flash_cache(face_engine::CachePolicyKind::FaceGsc, 4096),
            )
            .unwrap(),
        )
    }

    #[test]
    fn warehouse_ranges_partition_exactly() {
        for (warehouses, threads) in [(8u32, 4usize), (7, 3), (4, 4), (50, 8)] {
            let mut covered = Vec::new();
            for t in 0..threads {
                let (lo, hi) = warehouse_range(warehouses, threads, t);
                assert!(lo <= hi, "empty range for thread {t}");
                covered.extend(lo..=hi);
            }
            let expected: Vec<u64> = (1..=warehouses as u64).collect();
            assert_eq!(covered, expected, "{warehouses} wh / {threads} threads");
        }
    }

    #[test]
    fn merged_stats_equal_sum_of_threads_and_db_counters() {
        let db = db(16 * 1024);
        let config = DriverConfig {
            threads: 4,
            txns_per_thread: 25,
            warehouses: 8,
            seed: 7,
        };
        let report = run_concurrent(&db, &config);
        assert_eq!(report.committed(), 4 * 25);
        assert_eq!(report.per_thread.len(), 4);
        let per_thread_sum: u64 = report.per_thread.iter().map(|t| t.committed).sum();
        assert_eq!(report.committed(), per_thread_sum);

        // The engine's shard-merged counters agree with the driver's view.
        let stats = db.stats();
        assert_eq!(stats.txns_committed, report.committed());
        assert_eq!(stats.puts, report.puts());
        assert_eq!(stats.gets, report.gets());
        assert!(report.tps() > 0.0);
        assert!(report.new_orders() > 0);
        assert!(report.tpmc() > 0.0);

        // Every committed transaction left a latency observation, and the
        // merged percentiles are monotone.
        let lat = report.latency_summary();
        assert_eq!(lat.count, report.committed());
        assert!(lat.p50_us > 0.0);
        assert!(lat.p50_us <= lat.p99_us && lat.p99_us <= lat.max_us);
    }

    #[test]
    fn per_thread_rng_streams_differ_but_runs_are_reproducible() {
        let run = |seed| {
            let db = db(16 * 1024);
            let config = DriverConfig {
                threads: 2,
                txns_per_thread: 20,
                warehouses: 4,
                seed,
            };
            let report = run_concurrent(&db, &config);
            (
                report.per_thread[0].puts,
                report.per_thread[1].puts,
                report.new_orders(),
            )
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed must reproduce the same work");
        // Different threads draw from different streams (overwhelmingly
        // likely to differ in op counts).
        assert_ne!((a.0, a.1), (a.1, a.0.wrapping_add(1)), "sanity");
    }

    #[test]
    fn ramp_windows_measure_disjoint_work() {
        let db = db(16 * 1024);
        let config = DriverConfig {
            threads: 2,
            txns_per_thread: 10,
            warehouses: 4,
            seed: 5,
        };
        let windows = run_ramp(&db, &config, 3);
        assert_eq!(windows.len(), 3);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.window, i);
            assert_eq!(w.committed, 2 * 10);
            assert!(w.tpm > 0.0);
            assert!(w.secs > 0.0);
        }
        // Window fetch-mix deltas partition the engine's totals.
        let buffer = db.buffer_stats();
        let flash: u64 = windows.iter().map(|w| w.flash_hits).sum();
        let disk: u64 = windows.iter().map(|w| w.disk_fetches).sum();
        assert!(flash <= buffer.flash_hits);
        assert!(disk <= buffer.disk_fetches);
        let total: u64 = windows.iter().map(|w| w.committed).sum();
        assert_eq!(db.stats().txns_committed, total);
    }

    #[test]
    fn read_heavy_driver_mixes_partitions_and_reproduces() {
        let db = db(4 * 1024);
        load_read_heavy(&db, 512);
        // Every loaded key is present before the run.
        assert!(db.get(0).unwrap().is_some());
        assert!(db.get(511).unwrap().is_some());
        let config = ReadHeavyConfig {
            threads: 4,
            ops_per_thread: 250,
            keys: 512,
            read_pct: 90,
            ops_per_txn: 8,
            seed: 9,
        };
        let report = run_read_heavy(&db, &config);
        assert_eq!(report.gets() + report.puts(), 1000);
        // ~90/10: reads dominate by far.
        assert!(
            report.gets() > report.puts() * 4,
            "{} gets vs {} puts is not read-heavy",
            report.gets(),
            report.puts()
        );
        assert!(report.committed() > 0);
        assert!(report.tps() > 0.0);
        // Writers stayed in their partitions: every key's value still decodes
        // to the key itself (first 8 bytes), whoever last wrote it.
        for key in 0..512u64 {
            let val = db.get(key).unwrap().expect("key lost");
            assert_eq!(u64::from_le_bytes(val[..8].try_into().unwrap()), key);
        }
        // Same seed, same work.
        let db2 = super::tests::db(4 * 1024);
        load_read_heavy(&db2, 512);
        let again = run_read_heavy(&db2, &config);
        assert_eq!(again.gets(), report.gets());
        assert_eq!(again.puts(), report.puts());
    }

    #[test]
    fn committed_work_survives_a_crash() {
        let db = db(16 * 1024);
        let config = DriverConfig {
            threads: 4,
            txns_per_thread: 10,
            warehouses: 8,
            seed: 3,
        };
        run_concurrent(&db, &config);
        db.crash();
        let report = db.restart().unwrap();
        assert!(report.records_scanned > 0);
        // Every committed put is recovered: spot-check through the engine.
        assert!(db.stats().txns_committed >= 40);
    }
}
