//! # face-tpcc — TPC-C workload generation for the FaCE reproduction
//!
//! The paper evaluates FaCE with TPC-C (BenchmarkSQL, 500 warehouses, 50
//! clients) on PostgreSQL. This crate reproduces the *page access behaviour*
//! of that workload: the nine TPC-C tables are laid out over 4 KiB pages with
//! row sizes from the TPC-C specification, and the five transaction types
//! generate logical page-access sequences with the standard mix and NURand
//! skew. The sequences are replayed either against the functional engine or
//! against the trace-driven simulation ([`face_engine::sim::SimEngine`]).
//!
//! Absolute row counts scale with the warehouse count, so experiments can run
//! at a reduced scale while preserving every size *ratio* the paper's results
//! depend on (DRAM : flash cache : database).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod layout;
pub mod random;
pub mod tail;
pub mod workload;

pub use driver::{
    load_read_heavy, run_concurrent, run_ramp, run_read_heavy, run_skewed_mix, DriverConfig,
    DriverReport, RampWindow, ReadHeavyConfig, SkewedMixConfig, ThreadStats,
};
pub use layout::{Table, TableLayout};
pub use random::TpccRandom;
pub use tail::{run_tail, TailConfig, TailReport, TailScan, TailWindow};
pub use workload::{TpccConfig, TpccTransaction, TpccWorkload, TransactionKind};
