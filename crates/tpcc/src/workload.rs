//! The five TPC-C transaction types as logical page-access sequences.

use face_engine::sim::PageAccess;
use serde::{Deserialize, Serialize};

use crate::layout::{Table, TableLayout};
use crate::random::TpccRandom;

/// The TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionKind {
    /// New-Order: the tpmC-counted transaction (~45 % of the mix).
    NewOrder,
    /// Payment (~43 %).
    Payment,
    /// Order-Status (read-only, ~4 %).
    OrderStatus,
    /// Delivery (~4 %).
    Delivery,
    /// Stock-Level (read-only, ~4 %).
    StockLevel,
}

impl TransactionKind {
    /// Whether the transaction modifies the database.
    pub fn is_update(&self) -> bool {
        !matches!(
            self,
            TransactionKind::OrderStatus | TransactionKind::StockLevel
        )
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TransactionKind::NewOrder => "new_order",
            TransactionKind::Payment => "payment",
            TransactionKind::OrderStatus => "order_status",
            TransactionKind::Delivery => "delivery",
            TransactionKind::StockLevel => "stock_level",
        }
    }
}

/// A generated transaction: its kind and the page accesses it performs.
#[derive(Debug, Clone)]
pub struct TpccTransaction {
    /// Which of the five transaction types this is.
    pub kind: TransactionKind,
    /// The page accesses, in execution order.
    pub accesses: Vec<PageAccess>,
}

/// Workload configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TpccConfig {
    /// Number of warehouses (the TPC-C scale factor; the paper uses 500).
    pub warehouses: u32,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 50,
            seed: 42,
        }
    }
}

/// State for generating a stream of TPC-C transactions.
#[derive(Debug, Clone)]
pub struct TpccWorkload {
    layout: TableLayout,
    rng: TpccRandom,
    /// Warehouses this generator draws from (inclusive). The full range by
    /// default; a sub-range when a multi-threaded driver partitions the
    /// warehouses so threads never write each other's rows.
    home: (u64, u64),
    /// Next order id per (warehouse, district), driving the append-only
    /// growth of ORDER / ORDER_LINE / NEW_ORDER.
    next_order_id: Vec<u64>,
    /// Oldest undelivered order per (warehouse, district).
    next_delivery_id: Vec<u64>,
}

impl TpccWorkload {
    /// Create a workload generator over every warehouse.
    pub fn new(config: TpccConfig) -> Self {
        let home = (1, config.warehouses as u64);
        Self::with_home_range(config, home.0, home.1)
    }

    /// Create a workload generator whose transactions stay within warehouses
    /// `lo..=hi` (the layout still spans every warehouse in `config`). The
    /// concurrent TPC-C driver gives each thread a disjoint range, so its
    /// write sets never collide — the engine page-latches but does not lock
    /// rows, exactly like the paper's host without row locks.
    pub fn with_home_range(config: TpccConfig, lo: u64, hi: u64) -> Self {
        assert!(
            lo >= 1 && lo <= hi && hi <= config.warehouses as u64,
            "home range {lo}..={hi} outside 1..={}",
            config.warehouses
        );
        let layout = TableLayout::new(config.warehouses);
        let districts = config.warehouses as usize * 10;
        Self {
            layout,
            rng: TpccRandom::new(config.seed),
            home: (lo, hi),
            next_order_id: vec![3_001; districts],
            next_delivery_id: vec![2_101; districts],
        }
    }

    /// The table layout (shared with the experiment driver for sizing).
    pub fn layout(&self) -> &TableLayout {
        &self.layout
    }

    fn district_index(&self, warehouse: u64, district: u64) -> usize {
        ((warehouse - 1) * 10 + (district - 1)) as usize
    }

    fn page(&self, table: Table, warehouse: u64, row: u64) -> PageAccess {
        PageAccess::read(self.layout.page_of(table, warehouse as u32, row))
    }

    fn page_write(&self, table: Table, warehouse: u64, row: u64) -> PageAccess {
        PageAccess::write(self.layout.page_of(table, warehouse as u32, row))
    }

    fn random_warehouse(&mut self) -> u64 {
        self.rng.uniform(self.home.0, self.home.1)
    }

    /// Whether this generator can reach more than one warehouse (remote
    /// stock / remote payment accesses only make sense then).
    fn multi_warehouse(&self) -> bool {
        self.home.1 > self.home.0
    }

    /// Generate the next transaction according to the standard mix
    /// (45/43/4/4/4).
    pub fn next_transaction(&mut self) -> TpccTransaction {
        let roll = self.rng.uniform(0, 99);
        let kind = match roll {
            0..=44 => TransactionKind::NewOrder,
            45..=87 => TransactionKind::Payment,
            88..=91 => TransactionKind::OrderStatus,
            92..=95 => TransactionKind::Delivery,
            _ => TransactionKind::StockLevel,
        };
        self.transaction_of_kind(kind)
    }

    /// Generate a transaction of a specific kind (used by tests and the
    /// per-type micro-benchmarks).
    pub fn transaction_of_kind(&mut self, kind: TransactionKind) -> TpccTransaction {
        let accesses = match kind {
            TransactionKind::NewOrder => self.new_order(),
            TransactionKind::Payment => self.payment(),
            TransactionKind::OrderStatus => self.order_status(),
            TransactionKind::Delivery => self.delivery(),
            TransactionKind::StockLevel => self.stock_level(),
        };
        TpccTransaction { kind, accesses }
    }

    fn new_order(&mut self) -> Vec<PageAccess> {
        let w = self.random_warehouse();
        let d = self.rng.district_id();
        let c = self.rng.customer_id();
        let idx = self.district_index(w, d);
        let order_id = self.next_order_id[idx];
        self.next_order_id[idx] += 1;

        let mut a = Vec::with_capacity(40);
        a.push(self.page(Table::Warehouse, w, 0));
        // District row is read and updated (next_o_id).
        a.push(self.page_write(Table::District, w, d - 1));
        a.push(self.page(Table::Customer, w, (d - 1) * 3000 + c - 1));

        let lines = self.rng.order_line_count();
        for line in 0..lines {
            let item = self.rng.item_id();
            // 1% of orders access a remote warehouse's stock.
            let supply_w = if self.rng.chance(1) && self.multi_warehouse() {
                self.random_warehouse()
            } else {
                w
            };
            a.push(self.page(Table::Item, w, item - 1));
            a.push(self.page_write(Table::Stock, supply_w, item - 1));
            a.push(self.page_write(Table::OrderLine, w, (d - 1) * 30_000 + order_id * 15 + line));
        }
        a.push(self.page_write(Table::Order, w, (d - 1) * 3_000 + order_id));
        a.push(self.page_write(Table::NewOrder, w, (d - 1) * 900 + order_id));
        a
    }

    fn payment(&mut self) -> Vec<PageAccess> {
        let w = self.random_warehouse();
        let d = self.rng.district_id();
        // 15% of payments are for a customer of a remote warehouse.
        let (cw, cd) = if self.rng.chance(15) && self.multi_warehouse() {
            (self.random_warehouse(), self.rng.district_id())
        } else {
            (w, d)
        };
        let c = self.rng.customer_id();

        let mut a = Vec::with_capacity(8);
        a.push(self.page_write(Table::Warehouse, w, 0));
        a.push(self.page_write(Table::District, w, d - 1));
        // 60% of lookups are by last name: scan a few customer pages.
        if self.rng.chance(60) {
            let base = self.rng.uniform(0, 2_999);
            for i in 0..3 {
                a.push(self.page(Table::Customer, cw, (cd - 1) * 3000 + (base + i) % 3000));
            }
        }
        a.push(self.page_write(Table::Customer, cw, (cd - 1) * 3000 + c - 1));
        let history_row = self.rng.uniform(0, 29_999);
        a.push(self.page_write(Table::History, w, history_row));
        a
    }

    fn order_status(&mut self) -> Vec<PageAccess> {
        let w = self.random_warehouse();
        let d = self.rng.district_id();
        let c = self.rng.customer_id();
        let idx = self.district_index(w, d);
        let recent_order = self.next_order_id[idx].saturating_sub(self.rng.uniform(1, 20));

        let mut a = Vec::with_capacity(8);
        if self.rng.chance(60) {
            let base = self.rng.uniform(0, 2_999);
            for i in 0..3 {
                a.push(self.page(Table::Customer, w, (d - 1) * 3000 + (base + i) % 3000));
            }
        }
        a.push(self.page(Table::Customer, w, (d - 1) * 3000 + c - 1));
        a.push(self.page(Table::Order, w, (d - 1) * 3_000 + recent_order));
        // Order lines of that order (5-15 rows, typically 1-2 pages).
        a.push(self.page(Table::OrderLine, w, (d - 1) * 30_000 + recent_order * 15));
        a.push(self.page(
            Table::OrderLine,
            w,
            (d - 1) * 30_000 + recent_order * 15 + 14,
        ));
        a
    }

    fn delivery(&mut self) -> Vec<PageAccess> {
        let w = self.random_warehouse();
        let mut a = Vec::with_capacity(60);
        for d in 1..=10u64 {
            let idx = self.district_index(w, d);
            if self.next_delivery_id[idx] >= self.next_order_id[idx] {
                continue;
            }
            let order_id = self.next_delivery_id[idx];
            self.next_delivery_id[idx] += 1;
            // Delete the NEW_ORDER row, update the ORDER row, sum and update
            // the order lines, credit the customer.
            a.push(self.page_write(Table::NewOrder, w, (d - 1) * 900 + order_id));
            a.push(self.page_write(Table::Order, w, (d - 1) * 3_000 + order_id));
            a.push(self.page_write(Table::OrderLine, w, (d - 1) * 30_000 + order_id * 15));
            let customer = self.rng.customer_id();
            a.push(self.page_write(Table::Customer, w, (d - 1) * 3000 + customer - 1));
        }
        a
    }

    fn stock_level(&mut self) -> Vec<PageAccess> {
        let w = self.random_warehouse();
        let d = self.rng.district_id();
        let idx = self.district_index(w, d);
        let newest = self.next_order_id[idx];

        let mut a = Vec::with_capacity(30);
        a.push(self.page(Table::District, w, d - 1));
        // Examine the order lines of the last 20 orders and the stock rows of
        // their items.
        for back in 0..20u64 {
            let order = newest.saturating_sub(back + 1);
            a.push(self.page(Table::OrderLine, w, (d - 1) * 30_000 + order * 15));
        }
        for _ in 0..8 {
            let item = self.rng.item_id();
            a.push(self.page(Table::Stock, w, item - 1));
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn workload() -> TpccWorkload {
        TpccWorkload::new(TpccConfig {
            warehouses: 10,
            seed: 7,
        })
    }

    #[test]
    fn mix_matches_the_specification() {
        let mut w = workload();
        let mut counts: HashMap<TransactionKind, u64> = HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            *counts.entry(w.next_transaction().kind).or_default() += 1;
        }
        let share = |k| *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
        assert!((share(TransactionKind::NewOrder) - 0.45).abs() < 0.02);
        assert!((share(TransactionKind::Payment) - 0.43).abs() < 0.02);
        assert!((share(TransactionKind::OrderStatus) - 0.04).abs() < 0.01);
        assert!((share(TransactionKind::Delivery) - 0.04).abs() < 0.01);
        assert!((share(TransactionKind::StockLevel) - 0.04).abs() < 0.01);
    }

    #[test]
    fn new_order_touches_the_expected_tables() {
        let mut w = workload();
        let txn = w.transaction_of_kind(TransactionKind::NewOrder);
        assert!(txn.kind.is_update());
        assert!(txn.accesses.len() >= 5 + 3 * 5);
        let files: std::collections::HashSet<u32> =
            txn.accesses.iter().map(|a| a.page.file).collect();
        for t in [
            Table::Warehouse,
            Table::District,
            Table::Customer,
            Table::Item,
            Table::Stock,
            Table::OrderLine,
            Table::Order,
            Table::NewOrder,
        ] {
            assert!(files.contains(&t.file_id()), "{t:?} missing");
        }
        // Stock and order-line accesses are writes.
        assert!(txn
            .accesses
            .iter()
            .any(|a| a.page.file == Table::Stock.file_id() && a.write));
    }

    #[test]
    fn read_only_transactions_do_not_write() {
        let mut w = workload();
        for kind in [TransactionKind::OrderStatus, TransactionKind::StockLevel] {
            let txn = w.transaction_of_kind(kind);
            assert!(!txn.kind.is_update());
            assert!(txn.accesses.iter().all(|a| !a.write), "{kind:?} wrote");
            assert!(!txn.accesses.is_empty());
        }
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let mut w = workload();
        // Generate some new orders first so delivery has work.
        for _ in 0..50 {
            w.transaction_of_kind(TransactionKind::NewOrder);
        }
        let txn = w.transaction_of_kind(TransactionKind::Delivery);
        assert!(txn.kind.is_update());
        assert!(!txn.accesses.is_empty());
        assert!(txn.accesses.iter().any(|a| a.write));
    }

    #[test]
    fn order_ids_advance_and_pages_stay_in_bounds() {
        let mut w = workload();
        let pages = w.layout().total_pages();
        let before = w.next_order_id[0];
        for _ in 0..200 {
            let txn = w.next_transaction();
            for a in &txn.accesses {
                let table = Table::ALL
                    .iter()
                    .find(|t| t.file_id() == a.page.file)
                    .expect("access maps to a TPC-C table");
                assert!(
                    (a.page.page_no as u64) < w.layout().table_pages(*table),
                    "page out of range for {table:?}"
                );
            }
            assert!(pages > 0);
        }
        assert!(w.next_order_id.iter().any(|&id| id > before));
    }

    #[test]
    fn accesses_are_skewed_toward_hot_pages() {
        let mut w = workload();
        let mut counts: HashMap<face_pagestore::PageId, u64> = HashMap::new();
        for _ in 0..2000 {
            for a in w.next_transaction().accesses {
                *counts.entry(a.page).or_default() += 1;
            }
        }
        let total: u64 = counts.values().sum();
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(freqs.len() / 10).sum();
        // TPC-C locality: the hottest 10% of touched pages should absorb well
        // over a third of the traffic.
        assert!(
            top10 as f64 > 0.35 * total as f64,
            "top decile only {:.1}%",
            100.0 * top10 as f64 / total as f64
        );
    }

    #[test]
    fn workloads_with_same_seed_are_identical() {
        let mut a = TpccWorkload::new(TpccConfig {
            warehouses: 5,
            seed: 9,
        });
        let mut b = TpccWorkload::new(TpccConfig {
            warehouses: 5,
            seed: 9,
        });
        for _ in 0..50 {
            let ta = a.next_transaction();
            let tb = b.next_transaction();
            assert_eq!(ta.kind, tb.kind);
            assert_eq!(ta.accesses, tb.accesses);
        }
    }
}
