//! Tail-latency driver: zipfian traffic in fixed wall-clock windows, with
//! optional mid-run scan injection and burst arrival.
//!
//! Unlike the transaction-count drivers in [`crate::driver`], this driver
//! runs for a fixed wall-clock [`TailConfig::duration`] sliced into equal
//! [`TailConfig::window`]s, and every thread records each transaction's
//! commit latency into the histogram of the *window the commit landed in*.
//! Windows are wall-clock-aligned across threads (all pacers and window
//! clocks share one start instant), so "the window the scan ran in" means
//! the same thing on every thread — the property the p99-under-scan gate
//! depends on.
//!
//! Three workload ingredients come from `face-workload`:
//!
//! - a zipfian [`WorkloadGen`] per thread (seed + thread index) dealing
//!   get/read-modify-write transactions over the loaded active set;
//! - an optional [`TailScan`]: at a configured elapsed time, thread 0 sweeps
//!   a contiguous *unloaded* key region sized to flush the flash cache
//!   (bucket pages exist without loading — the engine pre-allocates them —
//!   so each scan get is a real disk fetch and a clean first-touch insert,
//!   exactly the traffic ghost admission and S3-FIFO are built to reject);
//! - an [`Arrival`] schedule driving per-transaction pacing, including
//!   single-burst shapes for the burst-recovery gate.
//!
//! Scan gets are *not* recorded in the latency histograms (they are the
//! pollution, not the workload); they are counted in
//! [`TailReport::scan_pages`]. Read-modify-write operations whose key falls
//! outside the thread's write partition degrade to plain gets, keeping
//! write-sets disjoint (like every other driver here) without disturbing
//! the zipfian key stream.

use std::sync::Arc;
use std::time::{Duration, Instant};

use face_engine::Database;
use face_workload::{
    Arrival, LatencyHistogram, LatencySummary, MixConfig, Op, Pacer, ScanPlan, WorkloadGen,
};

/// A mid-run cache-flushing scan.
#[derive(Debug, Clone, Copy)]
pub struct TailScan {
    /// Elapsed run time at which thread 0 starts the sweep.
    pub at: Duration,
    /// The key range to sweep (see [`ScanPlan::sized_to_flush`]).
    pub plan: ScanPlan,
}

/// Configuration of a tail-latency run.
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// Worker threads (thread 0 additionally runs the scan, if any).
    pub threads: usize,
    /// Total measured wall-clock time.
    pub duration: Duration,
    /// Window width; the run is sliced into `ceil(duration / window)`
    /// windows with per-window latency histograms.
    pub window: Duration,
    /// The zipfian get/read-modify-write mix each thread deals.
    pub mix: MixConfig,
    /// Arrival pacing shared by all threads (phases align on one clock).
    pub arrival: Arrival,
    /// Optional mid-run scan, executed once by thread 0.
    pub scan: Option<TailScan>,
    /// Base RNG seed; thread `t` streams from `seed + t`.
    pub seed: u64,
}

/// One wall-clock window of a [`TailReport`], merged across threads.
#[derive(Debug, Clone)]
pub struct TailWindow {
    /// Window index (0 = first window).
    pub window: usize,
    /// Transactions committed in this window (all threads).
    pub committed: u64,
    /// Merged latency summary for the window.
    pub summary: LatencySummary,
}

/// What a tail run observed.
#[derive(Debug, Clone)]
pub struct TailReport {
    /// Per-window merged views, in window order.
    pub windows: Vec<TailWindow>,
    /// Whole-run merged latency histogram.
    pub total: LatencyHistogram,
    /// Transactions committed across all threads and windows.
    pub committed: u64,
    /// `get` operations performed (scan gets excluded).
    pub gets: u64,
    /// `put` operations performed.
    pub puts: u64,
    /// Keys swept by the scan (0 when no scan configured).
    pub scan_pages: u64,
    /// Window index in which the scan started, if one ran.
    pub scan_window: Option<usize>,
    /// Window index in which the scan finished, if one ran. Windows after
    /// this one see the scan's *aftermath* (a flushed cache) without the
    /// scan's own device traffic — the p99-under-scan gate compares those,
    /// since during the sweep every arm pays the same buffer-pool and
    /// device contention regardless of admission policy.
    pub scan_end_window: Option<usize>,
    /// Wall-clock time the scan itself took, if one ran.
    pub scan_wall: Option<Duration>,
    /// Windows overlapping the unpaced burst phase, as
    /// `(first, last)` inclusive — present for single-burst arrivals.
    pub burst_windows: Option<(usize, usize)>,
    /// Transactions that committed after the nominal run end and were
    /// clamped into the last window (logged by the bench gate, like
    /// `fig4_concurrent` logs clamped thread counts).
    pub clamped_txns: u64,
    /// Wall time from first spawn to last join.
    pub wall: Duration,
}

impl TailReport {
    /// p99 (µs) of each window, in window order.
    pub fn window_p99s(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.summary.p99_us).collect()
    }
}

struct TailThreadResult {
    window_hists: Vec<LatencyHistogram>,
    window_committed: Vec<u64>,
    gets: u64,
    puts: u64,
    scan_pages: u64,
    scan_window: Option<usize>,
    scan_end_window: Option<usize>,
    scan_wall: Option<Duration>,
    clamped_txns: u64,
}

/// Number of windows a run of `duration` sliced by `window` produces.
fn window_count(duration: Duration, window: Duration) -> usize {
    let d = duration.as_nanos();
    let w = window.as_nanos().max(1);
    (d.div_ceil(w)).max(1) as usize
}

/// Drive `db` with zipfian tail-latency traffic (see [`TailConfig`]).
/// Call [`crate::driver::load_read_heavy`] for `config.mix.keys` first so
/// the active set is populated (and, having been written, flash-resident
/// under every admission policy).
///
/// # Panics
/// Panics if `threads == 0`, the window is zero, or an engine operation
/// fails (the driver is a benchmark harness; failures are bugs).
pub fn run_tail(db: &Arc<Database>, config: &TailConfig) -> TailReport {
    assert!(config.threads > 0, "need at least one thread");
    assert!(config.window > Duration::ZERO, "window must be non-zero");
    let n_windows = window_count(config.duration, config.window);
    let start = Instant::now();
    let mut results: Vec<Option<TailThreadResult>> = Vec::new();
    results.resize_with(config.threads, || None);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(config.threads);
        for t in 0..config.threads {
            let db = Arc::clone(db);
            let cfg = config.clone();
            handles.push(s.spawn(move || run_tail_thread(&db, &cfg, t, start, n_windows)));
        }
        for (t, handle) in handles.into_iter().enumerate() {
            results[t] = Some(handle.join().expect("worker thread panicked"));
        }
    });

    let mut windows = Vec::with_capacity(n_windows);
    let mut merged_hists: Vec<LatencyHistogram> = Vec::new();
    merged_hists.resize_with(n_windows, LatencyHistogram::new);
    let mut window_committed = vec![0u64; n_windows];
    let mut total = LatencyHistogram::new();
    let (mut gets, mut puts, mut scan_pages, mut clamped) = (0u64, 0u64, 0u64, 0u64);
    let (mut scan_window, mut scan_end_window, mut scan_wall) = (None, None, None);
    for result in results.into_iter().flatten() {
        for (w, hist) in result.window_hists.iter().enumerate() {
            merged_hists[w].merge(hist);
            total.merge(hist);
        }
        for (w, c) in result.window_committed.iter().enumerate() {
            window_committed[w] += c;
        }
        gets += result.gets;
        puts += result.puts;
        scan_pages += result.scan_pages;
        clamped += result.clamped_txns;
        scan_window = scan_window.or(result.scan_window);
        scan_end_window = scan_end_window.or(result.scan_end_window);
        scan_wall = scan_wall.or(result.scan_wall);
    }
    for (w, hist) in merged_hists.iter().enumerate() {
        windows.push(TailWindow {
            window: w,
            committed: window_committed[w],
            summary: hist.summary(),
        });
    }
    let burst_windows = match config.arrival {
        Arrival::SingleBurst { pre, burst, .. } if burst > Duration::ZERO => {
            let first = (pre.as_nanos() / config.window.as_nanos().max(1)) as usize;
            let last_ns = (pre + burst).as_nanos().saturating_sub(1);
            let last = (last_ns / config.window.as_nanos().max(1)) as usize;
            Some((first.min(n_windows - 1), last.min(n_windows - 1)))
        }
        _ => None,
    };
    TailReport {
        windows,
        total,
        committed: window_committed.iter().sum(),
        gets,
        puts,
        scan_pages,
        scan_window,
        scan_end_window,
        scan_wall,
        burst_windows,
        clamped_txns: clamped,
        wall: start.elapsed(),
    }
}

fn run_tail_thread(
    db: &Database,
    config: &TailConfig,
    thread: usize,
    start: Instant,
    n_windows: usize,
) -> TailThreadResult {
    let n = config.threads as u64;
    let t = thread as u64;
    let keys = config.mix.keys;
    // Disjoint write partition over the active set, like the other drivers.
    let write_lo = t * keys / n;
    let write_hi = ((t + 1) * keys / n).max(write_lo + 1);
    let mut gen = WorkloadGen::new(config.mix, config.seed + t);
    let pacer = Pacer::started_at(config.arrival, start);
    let mut result = TailThreadResult {
        window_hists: Vec::new(),
        window_committed: vec![0u64; n_windows],
        gets: 0,
        puts: 0,
        scan_pages: 0,
        scan_window: None,
        scan_end_window: None,
        scan_wall: None,
        clamped_txns: 0,
    };
    result
        .window_hists
        .resize_with(n_windows, LatencyHistogram::new);
    let mut scan_pending = if thread == 0 { config.scan } else { None };
    let mut txn_ops = Vec::with_capacity(config.mix.ops_per_txn as usize);
    let mut value = [0u8; 16];
    let window_ns = config.window.as_nanos().max(1);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= config.duration {
            break;
        }
        if let Some(scan) = scan_pending {
            if elapsed >= scan.at {
                // The cache-flushing sweep. Not paced, not latency-recorded:
                // it is the pollution the workload suffers, not part of it.
                result.scan_window =
                    Some(((elapsed.as_nanos() / window_ns) as usize).min(n_windows - 1));
                let scan_started = Instant::now();
                for key in scan.plan.keys() {
                    db.get(key).expect("scan get failed");
                    result.scan_pages += 1;
                }
                result.scan_wall = Some(scan_started.elapsed());
                result.scan_end_window =
                    Some(((start.elapsed().as_nanos() / window_ns) as usize).min(n_windows - 1));
                scan_pending = None;
                continue;
            }
        }
        pacer.pause();
        gen.next_txn(&mut txn_ops);
        let txn_started = Instant::now();
        let txn = db.begin();
        for op in &txn_ops {
            match *op {
                Op::ReadModifyWrite { key } if (write_lo..write_hi).contains(&key) => {
                    db.get(key).expect("rmw get failed");
                    value[..8].copy_from_slice(&key.to_le_bytes());
                    value[8..].copy_from_slice(&t.to_le_bytes());
                    db.put(txn, key, &value).expect("rmw put failed");
                    result.gets += 1;
                    result.puts += 1;
                }
                // Out-of-partition RMWs degrade to reads: write-sets stay
                // disjoint without perturbing the zipfian key stream.
                Op::Get { key } | Op::ReadModifyWrite { key } => {
                    db.get(key).expect("get failed");
                    result.gets += 1;
                }
            }
        }
        db.commit(txn).expect("commit failed");
        let latency = txn_started.elapsed();
        let end_elapsed = start.elapsed();
        let mut w = (end_elapsed.as_nanos() / window_ns) as usize;
        if w >= n_windows {
            w = n_windows - 1;
            result.clamped_txns += 1;
        }
        result.window_hists[w].record(latency);
        result.window_committed[w] += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::load_read_heavy;
    use face_engine::{CachePolicyKind, EngineConfig};

    fn db() -> Arc<Database> {
        Arc::new(
            Database::open(
                EngineConfig::in_memory()
                    .buffer_frames(128)
                    .table_buckets(4096)
                    .flash_cache(CachePolicyKind::FaceGsc, 1024),
            )
            .unwrap(),
        )
    }

    fn mix(keys: u64) -> MixConfig {
        MixConfig {
            keys,
            theta: 0.9,
            rmw_pct: 10,
            ops_per_txn: 4,
            rotate_every_txns: 0,
            rotate_step: 0,
        }
    }

    #[test]
    fn windows_partition_the_run() {
        let db = db();
        load_read_heavy(&db, 512);
        let config = TailConfig {
            threads: 2,
            duration: Duration::from_millis(200),
            window: Duration::from_millis(50),
            mix: mix(512),
            arrival: Arrival::Unpaced,
            scan: None,
            seed: 7,
        };
        let report = run_tail(&db, &config);
        assert_eq!(report.windows.len(), 4);
        let per_window: u64 = report.windows.iter().map(|w| w.committed).sum();
        assert_eq!(per_window, report.committed);
        assert_eq!(report.total.count(), report.committed);
        assert!(report.committed > 0);
        assert!(report.scan_window.is_none());
        assert_eq!(report.scan_pages, 0);
        assert!(report.burst_windows.is_none());
        // Unpaced 200 ms across 2 threads commits in every window.
        for w in &report.windows {
            assert!(w.committed > 0, "window {} empty", w.window);
            assert_eq!(w.summary.count, w.committed);
        }
    }

    #[test]
    fn scan_runs_once_and_is_not_latency_recorded() {
        let db = db();
        load_read_heavy(&db, 256);
        let config = TailConfig {
            threads: 2,
            duration: Duration::from_millis(160),
            window: Duration::from_millis(40),
            mix: mix(256),
            arrival: Arrival::Unpaced,
            scan: Some(TailScan {
                at: Duration::from_millis(40),
                plan: ScanPlan {
                    first_key: 256,
                    key_span: 300,
                },
            }),
            seed: 3,
        };
        let report = run_tail(&db, &config);
        assert_eq!(report.scan_pages, 300);
        let sw = report.scan_window.expect("scan ran");
        assert!(sw >= 1, "scan window {sw} before its trigger");
        let end = report.scan_end_window.expect("scan finished");
        assert!(end >= sw, "scan end window {end} before start window {sw}");
        assert!(report.scan_wall.expect("scan wall") > Duration::ZERO);
        // Scan gets are excluded from both op counts and histograms.
        assert_eq!(report.total.count(), report.committed);
    }

    #[test]
    fn burst_windows_cover_the_unpaced_phase() {
        let db = db();
        load_read_heavy(&db, 256);
        let config = TailConfig {
            threads: 2,
            duration: Duration::from_millis(200),
            window: Duration::from_millis(40),
            mix: mix(256),
            arrival: Arrival::SingleBurst {
                pre: Duration::from_millis(80),
                burst: Duration::from_millis(40),
                gap: Duration::from_micros(300),
            },
            scan: None,
            seed: 5,
        };
        let report = run_tail(&db, &config);
        assert_eq!(report.burst_windows, Some((2, 2)));
        // The unpaced burst window commits more than the paced ones around it.
        let burst = report.windows[2].committed;
        assert!(burst > 0);
    }
}
