//! Physical layout of the nine TPC-C tables over 4 KiB pages.

use face_pagestore::PageId;
use serde::{Deserialize, Serialize};

/// The TPC-C tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Table {
    /// WAREHOUSE — 1 row per warehouse.
    Warehouse,
    /// DISTRICT — 10 rows per warehouse.
    District,
    /// CUSTOMER — 30,000 rows per warehouse (~655 bytes each).
    Customer,
    /// HISTORY — 30,000+ rows per warehouse, append-only.
    History,
    /// NEW_ORDER — ~9,000 rows per warehouse.
    NewOrder,
    /// ORDER — 30,000+ rows per warehouse.
    Order,
    /// ORDER_LINE — ~300,000 rows per warehouse (~54 bytes each).
    OrderLine,
    /// ITEM — 100,000 rows, shared across warehouses.
    Item,
    /// STOCK — 100,000 rows per warehouse (~306 bytes each).
    Stock,
}

impl Table {
    /// All tables, in file-id order.
    pub const ALL: [Table; 9] = [
        Table::Warehouse,
        Table::District,
        Table::Customer,
        Table::History,
        Table::NewOrder,
        Table::Order,
        Table::OrderLine,
        Table::Item,
        Table::Stock,
    ];

    /// The page-store file id used for this table.
    pub fn file_id(self) -> u32 {
        match self {
            Table::Warehouse => 10,
            Table::District => 11,
            Table::Customer => 12,
            Table::History => 13,
            Table::NewOrder => 14,
            Table::Order => 15,
            Table::OrderLine => 16,
            Table::Item => 17,
            Table::Stock => 18,
        }
    }

    /// Rows per warehouse at initial population (ITEM is global and listed as
    /// its absolute cardinality).
    pub fn rows_per_warehouse(self) -> u64 {
        match self {
            Table::Warehouse => 1,
            Table::District => 10,
            Table::Customer => 30_000,
            Table::History => 30_000,
            Table::NewOrder => 9_000,
            Table::Order => 30_000,
            Table::OrderLine => 300_000,
            Table::Item => 100_000,
            Table::Stock => 100_000,
        }
    }

    /// Approximate rows per 4 KiB page, derived from the TPC-C row sizes
    /// (§1.3 of the specification) with typical PostgreSQL tuple overhead.
    pub fn rows_per_page(self) -> u64 {
        match self {
            Table::Warehouse => 40,
            Table::District => 40,
            Table::Customer => 6,
            Table::History => 80,
            Table::NewOrder => 400,
            Table::Order => 120,
            Table::OrderLine => 70,
            Table::Item => 45,
            Table::Stock => 12,
        }
    }

    /// Whether the table grows during the run (orders, order lines, history).
    pub fn is_append_only(self) -> bool {
        matches!(
            self,
            Table::History | Table::Order | Table::OrderLine | Table::NewOrder
        )
    }
}

/// Maps (table, warehouse, row) to pages for a given scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableLayout {
    warehouses: u32,
    /// Growth headroom multiplier for append-only tables (the paper's 50 GB
    /// database includes space into which orders grow).
    growth_factor: f64,
}

impl TableLayout {
    /// A layout for `warehouses` warehouses with the default 30 % growth
    /// headroom for append-only tables.
    pub fn new(warehouses: u32) -> Self {
        assert!(warehouses > 0, "need at least one warehouse");
        Self {
            warehouses,
            growth_factor: 1.3,
        }
    }

    /// Number of warehouses.
    pub fn warehouses(&self) -> u32 {
        self.warehouses
    }

    /// Pages used by one table across all warehouses.
    pub fn table_pages(&self, table: Table) -> u64 {
        let rows = if table == Table::Item {
            table.rows_per_warehouse()
        } else {
            table.rows_per_warehouse() * self.warehouses as u64
        };
        let rows = if table.is_append_only() {
            (rows as f64 * self.growth_factor).ceil() as u64
        } else {
            rows
        };
        rows.div_ceil(table.rows_per_page()).max(1)
    }

    /// Total database size in pages.
    pub fn total_pages(&self) -> u64 {
        Table::ALL.iter().map(|t| self.table_pages(*t)).sum()
    }

    /// Total database size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * face_pagestore::PAGE_SIZE as u64
    }

    /// The page holding row `row` of `table` in `warehouse` (warehouses are
    /// 1-based as in the TPC-C specification; ITEM ignores the warehouse).
    pub fn page_of(&self, table: Table, warehouse: u32, row: u64) -> PageId {
        debug_assert!(warehouse >= 1 && warehouse <= self.warehouses);
        let rows_per_page = table.rows_per_page();
        let global_row = if table == Table::Item {
            row % table.rows_per_warehouse()
        } else {
            let capacity = if table.is_append_only() {
                (table.rows_per_warehouse() as f64 * self.growth_factor).ceil() as u64
            } else {
                table.rows_per_warehouse()
            };
            (warehouse as u64 - 1) * capacity + (row % capacity)
        };
        let page_no = (global_row / rows_per_page) % self.table_pages(table);
        PageId::new(table.file_id(), page_no as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_size_scales_with_warehouses() {
        let small = TableLayout::new(10);
        let large = TableLayout::new(100);
        assert!(large.total_pages() > 9 * small.total_pages());
        // The paper's 500-warehouse database is roughly 50-60 GB including
        // growth headroom; our layout should land in the same ballpark.
        let paper = TableLayout::new(500);
        let gb = paper.total_bytes() as f64 / 1e9;
        assert!(gb > 30.0 && gb < 90.0, "500 warehouses -> {gb:.1} GB");
    }

    #[test]
    fn stock_and_customer_dominate_the_size() {
        let layout = TableLayout::new(100);
        let stock = layout.table_pages(Table::Stock);
        let customer = layout.table_pages(Table::Customer);
        let warehouse = layout.table_pages(Table::Warehouse);
        assert!(stock > 100 * warehouse);
        assert!(customer > 100 * warehouse);
    }

    #[test]
    fn page_mapping_is_stable_and_in_range() {
        let layout = TableLayout::new(10);
        for table in Table::ALL {
            let pages = layout.table_pages(table);
            for row in [0u64, 1, 17, 999_999] {
                let pid = layout.page_of(table, 3, row);
                assert_eq!(pid.file, table.file_id());
                assert!((pid.page_no as u64) < pages, "{table:?} row {row}");
                // Deterministic.
                assert_eq!(pid, layout.page_of(table, 3, row));
            }
        }
    }

    #[test]
    fn different_warehouses_use_disjoint_pages_for_small_tables() {
        let layout = TableLayout::new(50);
        let a = layout.page_of(Table::Stock, 1, 5);
        let b = layout.page_of(Table::Stock, 2, 5);
        assert_ne!(a, b);
        // ITEM is shared: same page regardless of warehouse.
        assert_eq!(
            layout.page_of(Table::Item, 1, 5),
            layout.page_of(Table::Item, 2, 5)
        );
    }

    #[test]
    fn rows_within_a_page_share_it() {
        let layout = TableLayout::new(10);
        let a = layout.page_of(Table::OrderLine, 1, 0);
        let b = layout.page_of(Table::OrderLine, 1, 1);
        assert_eq!(a, b, "consecutive order lines share a page");
    }

    #[test]
    #[should_panic(expected = "at least one warehouse")]
    fn zero_warehouses_rejected() {
        let _ = TableLayout::new(0);
    }
}
