//! Device calibration profiles.
//!
//! Each profile captures the Table 1 measurements of the paper: 4 KiB random
//! read/write throughput (IOPS) and sequential read/write bandwidth (MB/s),
//! plus capacity and price so that the cost-effectiveness analysis (paper
//! §2.2, Table 5) can be reproduced.

use serde::{Deserialize, Serialize};

use crate::clock::{SimDuration, NANOS_PER_SEC};
use crate::request::IoRequest;
use crate::stats::OpClass;

/// Broad class of a device, used for reporting and for choosing sensible
/// defaults (e.g. the flash cache must be placed on a flash device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A rotating magnetic disk (or an array of them).
    HardDisk,
    /// A NAND-flash solid state drive.
    FlashSsd,
    /// DRAM; used to model the log device in some configurations and for the
    /// cost-model comparisons.
    Dram,
}

/// Calibration numbers for one device.
///
/// Service times are derived as:
/// * random ops: `1 / iops` (the IOPS measurements already include the
///   device's internal parallelism under a realistic queue depth);
/// * sequential ops: `len / bandwidth` plus a tiny per-op setup cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// 4 KiB random read throughput, IOPS.
    pub random_read_iops: f64,
    /// 4 KiB random write throughput, IOPS.
    pub random_write_iops: f64,
    /// Sequential read bandwidth, MB/s (decimal megabytes, as in the paper).
    pub seq_read_mbps: f64,
    /// Sequential write bandwidth, MB/s.
    pub seq_write_mbps: f64,
    /// Capacity in gigabytes.
    pub capacity_gb: f64,
    /// Street price in USD (2012 numbers from the paper, used only for the
    /// cost-effectiveness analysis).
    pub price_usd: f64,
}

impl DeviceProfile {
    /// Samsung 470 Series 256 GB (MLC) — the paper's primary caching device.
    pub fn samsung470_mlc() -> Self {
        Self {
            name: "Samsung 470 MLC SSD".to_string(),
            kind: DeviceKind::FlashSsd,
            random_read_iops: 28_495.0,
            random_write_iops: 6_314.0,
            seq_read_mbps: 251.33,
            seq_write_mbps: 242.80,
            capacity_gb: 256.0,
            price_usd: 450.0,
        }
    }

    /// Intel X25-M G2 80 GB (MLC).
    pub fn intel_x25m_mlc() -> Self {
        Self {
            name: "Intel X25-M G2 MLC SSD".to_string(),
            kind: DeviceKind::FlashSsd,
            random_read_iops: 35_601.0,
            random_write_iops: 2_547.0,
            seq_read_mbps: 258.70,
            seq_write_mbps: 80.81,
            capacity_gb: 80.0,
            price_usd: 180.0,
        }
    }

    /// Intel X25-E 32 GB (SLC) — the paper's SLC caching device.
    pub fn intel_x25e_slc() -> Self {
        Self {
            name: "Intel X25-E SLC SSD".to_string(),
            kind: DeviceKind::FlashSsd,
            random_read_iops: 38_427.0,
            random_write_iops: 5_057.0,
            seq_read_mbps: 259.2,
            seq_write_mbps: 195.25,
            capacity_gb: 32.0,
            price_usd: 440.0,
        }
    }

    /// A single Seagate Cheetah 15K.6 146.8 GB enterprise disk.
    pub fn seagate_15k() -> Self {
        Self {
            name: "Seagate Cheetah 15K.6".to_string(),
            kind: DeviceKind::HardDisk,
            random_read_iops: 409.0,
            random_write_iops: 343.0,
            seq_read_mbps: 156.0,
            seq_write_mbps: 154.0,
            capacity_gb: 146.8,
            price_usd: 240.0,
        }
    }

    /// The paper's 8-disk RAID-0 array, measured as a single device.
    ///
    /// Prefer [`crate::RaidArray`] built from [`DeviceProfile::seagate_15k`]
    /// when the number of spindles is varied (Figure 5); this profile is the
    /// aggregate measurement from Table 1 and is kept for calibration tests.
    pub fn raid0_8disk_measured() -> Self {
        Self {
            name: "8-disk RAID-0 (measured)".to_string(),
            kind: DeviceKind::HardDisk,
            random_read_iops: 2_598.0,
            random_write_iops: 2_502.0,
            seq_read_mbps: 848.0,
            seq_write_mbps: 843.0,
            capacity_gb: 1_170.0,
            price_usd: 1_920.0,
        }
    }

    /// A DRAM "device": effectively instantaneous compared to storage. Used by
    /// the cost model and by tests that need a near-zero-latency tier.
    pub fn dram() -> Self {
        Self {
            name: "DRAM".to_string(),
            kind: DeviceKind::Dram,
            random_read_iops: 10_000_000.0,
            random_write_iops: 10_000_000.0,
            seq_read_mbps: 10_000.0,
            seq_write_mbps: 10_000.0,
            capacity_gb: 4.0,
            price_usd: 80.0,
        }
    }

    /// Price per gigabyte in USD.
    pub fn price_per_gb(&self) -> f64 {
        self.price_usd / self.capacity_gb
    }

    /// Service time of one request of the given class and length.
    pub fn service_time(&self, class: OpClass, len: u32) -> SimDuration {
        let secs = match class {
            OpClass::RandomRead => {
                // The IOPS calibration is for 4 KiB requests; larger random
                // requests pay the per-op cost plus transfer at sequential
                // bandwidth for the excess.
                let base = 1.0 / self.random_read_iops;
                base + self.excess_transfer_secs(len, self.seq_read_mbps)
            }
            OpClass::RandomWrite => {
                let base = 1.0 / self.random_write_iops;
                base + self.excess_transfer_secs(len, self.seq_write_mbps)
            }
            OpClass::SequentialRead => {
                Self::transfer_secs(len, self.seq_read_mbps) + Self::SEQ_SETUP_SECS
            }
            OpClass::SequentialWrite => {
                Self::transfer_secs(len, self.seq_write_mbps) + Self::SEQ_SETUP_SECS
            }
        };
        (secs * NANOS_PER_SEC as f64).round() as SimDuration
    }

    /// Service time of a request whose class has already been resolved by the
    /// device's sequentiality detector.
    pub fn service_time_for(&self, req: &IoRequest, class: OpClass) -> SimDuration {
        debug_assert_eq!(class.is_read(), req.op.is_read());
        self.service_time(class, req.len)
    }

    /// A small fixed per-request setup cost for sequential requests
    /// (command issue, DMA setup). 20 microseconds.
    const SEQ_SETUP_SECS: f64 = 20e-6;

    fn transfer_secs(len: u32, mbps: f64) -> f64 {
        len as f64 / (mbps * 1_000_000.0)
    }

    fn excess_transfer_secs(&self, len: u32, mbps: f64) -> f64 {
        let excess = len.saturating_sub(crate::PAGE_SIZE as u32);
        if excess == 0 {
            0.0
        } else {
            Self::transfer_secs(excess, mbps)
        }
    }

    /// The average time to access one 4 KiB page with a 50/50 random
    /// read/write mix. This is the `C_disk` / `C_flash` of the paper's §2.2
    /// cost analysis.
    pub fn avg_random_page_access_secs(&self) -> f64 {
        0.5 / self.random_read_iops + 0.5 / self.random_write_iops
    }

    /// Random-write to sequential-write bandwidth ratio — the asymmetry the
    /// FaCE design exploits (paper §2.1: 10-13% for the tested SSDs).
    pub fn random_write_fraction_of_sequential(&self) -> f64 {
        let rand_mbps = self.random_write_iops * crate::PAGE_SIZE as f64 / 1_000_000.0;
        rand_mbps / self.seq_write_mbps
    }

    /// Random-read to sequential-read bandwidth ratio (48-60% in the paper).
    pub fn random_read_fraction_of_sequential(&self) -> f64 {
        let rand_mbps = self.random_read_iops * crate::PAGE_SIZE as f64 / 1_000_000.0;
        rand_mbps / self.seq_read_mbps
    }

    /// Returns true if this device is a flash SSD.
    pub fn is_flash(&self) -> bool {
        self.kind == DeviceKind::FlashSsd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NANOS_PER_MICRO;

    #[test]
    fn table1_profiles_have_expected_iops() {
        assert_eq!(DeviceProfile::samsung470_mlc().random_read_iops, 28_495.0);
        assert_eq!(DeviceProfile::intel_x25m_mlc().random_write_iops, 2_547.0);
        assert_eq!(DeviceProfile::intel_x25e_slc().random_read_iops, 38_427.0);
        assert_eq!(DeviceProfile::seagate_15k().random_read_iops, 409.0);
        assert_eq!(
            DeviceProfile::raid0_8disk_measured().random_read_iops,
            2_598.0
        );
    }

    #[test]
    fn random_service_times_match_iops() {
        let p = DeviceProfile::samsung470_mlc();
        let t = p.service_time(OpClass::RandomRead, 4096);
        // 1/28495 s = ~35.1 us
        let expected_us = 1e6 / 28_495.0;
        assert!((t as f64 / NANOS_PER_MICRO as f64 - expected_us).abs() < 0.5);

        let disk = DeviceProfile::seagate_15k();
        let t = disk.service_time(OpClass::RandomRead, 4096);
        // 1/409 s = ~2.44 ms
        assert!((t as f64 / 1e6 - 2.44).abs() < 0.05);
    }

    #[test]
    fn sequential_service_time_scales_with_length() {
        let p = DeviceProfile::samsung470_mlc();
        let one_page = p.service_time(OpClass::SequentialWrite, 4096);
        let big = p.service_time(OpClass::SequentialWrite, 64 * 4096);
        assert!(big > one_page);
        // 64 pages at 242.8 MB/s = ~1.08 ms (+setup)
        assert!((big as f64 / 1e6 - 1.1).abs() < 0.2);
    }

    #[test]
    fn flash_random_write_penalty_matches_paper() {
        // Paper §2.1: random write bandwidth is 10-13% of sequential for the
        // tested SSDs.
        for p in [
            DeviceProfile::samsung470_mlc(),
            DeviceProfile::intel_x25m_mlc(),
            DeviceProfile::intel_x25e_slc(),
        ] {
            let f = p.random_write_fraction_of_sequential();
            assert!(f > 0.08 && f < 0.14, "{}: {}", p.name, f);
        }
    }

    #[test]
    fn flash_random_read_close_to_sequential() {
        // Paper §2.1: 48-60% of sequential read bandwidth.
        for p in [
            DeviceProfile::samsung470_mlc(),
            DeviceProfile::intel_x25m_mlc(),
            DeviceProfile::intel_x25e_slc(),
        ] {
            let f = p.random_read_fraction_of_sequential();
            assert!(f > 0.40 && f < 0.65, "{}: {}", p.name, f);
        }
    }

    #[test]
    fn disk_has_no_large_random_sequential_gap() {
        let d = DeviceProfile::seagate_15k();
        // A disk's random write IOPS is limited by seeks, so its "fraction of
        // sequential" is tiny; what matters is that read and write are
        // symmetric, unlike flash.
        let read_t = d.service_time(OpClass::RandomRead, 4096) as f64;
        let write_t = d.service_time(OpClass::RandomWrite, 4096) as f64;
        assert!((read_t / write_t - 343.0 / 409.0).abs() < 0.2);
    }

    #[test]
    fn price_per_gb_ordering_matches_paper() {
        // Disk is cheapest per GB, SLC flash most expensive.
        let disk = DeviceProfile::seagate_15k().price_per_gb();
        let mlc = DeviceProfile::samsung470_mlc().price_per_gb();
        let slc = DeviceProfile::intel_x25e_slc().price_per_gb();
        let dram = DeviceProfile::dram().price_per_gb();
        assert!(disk < mlc);
        assert!(mlc < slc);
        // DRAM is roughly 10x MLC flash per GB (paper §5.4.1 assumption).
        assert!(dram / mlc > 5.0);
    }

    #[test]
    fn cost_model_fraction_close_to_one() {
        // Paper §2.2: C_disk / (C_disk - C_flash) ~ 1.006 (read) to 1.025
        // (write) for the Seagate disk + Samsung SSD pair.
        let disk = DeviceProfile::seagate_15k();
        let flash = DeviceProfile::samsung470_mlc();
        let c_disk_r = 1.0 / disk.random_read_iops;
        let c_flash_r = 1.0 / flash.random_read_iops;
        let frac_read = c_disk_r / (c_disk_r - c_flash_r);
        assert!((frac_read - 1.0).abs() < 0.03, "read fraction {frac_read}");

        let c_disk_w = 1.0 / disk.random_write_iops;
        let c_flash_w = 1.0 / flash.random_write_iops;
        let frac_write = c_disk_w / (c_disk_w - c_flash_w);
        assert!(
            (frac_write - 1.0).abs() < 0.08,
            "write fraction {frac_write}"
        );
    }

    #[test]
    fn larger_random_requests_cost_more() {
        let p = DeviceProfile::seagate_15k();
        let small = p.service_time(OpClass::RandomRead, 4096);
        let large = p.service_time(OpClass::RandomRead, 128 * 1024);
        assert!(large > small);
    }
}
