//! RAID-0 striping over N member disks.
//!
//! The paper's testbed stores the database on an 8-disk RAID-0 array of
//! 15k-RPM drives, and Figure 5 varies the number of spindles from 4 to 16.
//! Modelling the array as N independent queueing servers with requests routed
//! by stripe reproduces both the aggregate random-IOPS scaling (Table 1 shows
//! the 8-disk array at ~6.3x a single disk) and the throughput scaling of
//! Figure 5.

use crate::clock::{SimDuration, SimInstant};
use crate::device::{Completion, Device, DeviceId};
use crate::profile::DeviceProfile;
use crate::request::IoRequest;
use crate::stats::{DeviceStats, StatsSnapshot};

/// Default stripe size: 64 KiB, a common hardware-RAID default.
pub const DEFAULT_STRIPE_BYTES: u64 = 64 * 1024;

/// A RAID-0 array of identical member devices.
#[derive(Debug, Clone)]
pub struct RaidArray {
    name: String,
    members: Vec<Device>,
    stripe_bytes: u64,
}

impl RaidArray {
    /// Build an array of `n` members with the given per-member profile and the
    /// default stripe size.
    pub fn new(name: impl Into<String>, member_profile: DeviceProfile, n: usize) -> Self {
        Self::with_stripe(name, member_profile, n, DEFAULT_STRIPE_BYTES)
    }

    /// Build an array with an explicit stripe size in bytes.
    pub fn with_stripe(
        name: impl Into<String>,
        member_profile: DeviceProfile,
        n: usize,
        stripe_bytes: u64,
    ) -> Self {
        assert!(n >= 1, "a RAID array needs at least one member");
        assert!(stripe_bytes > 0, "stripe size must be non-zero");
        let members = (0..n)
            .map(|i| Device::new(DeviceId(i as u32), member_profile.clone()))
            .collect();
        Self {
            name: name.into(),
            members,
            stripe_bytes,
        }
    }

    /// The paper's data store: `n` Seagate 15K.6 drives in RAID-0.
    pub fn seagate_raid0(n: usize) -> Self {
        Self::new(
            format!("{n}-disk RAID-0 (Seagate 15K.6)"),
            DeviceProfile::seagate_15k(),
            n,
        )
    }

    /// Number of member disks.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// The array's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member servicing a given byte offset.
    pub fn member_for_offset(&self, offset: u64) -> usize {
        ((offset / self.stripe_bytes) % self.members.len() as u64) as usize
    }

    /// Access a member device (for inspection in tests).
    pub fn member(&self, i: usize) -> &Device {
        &self.members[i]
    }

    /// Submit a request; it is routed to the member that owns the starting
    /// stripe. Requests larger than a stripe are still serviced by a single
    /// member — OLTP requests are 4 KiB pages, far below the stripe size.
    pub fn submit(&mut self, req: &IoRequest, issue_time: SimInstant) -> Completion {
        let idx = self.member_for_offset(req.offset);
        self.members[idx].submit(req, issue_time)
    }

    /// Aggregate statistics across all members.
    pub fn aggregate_stats(&self) -> DeviceStats {
        let mut agg = DeviceStats::new();
        for m in &self.members {
            agg.merge(m.stats());
        }
        agg
    }

    /// Array utilisation over a window: total member busy time divided by
    /// `width * elapsed` (i.e. the mean member utilisation).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let busy: u128 = self
            .members
            .iter()
            .map(|m| m.stats().busy_time() as u128)
            .sum();
        let cap = elapsed as u128 * self.members.len() as u128;
        (busy as f64 / cap as f64).min(1.0)
    }

    /// Utilisation of the busiest member — the array saturates when its
    /// hottest spindle saturates.
    pub fn max_member_utilization(&self, elapsed: SimDuration) -> f64 {
        self.members
            .iter()
            .map(|m| m.stats().utilization(elapsed))
            .fold(0.0, f64::max)
    }

    /// Snapshot aggregate statistics over a window.
    pub fn snapshot(&self, elapsed: SimDuration) -> StatsSnapshot {
        self.aggregate_stats().snapshot(&self.name, elapsed)
    }

    /// Reset statistics on every member (keeps queue positions).
    pub fn reset_stats(&mut self) {
        for m in &mut self.members {
            m.reset_stats();
        }
    }

    /// Fully reset every member.
    pub fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
    }

    /// The earliest instant at which *some* member is free (useful for
    /// back-pressure heuristics).
    pub fn earliest_free(&self) -> SimInstant {
        self.members
            .iter()
            .map(Device::next_free)
            .min()
            .unwrap_or(0)
    }

    /// The instant at which *all* members are free.
    pub fn all_free(&self) -> SimInstant {
        self.members
            .iter()
            .map(Device::next_free)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NANOS_PER_SEC;
    use crate::request::IoRequest;

    #[test]
    fn striping_routes_by_offset() {
        let arr = RaidArray::seagate_raid0(4);
        assert_eq!(arr.member_for_offset(0), 0);
        assert_eq!(arr.member_for_offset(DEFAULT_STRIPE_BYTES), 1);
        assert_eq!(arr.member_for_offset(DEFAULT_STRIPE_BYTES * 4), 0);
        assert_eq!(arr.member_for_offset(DEFAULT_STRIPE_BYTES * 7), 3);
    }

    #[test]
    fn parallel_members_overlap_service() {
        let mut arr = RaidArray::seagate_raid0(4);
        // Four random reads landing on four different members all start at 0.
        let mut finishes = Vec::new();
        for i in 0..4u64 {
            let c = arr.submit(&IoRequest::random_page_read(i * DEFAULT_STRIPE_BYTES), 0);
            assert_eq!(c.wait, 0);
            finishes.push(c.finish);
        }
        // All serviced in parallel: same finish time.
        assert!(finishes.iter().all(|&f| f == finishes[0]));
    }

    #[test]
    fn same_member_requests_serialize() {
        let mut arr = RaidArray::seagate_raid0(4);
        let a = arr.submit(&IoRequest::random_page_read(0), 0);
        let b = arr.submit(&IoRequest::random_page_read(4096), 0);
        // Offsets 0 and 4096 are in the same 64 KiB stripe -> same member.
        assert_eq!(b.start, a.finish);
    }

    #[test]
    fn aggregate_iops_scales_with_width() {
        // Issue a fixed random-read workload with high concurrency and check
        // the array-level throughput scales roughly with member count.
        let run = |n: usize| -> f64 {
            let mut arr = RaidArray::seagate_raid0(n);
            let requests = 4000;
            // 16 concurrent streams.
            let mut client_time = [0u64; 16];
            let mut rng_off = 0u64;
            for i in 0..requests {
                let c = i % 16;
                rng_off = rng_off.wrapping_mul(6364136223846793005).wrapping_add(1);
                let off = (rng_off % (1 << 30)) & !0xFFF;
                let comp = arr.submit(&IoRequest::random_page_read(off), client_time[c]);
                client_time[c] = comp.finish;
            }
            let elapsed = *client_time.iter().max().unwrap();
            requests as f64 / (elapsed as f64 / NANOS_PER_SEC as f64)
        };
        let iops4 = run(4);
        let iops8 = run(8);
        let iops16 = run(16);
        assert!(iops8 > iops4 * 1.5, "iops4={iops4} iops8={iops8}");
        assert!(iops16 > iops8 * 1.4, "iops8={iops8} iops16={iops16}");
        // Single-disk random read is ~409 IOPS; 8 disks should be in the
        // neighbourhood of the measured 2598 IOPS (within a loose band, since
        // striping balance is probabilistic).
        assert!(iops8 > 1800.0 && iops8 < 3400.0, "iops8={iops8}");
    }

    #[test]
    fn utilization_is_mean_member_utilization() {
        let mut arr = RaidArray::seagate_raid0(2);
        // Busy member 0 for ~1s of service.
        let mut t = 0;
        for _ in 0..409 {
            let c = arr.submit(&IoRequest::random_page_read(0), t);
            t = c.finish;
        }
        let elapsed = t;
        let u = arr.utilization(elapsed);
        assert!((u - 0.5).abs() < 0.05, "u={u}");
        assert!(arr.max_member_utilization(elapsed) > 0.95);
    }

    #[test]
    fn reset_clears_members() {
        let mut arr = RaidArray::seagate_raid0(2);
        arr.submit(&IoRequest::random_page_read(0), 0);
        assert_eq!(arr.aggregate_stats().total_ops(), 1);
        arr.reset_stats();
        assert_eq!(arr.aggregate_stats().total_ops(), 0);
        assert!(arr.all_free() > 0);
        arr.reset();
        assert_eq!(arr.all_free(), 0);
        assert_eq!(arr.earliest_free(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_width_array_rejected() {
        let _ = RaidArray::seagate_raid0(0);
    }
}
