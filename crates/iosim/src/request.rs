//! I/O request descriptions submitted to simulated devices.

use serde::{Deserialize, Serialize};

use crate::PAGE_SIZE;

/// Whether a request reads or writes the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// A read from the device into memory.
    Read,
    /// A write from memory to the device.
    Write,
}

impl IoOp {
    /// `true` if this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, IoOp::Read)
    }

    /// `true` if this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, IoOp::Write)
    }
}

/// The access pattern of a request as declared by the submitter.
///
/// `Auto` lets the device infer the pattern from the byte offset of the
/// previous request (contiguous offsets are treated as sequential). FaCE's
/// append-only flash writes declare `Sequential` explicitly because the flash
/// cache is maintained as a circular queue whose writes are always contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Force the random-access service time.
    Random,
    /// Force the sequential-access service time.
    Sequential,
    /// Infer from the previous request's offset.
    Auto,
}

/// A single I/O request against one simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Read or write.
    pub op: IoOp,
    /// Byte offset on the device. Used for sequentiality detection and RAID
    /// striping.
    pub offset: u64,
    /// Length in bytes. Usually [`PAGE_SIZE`].
    pub len: u32,
    /// Declared access pattern.
    pub pattern: AccessPattern,
}

impl IoRequest {
    /// A 4 KiB page read at `offset` with automatic pattern detection.
    pub fn page_read(offset: u64) -> Self {
        Self {
            op: IoOp::Read,
            offset,
            len: PAGE_SIZE as u32,
            pattern: AccessPattern::Auto,
        }
    }

    /// A 4 KiB page write at `offset` with automatic pattern detection.
    pub fn page_write(offset: u64) -> Self {
        Self {
            op: IoOp::Write,
            offset,
            len: PAGE_SIZE as u32,
            pattern: AccessPattern::Auto,
        }
    }

    /// A random 4 KiB page read (pattern forced).
    pub fn random_page_read(offset: u64) -> Self {
        Self {
            op: IoOp::Read,
            offset,
            len: PAGE_SIZE as u32,
            pattern: AccessPattern::Random,
        }
    }

    /// A random 4 KiB page write (pattern forced).
    pub fn random_page_write(offset: u64) -> Self {
        Self {
            op: IoOp::Write,
            offset,
            len: PAGE_SIZE as u32,
            pattern: AccessPattern::Random,
        }
    }

    /// A sequential (append-style) write of `len` bytes at `offset`.
    pub fn sequential_write(offset: u64, len: u32) -> Self {
        Self {
            op: IoOp::Write,
            offset,
            len,
            pattern: AccessPattern::Sequential,
        }
    }

    /// A sequential read of `len` bytes at `offset`.
    pub fn sequential_read(offset: u64, len: u32) -> Self {
        Self {
            op: IoOp::Read,
            offset,
            len,
            pattern: AccessPattern::Sequential,
        }
    }

    /// Override the declared pattern, returning a new request.
    pub fn with_pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Override the length, returning a new request.
    pub fn with_len(mut self, len: u32) -> Self {
        self.len = len;
        self
    }

    /// The byte offset one past the end of this request.
    pub fn end_offset(&self) -> u64 {
        self.offset + self.len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_helpers_use_page_size() {
        let r = IoRequest::page_read(8192);
        assert_eq!(r.len as usize, PAGE_SIZE);
        assert_eq!(r.op, IoOp::Read);
        assert_eq!(r.pattern, AccessPattern::Auto);
        assert_eq!(r.end_offset(), 8192 + PAGE_SIZE as u64);

        let w = IoRequest::page_write(0);
        assert!(w.op.is_write());
        assert!(!w.op.is_read());
    }

    #[test]
    fn forced_patterns() {
        assert_eq!(
            IoRequest::random_page_read(0).pattern,
            AccessPattern::Random
        );
        assert_eq!(
            IoRequest::random_page_write(0).pattern,
            AccessPattern::Random
        );
        assert_eq!(
            IoRequest::sequential_write(0, 64 * 1024).pattern,
            AccessPattern::Sequential
        );
        assert_eq!(
            IoRequest::sequential_read(0, 64 * 1024).pattern,
            AccessPattern::Sequential
        );
    }

    #[test]
    fn builders_override_fields() {
        let r = IoRequest::page_read(0)
            .with_pattern(AccessPattern::Sequential)
            .with_len(65536);
        assert_eq!(r.pattern, AccessPattern::Sequential);
        assert_eq!(r.len, 65536);
    }
}
