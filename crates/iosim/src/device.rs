//! A single simulated device modelled as a FIFO queueing server.

use serde::{Deserialize, Serialize};

use crate::clock::{SimDuration, SimInstant};
use crate::profile::DeviceProfile;
use crate::request::{AccessPattern, IoRequest};
use crate::stats::{DeviceStats, OpClass, StatsSnapshot};

/// Identifies a device within an [`crate::IoSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The outcome of submitting a request to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When service began (>= the issue time; later if the device was busy).
    pub start: SimInstant,
    /// When the request finished.
    pub finish: SimInstant,
    /// Pure service time (finish - start).
    pub service: SimDuration,
    /// Queueing delay (start - issue time).
    pub wait: SimDuration,
    /// How the request was classified (after sequentiality detection).
    pub class: OpClass,
}

/// A single device: one queueing server with Table 1-calibrated service times.
///
/// The device keeps the end offset of the most recent request so that an
/// [`AccessPattern::Auto`] request contiguous with the previous one is charged
/// the sequential service time. This is how real drives (and the paper's
/// Orion measurements) distinguish the patterns.
#[derive(Debug, Clone)]
pub struct Device {
    id: DeviceId,
    profile: DeviceProfile,
    next_free: SimInstant,
    last_end_offset: Option<u64>,
    stats: DeviceStats,
}

impl Device {
    /// Create a device with the given identifier and calibration profile.
    pub fn new(id: DeviceId, profile: DeviceProfile) -> Self {
        Self {
            id,
            profile,
            next_free: 0,
            last_end_offset: None,
            stats: DeviceStats::new(),
        }
    }

    /// This device's identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The calibration profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The instant at which the device becomes idle.
    pub fn next_free(&self) -> SimInstant {
        self.next_free
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Snapshot the statistics over an elapsed window.
    pub fn snapshot(&self, elapsed: SimDuration) -> StatsSnapshot {
        self.stats.snapshot(&self.profile.name, elapsed)
    }

    /// Classify a request as random or sequential.
    ///
    /// An explicit pattern wins; `Auto` requests are sequential when they
    /// start exactly where the previous request ended.
    pub fn classify(&self, req: &IoRequest) -> OpClass {
        let sequential = match req.pattern {
            AccessPattern::Random => false,
            AccessPattern::Sequential => true,
            AccessPattern::Auto => self.last_end_offset == Some(req.offset),
        };
        OpClass::from_op(req.op, sequential)
    }

    /// Submit a request at `issue_time`. The request is serviced after any
    /// earlier requests finish; returns when it started and completed.
    pub fn submit(&mut self, req: &IoRequest, issue_time: SimInstant) -> Completion {
        let class = self.classify(req);
        let service = self.profile.service_time_for(req, class);
        let start = issue_time.max(self.next_free);
        let finish = start + service;
        let wait = start - issue_time;
        self.next_free = finish;
        self.last_end_offset = Some(req.end_offset());
        self.stats.record(class, req.len, service, wait);
        Completion {
            start,
            finish,
            service,
            wait,
            class,
        }
    }

    /// Reset the queue and statistics (offset history is kept — the data on
    /// the device does not change between measurement windows).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Fully reset the device: statistics, queue and sequentiality history.
    pub fn reset(&mut self) {
        self.stats.reset();
        self.next_free = 0;
        self.last_end_offset = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;
    use crate::request::{IoOp, IoRequest};

    fn ssd() -> Device {
        Device::new(DeviceId(0), DeviceProfile::samsung470_mlc())
    }

    fn disk() -> Device {
        Device::new(DeviceId(1), DeviceProfile::seagate_15k())
    }

    #[test]
    fn idle_device_services_immediately() {
        let mut d = ssd();
        let c = d.submit(&IoRequest::random_page_read(0), 1_000);
        assert_eq!(c.start, 1_000);
        assert_eq!(c.wait, 0);
        assert!(c.finish > c.start);
        assert_eq!(c.class, OpClass::RandomRead);
    }

    #[test]
    fn busy_device_queues_requests() {
        let mut d = disk();
        let a = d.submit(&IoRequest::random_page_read(0), 0);
        let b = d.submit(&IoRequest::random_page_read(4096 * 100), 0);
        assert_eq!(b.start, a.finish);
        assert_eq!(b.wait, a.service);
        assert_eq!(d.next_free(), b.finish);
    }

    #[test]
    fn auto_pattern_detects_sequential_runs() {
        let mut d = ssd();
        let first = d.submit(&IoRequest::page_write(0), 0);
        // First access has no history: random.
        assert_eq!(first.class, OpClass::RandomWrite);
        let second = d.submit(&IoRequest::page_write(4096), first.finish);
        assert_eq!(second.class, OpClass::SequentialWrite);
        // A jump breaks the run.
        let third = d.submit(&IoRequest::page_write(4096 * 100), second.finish);
        assert_eq!(third.class, OpClass::RandomWrite);
    }

    #[test]
    fn explicit_pattern_overrides_detection() {
        let mut d = ssd();
        d.submit(&IoRequest::page_write(0), 0);
        // Non-contiguous but declared sequential (FaCE's append-only queue).
        let c = d.submit(&IoRequest::sequential_write(1 << 30, 4096), 0);
        assert_eq!(c.class, OpClass::SequentialWrite);
    }

    #[test]
    fn sequential_writes_much_faster_than_random_on_flash() {
        let mut d = ssd();
        let rnd = d.submit(&IoRequest::random_page_write(0), 0);
        d.reset();
        let seq = d.submit(&IoRequest::sequential_write(0, 4096), 0);
        // 4KB random write ~158us vs sequential ~17+20us.
        assert!(
            rnd.service > 3 * seq.service,
            "random {} vs sequential {}",
            rnd.service,
            seq.service
        );
    }

    #[test]
    fn flash_random_read_much_faster_than_disk() {
        let mut s = ssd();
        let mut h = disk();
        let fs = s.submit(&IoRequest::random_page_read(0), 0);
        let hd = h.submit(&IoRequest::random_page_read(0), 0);
        // ~35us vs ~2.4ms: more than 50x.
        assert!(hd.service > 50 * fs.service);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut d = ssd();
        for i in 0..10 {
            d.submit(&IoRequest::random_page_read(i * (1 << 20)), 0);
        }
        assert_eq!(d.stats().total_ops(), 10);
        assert!(d.stats().busy_time() > 0);
        d.reset_stats();
        assert_eq!(d.stats().total_ops(), 0);
        // Queue position preserved by reset_stats...
        assert!(d.next_free() > 0);
        d.reset();
        assert_eq!(d.next_free(), 0);
    }

    #[test]
    fn writes_and_reads_classified_independently() {
        let mut d = disk();
        let w = d.submit(
            &IoRequest {
                op: IoOp::Write,
                offset: 0,
                len: 4096,
                pattern: AccessPattern::Random,
            },
            0,
        );
        assert_eq!(w.class, OpClass::RandomWrite);
        let r = d.submit(&IoRequest::sequential_read(4096, 8192), w.finish);
        assert_eq!(r.class, OpClass::SequentialRead);
    }
}
