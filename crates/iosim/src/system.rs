//! The set of devices used by one experiment plus the closed client population.
//!
//! The paper's testbed has three I/O roles:
//!
//! * **Data** — the database files, on the RAID-0 disk array (HDD-only,
//!   LC, FaCE) or on a flash SSD (SSD-only).
//! * **Flash** — the flash cache extension, on an MLC or SLC SSD. Absent in
//!   the HDD-only and SSD-only configurations.
//! * **Log** — the WAL device. The paper keeps the log on the disk array;
//!   commit-time log forces are sequential appends.
//!
//! [`IoSystem`] owns one [`IoTarget`] per role, a shared virtual clock and a
//! closed population of clients ([`ClientSet`], 50 in the paper). The workload
//! driver picks the earliest-ready client, executes one transaction's logical
//! page accesses, and charges each resulting physical I/O to the proper role
//! at the client's current virtual time. Device queueing, overlap between
//! clients, utilisation and the location of the bottleneck all emerge from
//! this model.

use crate::clock::{SimClock, SimDuration, SimInstant};
use crate::device::{Completion, Device, DeviceId};
use crate::profile::DeviceProfile;
use crate::raid::RaidArray;
use crate::request::IoRequest;
use crate::stats::{DeviceStats, StatsSnapshot};

/// Anything that can service I/O requests: a single device or a RAID array.
pub trait IoTarget: Send {
    /// Display name for reports.
    fn name(&self) -> &str;
    /// Submit a request at `issue_time`; returns service start/finish.
    fn submit(&mut self, req: &IoRequest, issue_time: SimInstant) -> Completion;
    /// Aggregate statistics since the last reset.
    fn aggregate_stats(&self) -> DeviceStats;
    /// Utilisation over an elapsed window.
    fn utilization(&self, elapsed: SimDuration) -> f64;
    /// Reset statistics but keep queue state.
    fn reset_stats(&mut self);
    /// Reset statistics and queue state.
    fn reset(&mut self);
}

impl IoTarget for Device {
    fn name(&self) -> &str {
        &self.profile().name
    }
    fn submit(&mut self, req: &IoRequest, issue_time: SimInstant) -> Completion {
        Device::submit(self, req, issue_time)
    }
    fn aggregate_stats(&self) -> DeviceStats {
        self.stats().clone()
    }
    fn utilization(&self, elapsed: SimDuration) -> f64 {
        self.stats().utilization(elapsed)
    }
    fn reset_stats(&mut self) {
        Device::reset_stats(self);
    }
    fn reset(&mut self) {
        Device::reset(self);
    }
}

impl IoTarget for RaidArray {
    fn name(&self) -> &str {
        RaidArray::name(self)
    }
    fn submit(&mut self, req: &IoRequest, issue_time: SimInstant) -> Completion {
        RaidArray::submit(self, req, issue_time)
    }
    fn aggregate_stats(&self) -> DeviceStats {
        RaidArray::aggregate_stats(self)
    }
    fn utilization(&self, elapsed: SimDuration) -> f64 {
        RaidArray::utilization(self, elapsed)
    }
    fn reset_stats(&mut self) {
        RaidArray::reset_stats(self);
    }
    fn reset(&mut self) {
        RaidArray::reset(self);
    }
}

/// The role a device plays in the storage hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Database files.
    Data,
    /// Flash cache extension.
    Flash,
    /// Write-ahead log.
    Log,
}

/// The full I/O subsystem of one experiment.
pub struct IoSystem {
    clock: SimClock,
    data: Box<dyn IoTarget>,
    flash: Option<Box<dyn IoTarget>>,
    log: Box<dyn IoTarget>,
}

impl IoSystem {
    /// Start building an [`IoSystem`].
    pub fn builder() -> IoSystemBuilder {
        IoSystemBuilder::default()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Whether a flash-cache device is configured.
    pub fn has_flash(&self) -> bool {
        self.flash.is_some()
    }

    /// Submit a request to the device in the given role at `issue_time`.
    ///
    /// # Panics
    /// Panics if `role` is [`Role::Flash`] and no flash device is configured.
    pub fn submit(&mut self, role: Role, req: &IoRequest, issue_time: SimInstant) -> Completion {
        let completion = match role {
            Role::Data => self.data.submit(req, issue_time),
            Role::Log => self.log.submit(req, issue_time),
            Role::Flash => self
                .flash
                .as_mut()
                .expect("no flash cache device configured")
                .submit(req, issue_time),
        };
        self.clock.advance_to(completion.finish);
        completion
    }

    /// The target serving a role, if present.
    pub fn target(&self, role: Role) -> Option<&dyn IoTarget> {
        match role {
            Role::Data => Some(self.data.as_ref()),
            Role::Log => Some(self.log.as_ref()),
            Role::Flash => self.flash.as_deref(),
        }
    }

    /// Aggregate statistics for a role (zeroed stats if the role is absent).
    pub fn stats(&self, role: Role) -> DeviceStats {
        self.target(role)
            .map(|t| t.aggregate_stats())
            .unwrap_or_default()
    }

    /// Utilisation of a role over a window (0.0 if the role is absent).
    pub fn utilization(&self, role: Role, elapsed: SimDuration) -> f64 {
        self.target(role)
            .map(|t| t.utilization(elapsed))
            .unwrap_or(0.0)
    }

    /// Snapshots of all configured devices over a window.
    pub fn snapshots(&self, elapsed: SimDuration) -> Vec<StatsSnapshot> {
        let mut v = Vec::with_capacity(3);
        v.push(
            self.data
                .aggregate_stats()
                .snapshot(self.data.name(), elapsed),
        );
        if let Some(f) = &self.flash {
            v.push(f.aggregate_stats().snapshot(f.name(), elapsed));
        }
        v.push(
            self.log
                .aggregate_stats()
                .snapshot(self.log.name(), elapsed),
        );
        v
    }

    /// Reset statistics on every device (used at the start of a measurement
    /// window, after warm-up).
    pub fn reset_stats(&mut self) {
        self.data.reset_stats();
        if let Some(f) = &mut self.flash {
            f.reset_stats();
        }
        self.log.reset_stats();
    }

    /// Reset everything including queue state and the clock.
    pub fn reset(&mut self) {
        self.data.reset();
        if let Some(f) = &mut self.flash {
            f.reset();
        }
        self.log.reset();
        self.clock.reset();
    }
}

impl std::fmt::Debug for IoSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoSystem")
            .field("data", &self.data.name())
            .field("flash", &self.flash.as_ref().map(|d| d.name().to_string()))
            .field("log", &self.log.name())
            .field("clock", &self.clock)
            .finish()
    }
}

/// Builder for [`IoSystem`].
pub struct IoSystemBuilder {
    clock: SimClock,
    data: Option<Box<dyn IoTarget>>,
    flash: Option<Box<dyn IoTarget>>,
    log: Option<Box<dyn IoTarget>>,
}

impl Default for IoSystemBuilder {
    fn default() -> Self {
        Self {
            clock: SimClock::new(),
            data: None,
            flash: None,
            log: None,
        }
    }
}

impl IoSystemBuilder {
    /// Use an existing clock (shared with other components).
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = clock;
        self
    }

    /// Put the database on a RAID-0 array of `n` Seagate 15K.6 disks.
    pub fn data_on_disk_array(mut self, n: usize) -> Self {
        self.data = Some(Box::new(RaidArray::seagate_raid0(n)));
        self
    }

    /// Put the database on a single device with the given profile
    /// (used by the SSD-only configuration).
    pub fn data_on_device(mut self, profile: DeviceProfile) -> Self {
        self.data = Some(Box::new(Device::new(DeviceId(100), profile)));
        self
    }

    /// Use an arbitrary target for the data role.
    pub fn data_target(mut self, target: Box<dyn IoTarget>) -> Self {
        self.data = Some(target);
        self
    }

    /// Add a flash-cache device with the given profile.
    pub fn flash_device(mut self, profile: DeviceProfile) -> Self {
        self.flash = Some(Box::new(Device::new(DeviceId(200), profile)));
        self
    }

    /// Remove the flash-cache device (HDD-only / SSD-only configurations).
    pub fn no_flash(mut self) -> Self {
        self.flash = None;
        self
    }

    /// Put the log on a single device with the given profile.
    pub fn log_device(mut self, profile: DeviceProfile) -> Self {
        self.log = Some(Box::new(Device::new(DeviceId(300), profile)));
        self
    }

    /// Finish building. Defaults: data on an 8-disk array, no flash, log on a
    /// single Seagate disk.
    pub fn build(self) -> IoSystem {
        IoSystem {
            clock: self.clock,
            data: self
                .data
                .unwrap_or_else(|| Box::new(RaidArray::seagate_raid0(8))),
            flash: self.flash,
            log: self.log.unwrap_or_else(|| {
                Box::new(Device::new(DeviceId(300), DeviceProfile::seagate_15k()))
            }),
        }
    }
}

/// A closed population of clients, as in the paper's 50-terminal TPC-C runs.
///
/// Each client has a "ready time": the virtual instant at which it finishes
/// its current transaction and can start the next one. The driver repeatedly
/// takes the earliest-ready client, which models a closed system with zero
/// think time.
#[derive(Debug, Clone)]
pub struct ClientSet {
    ready: Vec<SimInstant>,
}

impl ClientSet {
    /// Create `n` clients, all ready at time zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one client");
        Self { ready: vec![0; n] }
    }

    /// Create `n` clients all ready at `start`.
    pub fn starting_at(n: usize, start: SimInstant) -> Self {
        assert!(n > 0, "need at least one client");
        Self {
            ready: vec![start; n],
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// Always false (the constructor requires n > 0); provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Index and ready-time of the earliest-ready client.
    pub fn next_client(&self) -> (usize, SimInstant) {
        let (i, &t) = self
            .ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("client set is non-empty");
        (i, t)
    }

    /// Ready time of a specific client.
    pub fn ready_at(&self, client: usize) -> SimInstant {
        self.ready[client]
    }

    /// Record that `client` finishes its current work at `t`.
    pub fn finish_at(&mut self, client: usize, t: SimInstant) {
        self.ready[client] = t;
    }

    /// The instant by which every client has finished: the makespan of the
    /// run, used as the elapsed time for throughput computations.
    pub fn makespan(&self) -> SimInstant {
        *self.ready.iter().max().expect("non-empty")
    }

    /// The earliest client ready time.
    pub fn min_ready(&self) -> SimInstant {
        *self.ready.iter().min().expect("non-empty")
    }

    /// Reset all clients to be ready at `t`.
    pub fn reset(&mut self, t: SimInstant) {
        for r in &mut self.ready {
            *r = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoRequest;

    fn face_system() -> IoSystem {
        IoSystem::builder()
            .data_on_disk_array(8)
            .flash_device(DeviceProfile::samsung470_mlc())
            .log_device(DeviceProfile::seagate_15k())
            .build()
    }

    #[test]
    fn builder_defaults() {
        let sys = IoSystem::builder().build();
        assert!(!sys.has_flash());
        assert_eq!(sys.target(Role::Flash).map(|_| ()), None);
        assert!(sys.target(Role::Data).is_some());
        assert!(sys.target(Role::Log).is_some());
    }

    #[test]
    fn submit_routes_by_role_and_advances_clock() {
        let mut sys = face_system();
        assert!(sys.has_flash());
        let c = sys.submit(Role::Flash, &IoRequest::random_page_read(0), 0);
        assert!(c.finish > 0);
        assert!(sys.clock().now() >= c.finish);
        assert_eq!(sys.stats(Role::Flash).total_ops(), 1);
        assert_eq!(sys.stats(Role::Data).total_ops(), 0);

        sys.submit(Role::Data, &IoRequest::random_page_read(0), 0);
        sys.submit(Role::Log, &IoRequest::sequential_write(0, 4096), 0);
        assert_eq!(sys.stats(Role::Data).total_ops(), 1);
        assert_eq!(sys.stats(Role::Log).total_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "no flash cache device")]
    fn flash_submit_without_flash_panics() {
        let mut sys = IoSystem::builder().no_flash().build();
        sys.submit(Role::Flash, &IoRequest::random_page_read(0), 0);
    }

    #[test]
    fn snapshots_cover_configured_devices() {
        let mut sys = face_system();
        sys.submit(Role::Data, &IoRequest::random_page_read(0), 0);
        let snaps = sys.snapshots(1_000_000_000);
        assert_eq!(snaps.len(), 3);
        let hdd_only = IoSystem::builder().no_flash().build();
        assert_eq!(hdd_only.snapshots(1).len(), 2);
    }

    #[test]
    fn reset_stats_keeps_queue_reset_clears_clock() {
        let mut sys = face_system();
        sys.submit(Role::Data, &IoRequest::random_page_read(0), 0);
        sys.reset_stats();
        assert_eq!(sys.stats(Role::Data).total_ops(), 0);
        assert!(sys.clock().now() > 0);
        sys.reset();
        assert_eq!(sys.clock().now(), 0);
    }

    #[test]
    fn ssd_only_configuration() {
        let mut sys = IoSystem::builder()
            .data_on_device(DeviceProfile::samsung470_mlc())
            .no_flash()
            .log_device(DeviceProfile::seagate_15k())
            .build();
        let c = sys.submit(Role::Data, &IoRequest::random_page_read(0), 0);
        // SSD random read should be far below 1 ms.
        assert!(c.service < 200_000, "service = {}", c.service);
    }

    #[test]
    fn client_set_closed_loop() {
        let mut clients = ClientSet::new(3);
        assert_eq!(clients.len(), 3);
        assert!(!clients.is_empty());
        let (c0, t0) = clients.next_client();
        assert_eq!(t0, 0);
        clients.finish_at(c0, 100);
        let (c1, _) = clients.next_client();
        assert_ne!(c0, c1);
        clients.finish_at(c1, 50);
        // c1 finished earlier, so it's next again.
        let (c2, t2) = clients.next_client();
        // The remaining untouched client (ready at 0) goes first.
        assert_eq!(t2, 0);
        clients.finish_at(c2, 200);
        assert_eq!(clients.makespan(), 200);
        assert_eq!(clients.min_ready(), 50);
        clients.reset(10);
        assert_eq!(clients.makespan(), 10);
        assert_eq!(clients.ready_at(0), 10);
    }

    #[test]
    fn client_set_starting_at() {
        let clients = ClientSet::starting_at(2, 500);
        assert_eq!(clients.min_ready(), 500);
        assert_eq!(clients.makespan(), 500);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_client_set_rejected() {
        let _ = ClientSet::new(0);
    }

    #[test]
    fn concurrent_clients_overlap_on_parallel_devices() {
        // With 8 spindles and 8 clients doing random reads, the makespan
        // should be far below the serial sum of service times.
        let mut sys = IoSystem::builder().data_on_disk_array(8).no_flash().build();
        let mut clients = ClientSet::new(8);
        let per_client_reads = 50;
        let mut serial_time = 0u64;
        let mut offset = 0u64;
        for _ in 0..(8 * per_client_reads) {
            let (c, ready) = clients.next_client();
            offset = offset
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let off = (offset % (1u64 << 34)) & !0xFFF;
            let comp = sys.submit(Role::Data, &IoRequest::random_page_read(off), ready);
            serial_time += comp.service;
            clients.finish_at(c, comp.finish);
        }
        let makespan = clients.makespan();
        assert!(
            (makespan as f64) < 0.4 * serial_time as f64,
            "makespan {makespan} vs serial {serial_time}"
        );
    }
}
