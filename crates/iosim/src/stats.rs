//! Per-device statistics: operation counts, bytes, busy time, utilisation.

use serde::{Deserialize, Serialize};

use crate::clock::{duration_to_secs, SimDuration, SimInstant};
use crate::request::IoOp;

/// The four operation classes whose costs differ on flash devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Random read.
    RandomRead,
    /// Random write.
    RandomWrite,
    /// Sequential read.
    SequentialRead,
    /// Sequential write.
    SequentialWrite,
}

impl OpClass {
    /// All four classes, for iteration in reports.
    pub const ALL: [OpClass; 4] = [
        OpClass::RandomRead,
        OpClass::RandomWrite,
        OpClass::SequentialRead,
        OpClass::SequentialWrite,
    ];

    /// Build a class from an op and a sequentiality decision.
    pub fn from_op(op: IoOp, sequential: bool) -> Self {
        match (op, sequential) {
            (IoOp::Read, false) => OpClass::RandomRead,
            (IoOp::Write, false) => OpClass::RandomWrite,
            (IoOp::Read, true) => OpClass::SequentialRead,
            (IoOp::Write, true) => OpClass::SequentialWrite,
        }
    }

    /// `true` for the two read classes.
    pub fn is_read(self) -> bool {
        matches!(self, OpClass::RandomRead | OpClass::SequentialRead)
    }

    /// `true` for the two write classes.
    pub fn is_write(self) -> bool {
        !self.is_read()
    }

    /// `true` for the two sequential classes.
    pub fn is_sequential(self) -> bool {
        matches!(self, OpClass::SequentialRead | OpClass::SequentialWrite)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::RandomRead => "rand_read",
            OpClass::RandomWrite => "rand_write",
            OpClass::SequentialRead => "seq_read",
            OpClass::SequentialWrite => "seq_write",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::RandomRead => 0,
            OpClass::RandomWrite => 1,
            OpClass::SequentialRead => 2,
            OpClass::SequentialWrite => 3,
        }
    }
}

/// Mutable statistics accumulated by a device during a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceStats {
    ops: [u64; 4],
    bytes: [u64; 4],
    busy: SimDuration,
    queue_wait: SimDuration,
    max_queue_wait: SimDuration,
}

impl DeviceStats {
    /// A fresh, zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed operation.
    pub fn record(&mut self, class: OpClass, bytes: u32, service: SimDuration, wait: SimDuration) {
        let i = class.index();
        self.ops[i] += 1;
        self.bytes[i] += bytes as u64;
        self.busy += service;
        self.queue_wait += wait;
        self.max_queue_wait = self.max_queue_wait.max(wait);
    }

    /// Number of operations of one class.
    pub fn ops(&self, class: OpClass) -> u64 {
        self.ops[class.index()]
    }

    /// Total operations across all classes.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Total read operations (random + sequential).
    pub fn read_ops(&self) -> u64 {
        self.ops(OpClass::RandomRead) + self.ops(OpClass::SequentialRead)
    }

    /// Total write operations (random + sequential).
    pub fn write_ops(&self) -> u64 {
        self.ops(OpClass::RandomWrite) + self.ops(OpClass::SequentialWrite)
    }

    /// Bytes transferred for one class.
    pub fn bytes(&self, class: OpClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes(OpClass::RandomWrite) + self.bytes(OpClass::SequentialWrite)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes(OpClass::RandomRead) + self.bytes(OpClass::SequentialRead)
    }

    /// Total time the device was servicing requests.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total time requests spent queued before service.
    pub fn total_queue_wait(&self) -> SimDuration {
        self.queue_wait
    }

    /// Longest single queueing delay.
    pub fn max_queue_wait(&self) -> SimDuration {
        self.max_queue_wait
    }

    /// Utilisation over an elapsed window: busy time / elapsed.
    /// Clamped to 1.0 (a device cannot be more than fully busy).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy as f64 / elapsed as f64).min(1.0)
        }
    }

    /// Operations per second over an elapsed window, counting every request
    /// as its 4 KiB-page equivalents (the paper's Table 4(b) reports
    /// "throughput of 4KB-page I/O operations").
    pub fn page_iops(&self, elapsed: SimDuration) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let pages = self.total_bytes() as f64 / crate::PAGE_SIZE as f64;
        pages / duration_to_secs(elapsed)
    }

    /// Plain operations per second over an elapsed window.
    pub fn iops(&self, elapsed: SimDuration) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.total_ops() as f64 / duration_to_secs(elapsed)
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merge another statistics block into this one (used to aggregate the
    /// member disks of a RAID array).
    pub fn merge(&mut self, other: &DeviceStats) {
        for i in 0..4 {
            self.ops[i] += other.ops[i];
            self.bytes[i] += other.bytes[i];
        }
        self.busy += other.busy;
        self.queue_wait += other.queue_wait;
        self.max_queue_wait = self.max_queue_wait.max(other.max_queue_wait);
    }

    /// Snapshot this statistics block together with a device name and window.
    pub fn snapshot(&self, device: &str, elapsed: SimDuration) -> StatsSnapshot {
        StatsSnapshot {
            device: device.to_string(),
            elapsed_secs: duration_to_secs(elapsed),
            random_reads: self.ops(OpClass::RandomRead),
            random_writes: self.ops(OpClass::RandomWrite),
            sequential_reads: self.ops(OpClass::SequentialRead),
            sequential_writes: self.ops(OpClass::SequentialWrite),
            bytes_read: self.bytes_read(),
            bytes_written: self.bytes_written(),
            busy_secs: duration_to_secs(self.busy),
            utilization: self.utilization(elapsed),
            page_iops: self.page_iops(elapsed),
            avg_queue_wait_secs: if self.total_ops() == 0 {
                0.0
            } else {
                duration_to_secs(self.queue_wait) / self.total_ops() as f64
            },
        }
    }
}

/// An immutable, serialisable summary of a device's activity over a window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Device name.
    pub device: String,
    /// Window length in seconds.
    pub elapsed_secs: f64,
    /// Random read count.
    pub random_reads: u64,
    /// Random write count.
    pub random_writes: u64,
    /// Sequential read count.
    pub sequential_reads: u64,
    /// Sequential write count.
    pub sequential_writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Busy time in seconds.
    pub busy_secs: f64,
    /// busy / elapsed, in [0, 1].
    pub utilization: f64,
    /// 4 KiB-page-equivalent operations per second.
    pub page_iops: f64,
    /// Mean queueing delay per request in seconds.
    pub avg_queue_wait_secs: f64,
}

/// A helper that tracks elapsed time windows for interval reporting
/// (used by the Figure 6 time-series experiment).
#[derive(Debug, Clone, Default)]
pub struct WindowTracker {
    window_start: SimInstant,
}

impl WindowTracker {
    /// Start tracking at time `start`.
    pub fn new(start: SimInstant) -> Self {
        Self {
            window_start: start,
        }
    }

    /// Close the current window at `now` and start a new one.
    /// Returns the length of the closed window.
    pub fn roll(&mut self, now: SimInstant) -> SimDuration {
        let len = now.saturating_sub(self.window_start);
        self.window_start = now;
        len
    }

    /// Start of the current window.
    pub fn window_start(&self) -> SimInstant {
        self.window_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NANOS_PER_SEC;

    #[test]
    fn op_class_from_op() {
        assert_eq!(OpClass::from_op(IoOp::Read, false), OpClass::RandomRead);
        assert_eq!(OpClass::from_op(IoOp::Write, false), OpClass::RandomWrite);
        assert_eq!(OpClass::from_op(IoOp::Read, true), OpClass::SequentialRead);
        assert_eq!(
            OpClass::from_op(IoOp::Write, true),
            OpClass::SequentialWrite
        );
    }

    #[test]
    fn op_class_predicates() {
        assert!(OpClass::RandomRead.is_read());
        assert!(!OpClass::RandomRead.is_write());
        assert!(OpClass::SequentialWrite.is_sequential());
        assert!(!OpClass::RandomWrite.is_sequential());
        assert_eq!(OpClass::ALL.len(), 4);
    }

    #[test]
    fn record_accumulates() {
        let mut s = DeviceStats::new();
        s.record(OpClass::RandomRead, 4096, 1000, 10);
        s.record(OpClass::RandomRead, 4096, 1000, 30);
        s.record(OpClass::SequentialWrite, 65536, 5000, 0);
        assert_eq!(s.ops(OpClass::RandomRead), 2);
        assert_eq!(s.ops(OpClass::SequentialWrite), 1);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.read_ops(), 2);
        assert_eq!(s.write_ops(), 1);
        assert_eq!(s.bytes_read(), 8192);
        assert_eq!(s.bytes_written(), 65536);
        assert_eq!(s.busy_time(), 7000);
        assert_eq!(s.total_queue_wait(), 40);
        assert_eq!(s.max_queue_wait(), 30);
    }

    #[test]
    fn utilization_and_iops() {
        let mut s = DeviceStats::new();
        // 1000 random reads of 1ms each = 1s busy.
        for _ in 0..1000 {
            s.record(OpClass::RandomRead, 4096, 1_000_000, 0);
        }
        let elapsed = 2 * NANOS_PER_SEC;
        assert!((s.utilization(elapsed) - 0.5).abs() < 1e-9);
        assert!((s.iops(elapsed) - 500.0).abs() < 1e-6);
        assert!((s.page_iops(elapsed) - 500.0).abs() < 1e-6);
        // Utilisation is clamped.
        assert_eq!(s.utilization(NANOS_PER_SEC / 2), 1.0);
        // Zero window yields zeros, not NaN.
        assert_eq!(s.utilization(0), 0.0);
        assert_eq!(s.iops(0), 0.0);
    }

    #[test]
    fn page_iops_counts_large_requests_as_multiple_pages() {
        let mut s = DeviceStats::new();
        s.record(OpClass::SequentialWrite, 16 * 4096, 1_000_000, 0);
        assert!((s.page_iops(NANOS_PER_SEC) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let mut s = DeviceStats::new();
        s.record(OpClass::RandomWrite, 4096, 500_000, 100_000);
        let snap = s.snapshot("ssd", NANOS_PER_SEC);
        assert_eq!(snap.device, "ssd");
        assert_eq!(snap.random_writes, 1);
        assert_eq!(snap.bytes_written, 4096);
        assert!((snap.busy_secs - 0.0005).abs() < 1e-9);
        assert!((snap.avg_queue_wait_secs - 0.0001).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = DeviceStats::new();
        s.record(OpClass::RandomRead, 4096, 1000, 0);
        s.reset();
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.busy_time(), 0);
    }

    #[test]
    fn window_tracker_rolls() {
        let mut w = WindowTracker::new(100);
        assert_eq!(w.window_start(), 100);
        assert_eq!(w.roll(600), 500);
        assert_eq!(w.window_start(), 600);
        // Rolling backwards yields zero, not underflow.
        assert_eq!(w.roll(500), 0);
    }
}
