//! # face-iosim — calibrated storage device simulator
//!
//! This crate provides the hardware substrate for the FaCE reproduction: a
//! virtual-clock simulation of the storage devices used in the paper's
//! evaluation (Table 1 of the paper):
//!
//! | Device | 4KB rand read | 4KB rand write | seq read | seq write |
//! |---|---|---|---|---|
//! | Samsung 470 MLC SSD | 28,495 IOPS | 6,314 IOPS | 251 MB/s | 243 MB/s |
//! | Intel X25-M G2 MLC SSD | 35,601 IOPS | 2,547 IOPS | 259 MB/s | 81 MB/s |
//! | Intel X25-E SLC SSD | 38,427 IOPS | 5,057 IOPS | 259 MB/s | 195 MB/s |
//! | Seagate 15k.6 disk | 409 IOPS | 343 IOPS | 156 MB/s | 154 MB/s |
//! | 8-disk RAID-0 | 2,598 IOPS | 2,502 IOPS | 848 MB/s | 843 MB/s |
//!
//! The simulator distinguishes the four operation classes (random/sequential x
//! read/write) because the entire FaCE design is motivated by the asymmetry
//! between them on flash SSDs: random writes are roughly an order of magnitude
//! slower than sequential writes, while random reads are close to sequential
//! reads.
//!
//! ## Model
//!
//! * [`SimClock`] — a shared virtual clock in nanoseconds.
//! * [`DeviceProfile`] — the calibration numbers of a device.
//! * [`Device`] — a queueing server: each request occupies the device for its
//!   service time; requests submitted while the device is busy wait in FIFO
//!   order. Sequentiality is detected from the byte offset of consecutive
//!   requests (plus an explicit hint for append-only writes).
//! * [`RaidArray`] — RAID-0 striping across N member disks.
//! * [`IoSystem`] — the set of devices used by an experiment plus a closed
//!   population of clients ([`ClientSet`]); it produces device utilisation,
//!   IOPS and elapsed simulated time.
//!
//! The model is intentionally a *service-time* model, not a full disk
//! geometry model: the reproduction targets the shape of the paper's results
//! (who wins, by what factor, where crossovers fall), which is driven by the
//! service-time ratios of Table 1.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod device;
pub mod profile;
pub mod raid;
pub mod request;
pub mod stats;
pub mod system;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use device::{Device, DeviceId};
pub use profile::{DeviceKind, DeviceProfile};
pub use raid::RaidArray;
pub use request::{AccessPattern, IoOp, IoRequest};
pub use stats::{DeviceStats, OpClass, StatsSnapshot};
pub use system::{ClientSet, IoSystem, IoSystemBuilder, IoTarget, Role};

/// The page size used throughout the reproduction (PostgreSQL's 4 KiB pages,
/// matching the paper's setup).
pub const PAGE_SIZE: usize = 4096;
