//! Virtual time for the simulation.
//!
//! All simulated latencies are expressed in nanoseconds. The clock is shared
//! (cheaply clonable) so that devices, the workload driver and statistics all
//! observe the same notion of "now".

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated time, in nanoseconds since the start of the run.
pub type SimInstant = u64;

/// A span of simulated time, in nanoseconds.
pub type SimDuration = u64;

/// Nanoseconds per second, for conversions.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;

/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// Convert a floating-point number of seconds to a [`SimDuration`].
pub fn secs_to_duration(secs: f64) -> SimDuration {
    (secs * NANOS_PER_SEC as f64).round() as SimDuration
}

/// Convert a [`SimDuration`] to floating-point seconds.
pub fn duration_to_secs(d: SimDuration) -> f64 {
    d as f64 / NANOS_PER_SEC as f64
}

/// Convert a [`SimDuration`] to floating-point milliseconds.
pub fn duration_to_millis(d: SimDuration) -> f64 {
    d as f64 / NANOS_PER_MILLI as f64
}

/// A shared, monotonically non-decreasing virtual clock.
///
/// The clock only moves forward via [`SimClock::advance_to`] (typically called
/// by the workload driver when a client blocks on an I/O completion) or
/// [`SimClock::advance_by`].
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock.
#[derive(Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Create a new clock starting at time zero.
    pub fn new() -> Self {
        Self {
            now: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimInstant {
        self.now.load(Ordering::Relaxed)
    }

    /// Advance the clock to `t` if `t` is later than the current time.
    /// Returns the (possibly unchanged) current time afterwards.
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        self.now.fetch_max(t, Ordering::Relaxed);
        self.now()
    }

    /// Advance the clock by `d` nanoseconds and return the new time.
    pub fn advance_by(&self, d: SimDuration) -> SimInstant {
        self.now.fetch_add(d, Ordering::Relaxed) + d
    }

    /// Reset the clock to zero. Intended for reuse between experiment runs.
    pub fn reset(&self) {
        self.now.store(0, Ordering::Relaxed);
    }

    /// Current simulated time in floating-point seconds.
    pub fn now_secs(&self) -> f64 {
        duration_to_secs(self.now())
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimClock({:.6}s)", self.now_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.now_secs(), 0.0);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        assert_eq!(c.advance_to(100), 100);
        // Advancing to an earlier instant does not move the clock backwards.
        assert_eq!(c.advance_to(50), 100);
        assert_eq!(c.advance_to(200), 200);
    }

    #[test]
    fn advance_by_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.advance_by(10), 10);
        assert_eq!(c.advance_by(15), 25);
        assert_eq!(c.now(), 25);
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance_to(1_000);
        assert_eq!(c2.now(), 1_000);
        c2.advance_by(500);
        assert_eq!(c.now(), 1_500);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = SimClock::new();
        c.advance_to(123_456);
        c.reset();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(secs_to_duration(1.0), NANOS_PER_SEC);
        assert_eq!(secs_to_duration(0.001), NANOS_PER_MILLI);
        let d = secs_to_duration(2.5);
        assert!((duration_to_secs(d) - 2.5).abs() < 1e-9);
        assert!((duration_to_millis(NANOS_PER_MILLI * 3) - 3.0).abs() < 1e-9);
    }
}
