//! Multi-Version FIFO replacement with Group Replacement and Group Second
//! Chance — the FaCE caching algorithms (paper §3.2–3.3, Algorithm 1).
//!
//! The flash cache is a circular queue of page slots. Pages evicted from the
//! DRAM buffer are *enqueued at the rear* (append-only, hence sequential flash
//! writes); victims are *dequeued from the front*. Because older versions of a
//! page are never overwritten in place, several versions of the same page can
//! coexist; only the most recently enqueued one is *valid*. Dequeued pages are
//! written to disk only if they are dirty and valid; everything else is simply
//! discarded.
//!
//! * **FaCE** (base): `group_size = 1` — every enqueue is an append of one
//!   page, every replacement dequeues one page.
//! * **FaCE + GR**: enqueues are buffered and written as one batch-sized
//!   sequential I/O; replacements dequeue a whole group at once.
//! * **FaCE + GSC**: like GR, but a dequeued page whose reference bit is set
//!   (it was hit while cached) is re-enqueued instead of discarded; if the
//!   write batch still has room it is topped up with dirty pages pulled from
//!   the DRAM buffer's LRU tail.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use face_pagestore::{DeviceResult, Lsn, Page, PageId};

use crate::destage::{PendingGroupWrite, PendingSlotWrite};
use crate::io::IoLog;
use crate::meta::{JournalEntry, MetaJournal};
use crate::policy::{FlashCache, PageSupplier};
use crate::store::FlashStore;
use crate::types::{
    CacheConfig, CacheRecoveryInfo, CacheStatCounters, CacheStats, Evacuation, FetchPin,
    FlashFetch, InsertOutcome, QuarantineOutcome, SlotGenerations, StagedPage,
};

/// Metadata for one occupied flash slot.
#[derive(Debug, Clone)]
struct SlotMeta {
    page: PageId,
    lsn: Lsn,
    /// The cached version is newer than the disk copy.
    dirty: bool,
    /// This is the latest version of the page (only valid copies are served
    /// and only valid dirty copies are flushed to disk at dequeue).
    valid: bool,
    /// The page was referenced (hit) while cached — second-chance candidate.
    referenced: bool,
    /// The journal group epoch this version was enqueued under.
    epoch: u64,
}

/// A group formed under [`CacheConfig::defer_group_writes`]: the directory
/// already references its slots, but the physical batch write is owed by the
/// caller (the destage pipeline). Its journal records are RAM-resident until
/// [`MvFifoCache::complete_group`] seals them — a crash before then loses
/// data and metadata together, the §4.3 invariant.
struct InflightGroup {
    write: PendingGroupWrite,
    /// The caller reported the physical write done; the group seals once
    /// every older in-flight group has sealed too.
    completed: bool,
}

/// The FaCE flash cache.
pub struct MvFifoCache {
    config: CacheConfig,
    store: Arc<dyn FlashStore>,
    /// Slot metadata; `None` means the slot is currently outside the queue.
    slots: Vec<Option<SlotMeta>>,
    /// Index of the oldest occupied slot.
    front: usize,
    /// Number of occupied slots.
    size: usize,
    /// Latest valid version of each cached page.
    dir: HashMap<PageId, usize>,
    /// Slots assigned but whose physical batch write has not happened yet.
    pending_slots: Vec<usize>,
    /// Data for the pending slots (parallel to `pending_slots`) when the
    /// store carries data.
    pending_data: Vec<Option<Arc<Page>>>,
    /// Deferred groups awaiting their physical batch write, by epoch.
    inflight: BTreeMap<u64, InflightGroup>,
    /// `slot -> (epoch, frame)` for the in-flight groups, so fetches of
    /// versions whose batch write has not completed are served from RAM —
    /// the foreground never waits for a specific group write to finish.
    inflight_data: HashMap<usize, (u64, Arc<Page>)>,
    /// Per-slot version counters for the lock-light fetch protocol: bumped
    /// whenever the slot's occupant changes (enqueue assignment, dequeue), so
    /// an off-lock reader can detect that the bytes it read may no longer
    /// belong to the version it pinned ([`FlashCache::fetch_validate`]).
    generations: SlotGenerations,
    /// Slots removed from the replacement rotation after repeated device
    /// failures ([`FlashCache::quarantine_slot`]). RAM-only by design: the
    /// flash bytes are not trimmed, so a post-crash recovery may still use
    /// them if they turn out readable; a slot that keeps failing is simply
    /// re-quarantined. Inside the queue window a quarantined slot is a hole
    /// (`slots[s]` stays `None`); at the rear it is absorbed into the window
    /// without a page ([`MvFifoCache::absorb_quarantined_rear`]).
    quarantined: HashSet<usize>,
    /// Dirty pages rolled back from failed inline flash writes, awaiting the
    /// caller's disk failover ([`FlashCache::take_write_fallout`]).
    write_fallout: Vec<StagedPage>,
    journal: MetaJournal,
    stats: CacheStatCounters,
}

impl MvFifoCache {
    /// Create a cache with the given configuration over `store`.
    ///
    /// # Panics
    /// Panics if the store capacity does not match the configured capacity or
    /// if the capacity is zero.
    pub fn new(config: CacheConfig, store: Arc<dyn FlashStore>) -> Self {
        assert!(config.capacity_pages > 0, "flash cache needs capacity");
        assert!(
            store.capacity() >= config.capacity_pages,
            "flash store smaller than configured capacity"
        );
        assert!(config.group_size >= 1, "group size must be at least 1");
        let capacity = config.capacity_pages;
        let journal = MetaJournal::new(config.meta_checkpoint_interval_groups);
        Self {
            config,
            store,
            slots: (0..capacity).map(|_| None).collect(),
            front: 0,
            size: 0,
            dir: HashMap::new(),
            pending_slots: Vec::new(),
            pending_data: Vec::new(),
            inflight: BTreeMap::new(),
            inflight_data: HashMap::new(),
            generations: SlotGenerations::new(capacity),
            quarantined: HashSet::new(),
            write_fallout: Vec::new(),
            journal,
            stats: CacheStatCounters::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The persistent mapping-metadata journal (for recovery experiments).
    pub fn journal(&self) -> &MetaJournal {
        &self.journal
    }

    /// The valid (served) page versions with their LSN and dirty flag, in
    /// queue (oldest-to-newest) order. Recovery tests assert against this.
    pub fn valid_versions(&self) -> Vec<(PageId, Lsn, bool)> {
        self.directory_snapshot()
            .into_iter()
            .map(|e| (e.page, e.lsn, e.dirty))
            .collect()
    }

    /// Snapshot the live directory (valid versions in queue order) as journal
    /// entries — the payload of a [`crate::meta::CacheCheckpoint`].
    fn directory_snapshot(&self) -> Vec<JournalEntry> {
        self.snapshot_filtered(u64::MAX)
    }

    /// Snapshot only the **durable** part of the directory: entries whose
    /// group has sealed. With deferred group writes, a cadence checkpoint can
    /// fire while newer groups are still in flight (or buffering); their
    /// bytes have not reached flash, so a snapshot referencing them would let
    /// a crash resurrect metadata for pages that were never written — the
    /// exact §4.3 violation the group-seal coupling exists to prevent.
    fn durable_directory_snapshot(&self) -> Vec<JournalEntry> {
        // Seals are contiguous in epoch order, so everything strictly below
        // the oldest unsealed epoch (oldest in-flight group, else the
        // still-buffering current group) is durable.
        let oldest_unsealed = self
            .inflight
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.journal.current_epoch());
        self.snapshot_filtered(oldest_unsealed)
    }

    fn snapshot_filtered(&self, below_epoch: u64) -> Vec<JournalEntry> {
        let capacity = self.config.capacity_pages;
        let mut out = Vec::new();
        for i in 0..self.size {
            let slot = (self.front + i) % capacity;
            if let Some(m) = &self.slots[slot] {
                if m.valid && m.epoch < below_epoch {
                    out.push(JournalEntry {
                        epoch: m.epoch,
                        slot: slot as u32,
                        page: m.page,
                        lsn: m.lsn,
                        dirty: m.dirty,
                    });
                }
            }
        }
        out
    }

    /// Force a flash-cache checkpoint: flush the pending batch (sealing its
    /// journal group) and persist a directory snapshot, so a subsequent
    /// restart replays no journal at all. Independent of database
    /// checkpointing, as in the paper. On a device error the unflushable
    /// batch has been rolled back (dirty pages wait in
    /// [`FlashCache::take_write_fallout`]) and no snapshot is written.
    pub fn checkpoint_metadata(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        self.flush_all_groups_inline(io)?;
        // The flush may just have installed a cadence checkpoint (or a
        // previous call already left the journal fully folded): skip the
        // second, identical snapshot write in that case.
        let pointers = (self.front as u64, self.size as u64);
        let already_folded = self.journal.replay_entries() == 0
            && self.journal.checkpoint().map(|c| (c.front, c.size)) == Some(pointers);
        if already_folded {
            return Ok(());
        }
        let snapshot = self.durable_directory_snapshot();
        self.journal
            .install_checkpoint(pointers.0, pointers.1, snapshot, io);
        self.stats.metadata_flushes.inc();
        Ok(())
    }

    /// Fraction of occupied slots holding invalidated (duplicate) versions —
    /// the paper reports 30–40 % duplicates for an 8 GB cache.
    pub fn duplicate_ratio(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        let invalid = self
            .slots
            .iter()
            .filter(|s| matches!(s, Some(m) if !m.valid))
            .count();
        invalid as f64 / self.size as f64
    }

    fn free_slots(&self) -> usize {
        self.config.capacity_pages - self.size
    }

    /// Slots still usable for caching: total capacity minus the quarantined
    /// ones. At zero the cache cannot admit anything and inserts degrade to
    /// serve-through (the engine's breaker trips long before this point).
    fn usable_capacity(&self) -> usize {
        self.config.capacity_pages - self.quarantined.len()
    }

    /// Absorb quarantined slots sitting at the queue rear into the window as
    /// holes, so the next enqueue lands on a usable slot. Each absorbed slot
    /// consumes window space and is reclaimed when it circulates back to the
    /// front (a dequeue of an empty slot is a no-op).
    fn absorb_quarantined_rear(&mut self) {
        while self.free_slots() > 0 && self.quarantined.contains(&self.rear()) {
            let slot = self.rear();
            debug_assert!(self.slots[slot].is_none(), "quarantined slot occupied");
            self.generations.bump(slot);
            self.size += 1;
        }
    }

    /// The RAM-resident frame for `slot`, when its batch write has not
    /// reached the device yet: `Some(frame)` for a slot in the not-yet-formed
    /// pending batch or an in-flight deferred group (the inner option is
    /// `None` for metadata-only staged pages), `None` when the slot's bytes
    /// live on the flash store.
    fn ram_frame(&self, slot: usize) -> Option<Option<Arc<Page>>> {
        if let Some(pos) = self.pending_slots.iter().position(|&s| s == slot) {
            return Some(self.pending_data[pos].clone());
        }
        if let Some((_, frame)) = self.inflight_data.get(&slot) {
            return Some(Some(Arc::clone(frame)));
        }
        None
    }

    /// The shared frame stored at `slot`, looking in the not-yet-formed
    /// pending batch first, then the in-flight groups (both RAM-resident
    /// until their batch write), then the flash store (fallible).
    fn slot_frame(&self, slot: usize) -> DeviceResult<Option<Arc<Page>>> {
        match self.ram_frame(slot) {
            Some(frame) => Ok(frame),
            None => Ok(self.store.read_slot(slot)?.map(Arc::new)),
        }
    }

    fn rear(&self) -> usize {
        (self.front + self.size) % self.config.capacity_pages
    }

    /// Assign the rear slot to a page version and record its metadata entry
    /// in the journal's current group. The physical write — data pages and
    /// the group's metadata records together — is deferred to the pending
    /// batch ([`MvFifoCache::flush_pending`]).
    fn enqueue_assign(&mut self, staged: &StagedPage, _io: &mut IoLog) -> usize {
        debug_assert!(self.free_slots() > 0, "enqueue without free slot");
        let slot = self.rear();
        debug_assert!(
            !self.quarantined.contains(&slot),
            "enqueue onto a quarantined slot"
        );
        self.size += 1;
        self.generations.bump(slot);
        self.slots[slot] = Some(SlotMeta {
            page: staged.page,
            lsn: staged.lsn,
            dirty: staged.dirty,
            valid: true,
            referenced: false,
            epoch: self.journal.current_epoch(),
        });
        self.dir.insert(staged.page, slot);
        self.journal
            .append(slot as u32, staged.page, staged.lsn, staged.dirty);
        self.pending_slots.push(slot);
        self.pending_data.push(staged.data.clone());
        slot
    }

    /// Physically write the pending batch as one sequential flash I/O and
    /// seal the batch's journal group (metadata flushed *with* the group, per
    /// §4.3). Once enough groups have sealed, a cache checkpoint snapshots
    /// the directory and prunes the journal. This is the **inline** path;
    /// with [`CacheConfig::defer_group_writes`] the batch is instead handed
    /// back via [`MvFifoCache::form_pending_group`].
    fn flush_pending(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        if self.pending_slots.is_empty() {
            return Ok(());
        }
        let n = self.pending_slots.len() as u32;
        // One batch-sized sequential flash write (the pending slots were
        // assigned consecutively at the rear).
        io.flash_write_seq(n);
        for i in 0..self.pending_slots.len() {
            let slot = self.pending_slots[i];
            if self.store.carries_data() {
                if let Some(page) = self.pending_data[i].clone() {
                    if let Err(e) = self.store.write_slot(slot, &page) {
                        // A prefix of the batch may have persisted; its
                        // journal group never seals, so those bytes are
                        // invisible to recovery — exactly what a crash
                        // between the writes and the seal would leave.
                        self.rollback_pending(io);
                        return Err(e);
                    }
                }
            }
            // Header-only stores learn which page now occupies the slot, so
            // a recovery scan of page headers works in simulation mode too.
            if let Some(meta) = &self.slots[slot] {
                self.store.note_slot_header(slot, meta.page, meta.lsn);
            }
        }
        self.pending_slots.clear();
        self.pending_data.clear();
        self.journal
            .seal_group(self.front as u64, self.size as u64, io);
        self.maybe_cadence_checkpoint(io);
        Ok(())
    }

    /// Inline-write failure: un-admit every entry of the pending batch. The
    /// batch's journal records are dropped with it — data and metadata are
    /// lost together, exactly as a crash between the appends and the seal
    /// would lose them (§4.3). Versions the batch invalidated are *not*
    /// revalidated (their contents are stale); dirty rolled-back pages move
    /// to the write-fallout buffer for the caller's disk failover. The
    /// slots stay inside the queue window as holes and are reclaimed when
    /// they circulate to the front.
    fn rollback_pending(&mut self, io: &mut IoLog) {
        let slots = std::mem::take(&mut self.pending_slots);
        let data = std::mem::take(&mut self.pending_data);
        for (slot, frame) in slots.into_iter().zip(data) {
            self.generations.bump(slot);
            let Some(meta) = self.slots[slot].take() else {
                continue;
            };
            if self.dir.get(&meta.page) == Some(&slot) {
                self.dir.remove(&meta.page);
            }
            if meta.valid && meta.dirty {
                io.disk_write(meta.page);
                self.write_fallout.push(StagedPage {
                    page: meta.page,
                    lsn: meta.lsn,
                    dirty: true,
                    fdirty: false,
                    data: frame,
                });
            }
        }
        self.journal.abort_current_group();
    }

    fn maybe_cadence_checkpoint(&mut self, io: &mut IoLog) {
        if self.journal.checkpoint_due() {
            let snapshot = self.durable_directory_snapshot();
            self.journal
                .install_checkpoint(self.front as u64, self.size as u64, snapshot, io);
            self.stats.metadata_flushes.inc();
        }
    }

    /// Detach the filled pending batch as a [`PendingGroupWrite`] (deferred
    /// mode): the directory keeps referencing the slots, the frames move into
    /// the in-flight table so fetches and dequeues still see them, and the
    /// group's journal records leave the current buffer but stay volatile
    /// until [`MvFifoCache::complete_group`]. No I/O happens here — that is
    /// the point.
    fn form_pending_group(&mut self) -> Option<PendingGroupWrite> {
        if self.pending_slots.is_empty() {
            return None;
        }
        let (epoch, entries) = self
            .journal
            .begin_deferred_group()
            .expect("pending slots imply unsealed journal entries");
        let slots = std::mem::take(&mut self.pending_slots);
        let data = std::mem::take(&mut self.pending_data);
        let mut pages = Vec::with_capacity(slots.len());
        for (slot, frame) in slots.into_iter().zip(data) {
            let meta = self.slots[slot]
                .as_ref()
                .expect("pending slot has metadata");
            if let Some(frame) = &frame {
                self.inflight_data.insert(slot, (epoch, Arc::clone(frame)));
            }
            pages.push(PendingSlotWrite {
                slot,
                page: meta.page,
                lsn: meta.lsn,
                data: frame,
            });
        }
        let write = PendingGroupWrite {
            shard: 0,
            epoch,
            pages,
            meta_records: entries,
        };
        self.inflight.insert(
            epoch,
            InflightGroup {
                write: write.clone(),
                completed: false,
            },
        );
        Some(write)
    }

    /// Inline fallback for sync/checkpoint/evacuation paths: apply and seal
    /// every in-flight group (oldest first), then flush the current batch.
    /// Engine callers drain the destage pipeline before reaching these paths,
    /// so the in-flight table is normally empty here; applying a group twice
    /// is idempotent at the device (same bytes, same slots) and
    /// [`MvFifoCache::complete_group`] ignores epochs already sealed.
    ///
    /// A failed group write aborts that group ([`FlashCache::abort_group`]):
    /// its dirty pages join the write-fallout buffer and the error is
    /// returned; already-sealed groups are unaffected.
    fn flush_all_groups_inline(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        let epochs: Vec<u64> = self.inflight.keys().copied().collect();
        for epoch in epochs {
            let write = match self.inflight.get(&epoch) {
                Some(g) if !g.completed => Some(g.write.clone()),
                _ => None,
            };
            if let Some(write) = write {
                if let Err(e) = write.apply(&*self.store, io) {
                    let fallout = self.abort_group(epoch, io);
                    self.write_fallout.extend(fallout);
                    return Err(e);
                }
            }
            self.complete_group(epoch, io);
        }
        if self.config.defer_group_writes {
            if let Some(write) = self.form_pending_group() {
                if let Err(e) = write.apply(&*self.store, io) {
                    let fallout = self.abort_group(write.epoch, io);
                    self.write_fallout.extend(fallout);
                    return Err(e);
                }
                self.complete_group(write.epoch, io);
            }
            Ok(())
        } else {
            self.flush_pending(io)
        }
    }

    /// Dequeue up to `group_size` slots from the front. Dirty valid pages are
    /// staged out to disk; referenced valid pages get a second chance under
    /// GSC. Returns the staged pages that must be written to disk and the
    /// pages to re-enqueue.
    ///
    /// A device read error aborts the dequeue with **no mutation at all**:
    /// the bytes of every victim that needs them (disk-bound dirty pages,
    /// second-chance survivors) are prefetched in a read-only first pass, so
    /// an error leaves the queue exactly as it was and the caller can retry
    /// or degrade.
    fn group_dequeue(
        &mut self,
        io: &mut IoLog,
    ) -> DeviceResult<(Vec<StagedPage>, Vec<StagedPage>)> {
        let n = self.config.group_size.min(self.size);
        if n == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        // Pass 1 (read-only): prefetch the bytes of every victim that will
        // be flushed to disk or re-enqueued; clean unreferenced pages are
        // discarded without ever touching the device.
        let mut prefetched: HashMap<usize, Option<Arc<Page>>> = HashMap::new();
        let mut needs_read = false;
        for i in 0..n {
            let slot = (self.front + i) % self.config.capacity_pages;
            let Some(m) = &self.slots[slot] else {
                continue;
            };
            if m.valid && (m.dirty || (self.config.second_chance && m.referenced)) {
                needs_read = true;
                let frame = match self.ram_frame(slot) {
                    Some(frame) => frame,
                    None => {
                        // Residual under-lock flash read: the victim's
                        // bytes are no longer RAM-resident (its group
                        // write completed long ago), so the dequeue has
                        // to fetch them from the device while the shard
                        // lock is held. Acknowledged, counted, rare.
                        let _allow = face_analysis::witness::allow_device_io(
                            "mvfifo: dequeue reads a non-resident victim's slot",
                        );
                        self.store.read_slot(slot)?.map(Arc::new)
                    }
                };
                prefetched.insert(slot, frame);
            }
        }
        if needs_read {
            io.flash_read_seq(n as u32);
        }

        let mut to_disk = Vec::new();
        let mut second_chance = Vec::new();
        for i in 0..n {
            let slot = (self.front + i) % self.config.capacity_pages;
            // The slot leaves the queue (and may be reused by a later
            // enqueue): invalidate any outstanding lock-light pins on it.
            self.generations.bump(slot);
            let Some(meta) = self.slots[slot].take() else {
                continue;
            };
            // If this slot's write is still pending, take its data out of the
            // pending batch so it is neither lost nor written later. A slot
            // whose write is *in flight* keeps its queued write (the frames
            // are shared and a later re-enqueue of the slot lands in a later
            // group, which the per-shard FIFO destage order applies after).
            if let Some(pos) = self.pending_slots.iter().position(|&s| s == slot) {
                self.pending_slots.remove(pos);
                self.pending_data.remove(pos);
            }
            self.stats.staged_out.inc();
            if meta.valid {
                // The directory entry must point at this slot (it is the
                // latest version); remove it — the page is leaving the cache
                // unless it gets a second chance.
                if self.dir.get(&meta.page) == Some(&slot) {
                    self.dir.remove(&meta.page);
                }
                if self.config.second_chance && meta.referenced {
                    let data = prefetched.remove(&slot).flatten();
                    self.stats.second_chances.inc();
                    second_chance.push(StagedPage {
                        page: meta.page,
                        lsn: meta.lsn,
                        dirty: meta.dirty,
                        fdirty: true, // force unconditional re-enqueue
                        data,
                    });
                } else if meta.dirty {
                    let data = prefetched.remove(&slot).flatten();
                    self.stats.staged_out_to_disk.inc();
                    io.disk_write(meta.page);
                    to_disk.push(StagedPage {
                        page: meta.page,
                        lsn: meta.lsn,
                        dirty: true,
                        fdirty: false,
                        data,
                    });
                }
                // Clean, unreferenced valid pages are simply discarded.
            }
            // Invalid (superseded) versions are discarded with no I/O.
        }
        self.front = (self.front + n) % self.config.capacity_pages;
        self.size -= n;
        // Pointer movement becomes durable with the next group seal or
        // checkpoint; recovery may therefore see a slightly stale front and
        // re-admit recently dequeued versions. That is safe because every
        // re-admitted version is at or below the durable LSN (so redo
        // patches it forward), not because it matches the disk — a GSC
        // second-chance survivor's old slot, for example, was never staged
        // to disk.

        // Pathological case: every page in the group was referenced. Force
        // the oldest one out so the replacement makes progress (paper §3.3).
        if !second_chance.is_empty() && second_chance.len() == n {
            let forced = second_chance.remove(0);
            self.stats.second_chances.sub(1);
            if forced.dirty {
                self.stats.staged_out_to_disk.inc();
                io.disk_write(forced.page);
                to_disk.push(forced);
            }
        }
        Ok((to_disk, second_chance))
    }

    /// Invalidate the previous version of `page`, if cached.
    fn invalidate_previous(&mut self, page: PageId) {
        if let Some(slot) = self.dir.remove(&page) {
            if let Some(meta) = &mut self.slots[slot] {
                meta.valid = false;
                self.stats.invalidations.inc();
            }
        }
    }

    /// Admit one page version: ensure space, assign a slot, and collect any
    /// stage-outs and second-chance re-enqueues triggered by replacement.
    ///
    /// On a device error the insert is not admitted: the staged page (if
    /// dirty) and everything already dequeued into `outcome.staged_out` move
    /// to the write-fallout buffer for disk failover, and the error
    /// propagates.
    fn admit(
        &mut self,
        staged: StagedPage,
        outcome: &mut InsertOutcome,
        io: &mut IoLog,
    ) -> DeviceResult<()> {
        // Make space. Each iteration frees at least one slot; quarantined
        // holes at the rear are absorbed into the window so the enqueue
        // lands on a usable slot (progress is guaranteed while at least one
        // slot remains usable — the caller checks).
        loop {
            self.absorb_quarantined_rear();
            if self.free_slots() > 0 {
                break;
            }
            let (to_disk, second_chance) = match self.group_dequeue(io) {
                Ok(batch) => batch,
                Err(e) => {
                    if staged.dirty {
                        io.disk_write(staged.page);
                        self.write_fallout.push(staged);
                    }
                    self.write_fallout.append(&mut outcome.staged_out);
                    return Err(e);
                }
            };
            outcome.staged_out.extend(to_disk);
            for sc in second_chance {
                // Re-enqueue survivors. Space for them is normally
                // guaranteed (the dequeue freed `group_size` slots and at
                // most `group_size - 1` survivors remain) — unless
                // quarantined holes absorbed the freed space, in which case
                // the survivor loses its second chance: dirty to disk,
                // clean dropped.
                self.absorb_quarantined_rear();
                if self.free_slots() == 0 {
                    if sc.dirty {
                        self.stats.staged_out_to_disk.inc();
                        io.disk_write(sc.page);
                        outcome.staged_out.push(sc);
                    }
                    continue;
                }
                self.invalidate_previous(sc.page);
                self.enqueue_assign(&sc, io);
            }
        }
        self.invalidate_previous(staged.page);
        self.enqueue_assign(&staged, io);
        self.stats.cached_inserts.inc();
        Ok(())
    }

    /// Restore a cache from its surviving flash-resident state after a crash:
    /// the cache checkpoint plus the sealed journal groups, reconciled
    /// against the WAL's durable end, plus a bounded header scan of window
    /// slots the journal left uncovered (paper §4.2). The recovered cache
    /// serves fetches for every page whose metadata could be restored, in
    /// the original FIFO order (front/size and per-slot versions are
    /// rebuilt), so eviction order is preserved across the crash.
    ///
    /// Reconciliation rules:
    /// * a journaled version with `lsn > durable_lsn` is **discarded** — its
    ///   WAL records were lost with the crash, so serving it would diverge
    ///   from redo; any older surviving version of the page becomes valid
    ///   again and redo patches it forward;
    /// * a dirty version with `lsn <= durable_lsn` is kept and substitutes
    ///   for the disk copy during redo (the paper's fast-restart path).
    pub fn recover(
        config: CacheConfig,
        store: Arc<dyn FlashStore>,
        survived: &MetaJournal,
        durable_lsn: Lsn,
        io: &mut IoLog,
    ) -> (Self, CacheRecoveryInfo) {
        let capacity = config.capacity_pages;
        let recovered = survived.recover(io);
        let group_size = config.group_size;

        let mut cache = Self::new(config, Arc::clone(&store));
        cache.front = recovered.front as usize % capacity.max(1);
        cache.size = (recovered.size as usize).min(capacity);
        let front = cache.front;
        let size = cache.size;
        let mut info = CacheRecoveryInfo {
            survived: true,
            metadata_segments_loaded: u64::from(recovered.checkpoint_loaded)
                + survived.sealed_groups() as u64,
            checkpoint_loaded: recovered.checkpoint_loaded,
            checkpoint_entries_loaded: recovered.checkpoint_entries,
            journal_records_replayed: recovered.journal_records_replayed,
            ..CacheRecoveryInfo::default()
        };

        // Replay in journal order (checkpoint snapshot, then sealed groups
        // oldest-first): a later entry is the newer version and supersedes
        // earlier ones, for its page and for its slot alike.
        let mut doomed_slots: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for e in &recovered.entries {
            let slot = e.slot as usize;
            // Only slots inside the occupied window are live.
            let offset = (slot + capacity - front) % capacity;
            if offset >= size {
                continue;
            }
            if e.lsn > durable_lsn {
                // The version outran the durable log; rule 1 discards it.
                // The slot's physical bytes belong to this discarded version
                // (data and metadata seal together), so any earlier entry
                // replayed onto the same slot must go too — its metadata
                // would otherwise serve the discarded version's bytes. The
                // slot is marked for physical invalidation below (deferred:
                // a *later* replay entry may legitimately re-occupy it).
                info.entries_discarded_beyond_wal += 1;
                doomed_slots.insert(slot);
                if let Some(old) = cache.slots[slot].take() {
                    if cache.dir.get(&old.page) == Some(&slot) {
                        cache.dir.remove(&old.page);
                    }
                }
                continue;
            }
            // A later entry re-occupying a doomed slot owns its bytes again.
            doomed_slots.remove(&slot);
            // A stale occupant of a reused slot loses its directory entry.
            if let Some(old) = &cache.slots[slot] {
                if old.page != e.page && cache.dir.get(&old.page) == Some(&slot) {
                    cache.dir.remove(&old.page);
                }
            }
            if let Some(prev) = cache.dir.insert(e.page, slot) {
                if prev != slot {
                    if let Some(m) = &mut cache.slots[prev] {
                        m.valid = false;
                    }
                }
            }
            cache.slots[slot] = Some(SlotMeta {
                page: e.page,
                lsn: e.lsn,
                dirty: e.dirty,
                valid: true,
                referenced: false,
                epoch: e.epoch,
            });
        }

        // Physically invalidate the slots whose only content is a discarded
        // version: a readable header there would let a *later* recovery's
        // tail scan resurrect the dead timeline once the reused LSN range
        // becomes durable again.
        for slot in &doomed_slots {
            store.clear_slot(*slot);
        }

        // Bounded tail scan (§4.2): window slots the journal did not cover —
        // normally none, because metadata seals with its group — are probed
        // through their page headers, newest-first, capped at two groups.
        // A scanned header is admitted only under the same reconciliation
        // rule and never over a journaled version of the same page.
        let mut scanned = 0u64;
        let scan_cap = (2 * group_size.max(1)) as u64;
        for i in (0..size).rev() {
            if scanned >= scan_cap {
                break;
            }
            let slot = (front + i) % capacity;
            if cache.slots[slot].is_some() {
                continue;
            }
            scanned += 1;
            info.pages_scanned += 1;
            if let Some((page, lsn)) = store.slot_header(slot) {
                if lsn > durable_lsn || cache.dir.contains_key(&page) {
                    continue;
                }
                cache.dir.insert(page, slot);
                cache.slots[slot] = Some(SlotMeta {
                    page,
                    lsn,
                    // The dirty flag is not in the page header; assume dirty
                    // (safe: at worst an extra disk write at stage-out).
                    dirty: true,
                    valid: true,
                    referenced: false,
                    epoch: 0,
                });
            }
        }
        if scanned > 0 {
            io.flash_read_seq(scanned as u32);
        }

        info.entries_restored = cache.dir.len() as u64;
        // The restored journal continues from the survivor.
        cache.journal = survived.clone();
        // If reconciliation discarded anything, the survivor's durable
        // metadata still describes the discarded versions. Rewrite the
        // snapshot from the reconciled directory immediately: otherwise a
        // later recovery — once the (reused) LSN range becomes durable
        // again — would re-admit versions from the dead timeline.
        if info.entries_discarded_beyond_wal > 0 {
            let snapshot = cache.directory_snapshot();
            cache
                .journal
                .install_checkpoint(cache.front as u64, cache.size as u64, snapshot, io);
        }
        (cache, info)
    }
}

impl FlashCache for MvFifoCache {
    fn policy_name(&self) -> &'static str {
        if self.config.second_chance {
            "FaCE+GSC"
        } else if self.config.group_size > 1 {
            "FaCE+GR"
        } else {
            "FaCE"
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.dir.contains_key(&page)
    }

    fn fetch(&mut self, page: PageId, io: &mut IoLog) -> DeviceResult<Option<FlashFetch>> {
        self.stats.lookups.inc();
        let Some(&slot) = self.dir.get(&page) else {
            return Ok(None);
        };
        let Some(meta) = self.slots[slot].as_mut() else {
            return Ok(None);
        };
        debug_assert!(meta.valid, "directory points at an invalid version");
        self.stats.hits.inc();
        meta.referenced = true;
        let dirty = meta.dirty;
        let lsn = meta.lsn;
        io.flash_read_rand(1);
        Ok(Some(FlashFetch {
            data: self.slot_frame(slot)?.map(|f| f.as_ref().clone()),
            dirty,
            lsn,
        }))
    }

    fn fetch_pin(&mut self, page: PageId, retry: bool, io: &mut IoLog) -> Option<FetchPin> {
        if retry {
            self.stats.fetch_retries.inc();
        } else {
            self.stats.lookups.inc();
        }
        let slot = *self.dir.get(&page)?;
        let meta = self.slots[slot].as_mut()?;
        debug_assert!(meta.valid, "directory points at an invalid version");
        if !retry {
            self.stats.hits.inc();
        }
        meta.referenced = true;
        let lsn = meta.lsn;
        let dirty = meta.dirty;
        io.flash_read_rand(1);
        // A version whose batch write has not reached the device is served
        // from its shared RAM frame — the store may still hold the slot's
        // previous occupant, so an off-lock device read would be wrong, not
        // merely stale. The frame is immutable and `Arc`-shared: it outlives
        // any eviction or destage completing mid-read.
        let (frame, data_expected) = match self.ram_frame(slot) {
            Some(frame) => {
                let expected = frame.is_some();
                (frame, expected)
            }
            None => (None, true),
        };
        Some(FetchPin {
            slot,
            lsn,
            dirty,
            generation: self.generations.current(slot),
            frame,
            data_expected,
        })
    }

    fn fetch_validate(&self, slot: usize, generation: u64) -> bool {
        self.generations.check(slot, generation)
    }

    fn insert(
        &mut self,
        staged: StagedPage,
        supplier: &mut dyn PageSupplier,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        self.stats.inserts.inc();
        if staged.dirty {
            self.stats.dirty_inserts.inc();
        }
        let mut outcome = InsertOutcome {
            cached: true,
            ..Default::default()
        };

        // Conditional enqueue (Algorithm 1): a clean page whose identical
        // copy is already cached is not enqueued again.
        if !staged.fdirty && self.dir.contains_key(&staged.page) {
            self.stats.skipped_inserts.inc();
            return Ok(outcome);
        }

        // Fully-quarantined degenerate case: nothing is usable, so the
        // insert degrades to serve-through (dirty straight to disk).
        if self.usable_capacity() == 0 {
            outcome.cached = false;
            if staged.dirty {
                io.disk_write(staged.page);
                self.stats.staged_out_to_disk.inc();
                outcome.staged_out.push(staged);
            }
            return Ok(outcome);
        }

        let had_replacement_potential = self.free_slots() == 0;
        self.admit(staged, &mut outcome, io)?;

        // Group Second Chance: top the write batch up with dirty pages pulled
        // from the DRAM buffer's LRU tail so the batch write is full-sized.
        if self.config.second_chance && had_replacement_potential {
            loop {
                self.absorb_quarantined_rear();
                if self.pending_slots.len() >= self.config.group_size || self.free_slots() == 0 {
                    break;
                }
                let Some(extra) = supplier.next_dirty_page() else {
                    break;
                };
                self.stats.pulled_from_dram.inc();
                self.stats.inserts.inc();
                if extra.dirty {
                    self.stats.dirty_inserts.inc();
                }
                if !extra.fdirty && self.dir.contains_key(&extra.page) {
                    self.stats.skipped_inserts.inc();
                    continue;
                }
                self.invalidate_previous(extra.page);
                self.enqueue_assign(&extra, io);
                self.stats.cached_inserts.inc();
            }
        }

        // Write the batch once it reaches the group size (always, for the
        // base policy where the group size is 1). In deferred mode the
        // filled group is handed back instead: the caller owns the physical
        // write, and this insert performed no device I/O at all.
        if self.pending_slots.len() >= self.config.group_size {
            if self.config.defer_group_writes {
                outcome.pending_group = self.form_pending_group();
            } else if let Err(e) = self.flush_pending(io) {
                // The batch (including this insert) was rolled back; its
                // dirty pages wait in the fallout buffer. Pages already
                // dequeued by this call join them — `Err` carries no
                // outcome, and the caller must still write them to disk.
                self.write_fallout.append(&mut outcome.staged_out);
                return Err(e);
            }
        }
        Ok(outcome)
    }

    fn group_write_pending(&self, epoch: u64) -> bool {
        self.inflight.get(&epoch).is_some_and(|g| !g.completed)
    }

    fn complete_group(&mut self, epoch: u64, io: &mut IoLog) {
        let Some(group) = self.inflight.get_mut(&epoch) else {
            // Unknown epoch: already sealed inline (sync raced the pipeline)
            // or dropped by a crash. Idempotent by design.
            return;
        };
        group.completed = true;
        // Seal contiguously from the oldest in-flight epoch so journal groups
        // become durable in epoch order even if completions raced (they do
        // not under the per-shard FIFO destage routing; this is the policy's
        // own guarantee).
        while let Some((&oldest, group)) = self.inflight.iter().next() {
            if !group.completed {
                break;
            }
            let group = self.inflight.remove(&oldest).expect("key just observed");
            for w in &group.write.pages {
                if self
                    .inflight_data
                    .get(&w.slot)
                    .is_some_and(|(e, _)| *e == oldest)
                {
                    self.inflight_data.remove(&w.slot);
                }
            }
            self.journal.seal_detached_group(
                group.write.meta_records,
                self.front as u64,
                self.size as u64,
                io,
            );
        }
        self.maybe_cadence_checkpoint(io);
    }

    fn sync(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        // Flush the pending batch (sealing its journal group) and snapshot
        // the directory, so a clean shutdown restarts with zero replay.
        self.checkpoint_metadata(io)
    }

    fn take_write_fallout(&mut self) -> Vec<StagedPage> {
        std::mem::take(&mut self.write_fallout)
    }

    fn evacuate_dirty(&mut self, io: &mut IoLog) -> Evacuation {
        // Dirty flash pages are the only persistent copy of their contents
        // (write-back, checkpoint-to-flash): before the cache device can be
        // wiped they must reach the disk. Clean and invalidated versions
        // need nothing. The dirty flags are deliberately *left set*: the
        // caller's disk writes may still fail, and clearing early would let
        // a retry (or a later eviction) drop the only persistent copy. A
        // successful evacuation is followed by a cache wipe, which retires
        // the flags anyway; a repeated call is idempotent, merely re-listing
        // the same pages.
        //
        // Best-effort under a failing device: each inline-flush error aborts
        // exactly one group, whose dirty pages join the output from their
        // RAM copies, so the loop below terminates; residents whose bytes
        // the device refuses to return are counted in `unread_dirty` and
        // left to WAL redo.
        let mut ev = Evacuation::default();
        while self.flush_all_groups_inline(io).is_err() {}
        ev.pages.append(&mut self.write_fallout);
        let capacity = self.config.capacity_pages;
        let mut scanned = 0u32;
        for i in 0..self.size {
            let slot = (self.front + i) % capacity;
            let Some(meta) = self.slots[slot].as_ref() else {
                continue;
            };
            if !meta.valid || !meta.dirty {
                continue;
            }
            let data = if self.store.carries_data() {
                match self.store.read_slot(slot) {
                    Ok(Some(p)) => Some(Arc::new(p)),
                    Ok(None) | Err(_) => {
                        // Bytes lost with the failing slot: emit a data-less
                        // marker so the caller can refuse stale disk serves
                        // of this page until WAL redo rebuilds it.
                        ev.unread_dirty += 1;
                        ev.pages.push(StagedPage {
                            page: meta.page,
                            lsn: meta.lsn,
                            dirty: true,
                            fdirty: false,
                            data: None,
                        });
                        continue;
                    }
                }
            } else {
                None
            };
            scanned += 1;
            io.disk_write(meta.page);
            ev.pages.push(StagedPage {
                page: meta.page,
                lsn: meta.lsn,
                dirty: true,
                fdirty: false,
                data,
            });
        }
        if scanned > 0 {
            io.flash_read_seq(scanned);
        }
        ev
    }

    fn quarantine_slot(&mut self, slot: usize, io: &mut IoLog) -> QuarantineOutcome {
        let mut out = QuarantineOutcome::default();
        if slot >= self.config.capacity_pages || self.quarantined.contains(&slot) {
            return out;
        }
        out.quarantined = true;
        self.quarantined.insert(slot);
        self.generations.bump(slot);
        // Pull the slot out of the not-yet-written pending batch; its
        // journal record goes with it, so data and metadata leave together.
        let pending = self
            .pending_slots
            .iter()
            .position(|&s| s == slot)
            .and_then(|pos| {
                self.pending_slots.remove(pos);
                self.journal.remove_current_records_for_slot(slot as u32);
                self.pending_data.remove(pos)
            });
        let inflight = self.inflight_data.get(&slot).map(|(_, f)| Arc::clone(f));
        let Some(meta) = self.slots[slot].take() else {
            return out;
        };
        if !meta.valid {
            return out;
        }
        if self.dir.get(&meta.page) == Some(&slot) {
            self.dir.remove(&meta.page);
        }
        out.removed = Some(meta.page);
        if !meta.dirty {
            // Clean resident: simply dropped, re-fetched from disk on the
            // next miss.
            return out;
        }
        // Dirty resident: its bytes must reach the disk. RAM copies first;
        // the device only as a last resort — the slot is being quarantined
        // because it fails, so an unreadable dirty resident is counted and
        // recovered through WAL redo instead.
        let data = match pending.or(inflight) {
            Some(frame) => Some(frame),
            None if self.store.carries_data() => match self.store.read_slot(slot) {
                Ok(Some(p)) => Some(Arc::new(p)),
                Ok(None) | Err(_) => {
                    // Bytes lost: hand back a data-less evacuee so the
                    // caller can block stale disk serves of this page until
                    // WAL redo rebuilds it.
                    out.dirty_unread = true;
                    out.evacuee = Some(StagedPage {
                        page: meta.page,
                        lsn: meta.lsn,
                        dirty: true,
                        fdirty: false,
                        data: None,
                    });
                    return out;
                }
            },
            None => None,
        };
        io.disk_write(meta.page);
        out.evacuee = Some(StagedPage {
            page: meta.page,
            lsn: meta.lsn,
            dirty: true,
            fdirty: false,
            data,
        });
        out
    }

    fn abort_group(&mut self, epoch: u64, io: &mut IoLog) -> Vec<StagedPage> {
        let Some(group) = self.inflight.remove(&epoch) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for w in &group.write.pages {
            if self
                .inflight_data
                .get(&w.slot)
                .is_some_and(|(e, _)| *e == epoch)
            {
                self.inflight_data.remove(&w.slot);
            }
            let occupant_matches = self.slots[w.slot]
                .as_ref()
                .is_some_and(|m| m.epoch == epoch && m.page == w.page);
            if !occupant_matches {
                // Already dequeued, or the slot was reused by a later
                // version — nothing of this group remains there.
                continue;
            }
            let meta = self.slots[w.slot].take().expect("occupant just observed");
            self.generations.bump(w.slot);
            if self.dir.get(&meta.page) == Some(&w.slot) {
                self.dir.remove(&meta.page);
            }
            if meta.valid && meta.dirty {
                io.disk_write(meta.page);
                out.push(StagedPage {
                    page: meta.page,
                    lsn: meta.lsn,
                    dirty: true,
                    fdirty: false,
                    data: w.data.clone(),
                });
            }
        }
        // The group's journal records drop with `group`: they never seal,
        // so data and metadata are lost together — the crash contract.
        out
    }

    fn persists_dirty_pages(&self) -> bool {
        true
    }

    fn crash_and_recover(&mut self, durable_lsn: Lsn, io: &mut IoLog) -> CacheRecoveryInfo {
        // RAM-resident state (directory, slot metadata, pending batch, the
        // journal's unsealed group) is lost; the flash store contents, the
        // cache checkpoint and the sealed journal groups survive and the
        // cache is rebuilt from them, reconciled against `durable_lsn`.
        let mut survivor = self.journal.clone();
        survivor.crash();
        let config = self.config.clone();
        let store = Arc::clone(&self.store);
        let stats = self.stats.snapshot();
        let (mut rebuilt, info) = Self::recover(config, store, &survivor, durable_lsn, io);
        rebuilt.stats = CacheStatCounters::from(stats);
        *self = rebuilt;
        info
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn capacity(&self) -> usize {
        self.config.capacity_pages
    }

    fn len(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoSupplier;
    use crate::store::{MemFlashStore, NullFlashStore};

    fn pid(n: u32) -> PageId {
        PageId::new(0, n)
    }

    fn meta_cfg(capacity: usize, group: usize, sc: bool) -> CacheConfig {
        CacheConfig {
            capacity_pages: capacity,
            group_size: group,
            second_chance: sc,
            meta_checkpoint_interval_groups: 1_000_000, // keep checkpoints out of the way
            ..CacheConfig::default()
        }
    }

    fn meta_cache(capacity: usize, group: usize, sc: bool) -> MvFifoCache {
        MvFifoCache::new(
            meta_cfg(capacity, group, sc),
            Arc::new(NullFlashStore::new(capacity)),
        )
    }

    fn staged(n: u32, dirty: bool, fdirty: bool) -> StagedPage {
        StagedPage::meta_only(pid(n), Lsn(n as u64), dirty, fdirty)
    }

    #[test]
    fn enqueue_and_hit() {
        let mut c = meta_cache(4, 1, false);
        let mut io = IoLog::new();
        c.insert(staged(1, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert!(c.contains(pid(1)));
        assert_eq!(c.len(), 1);
        // The enqueue is a sequential flash write of one data page plus the
        // group's journal-record append riding along.
        assert_eq!(io.flash_pages_written(), 2);
        assert_eq!(io.flash_pages_written_random(), 0);

        let mut io = IoLog::new();
        let hit = c.fetch(pid(1), &mut io).unwrap().unwrap();
        assert!(hit.dirty);
        assert_eq!(hit.lsn, Lsn(1));
        assert_eq!(c.stats().hits, 1);
        // A flash hit is one random flash read.
        assert_eq!(io.events().len(), 1);
        assert!(c.fetch(pid(99), &mut io).unwrap().is_none());
        assert_eq!(c.stats().lookups, 2);
    }

    #[test]
    fn conditional_enqueue_skips_clean_duplicates() {
        let mut c = meta_cache(4, 1, false);
        let mut io = IoLog::new();
        c.insert(staged(1, false, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(c.len(), 1);
        // Clean page, identical copy already cached: skipped.
        c.insert(staged(1, false, false), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().skipped_inserts, 1);
        // fdirty copy is enqueued unconditionally and invalidates the old one.
        c.insert(staged(1, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().invalidations, 1);
        assert!((c.duplicate_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dequeue_flushes_only_latest_dirty_version() {
        let mut c = meta_cache(2, 1, false);
        let mut io = IoLog::new();
        // Two versions of page 1 fill the cache; the older one is invalid.
        c.insert(staged(1, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        c.insert(staged(1, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(c.len(), 2);

        // Inserting page 2 dequeues the front slot: the *invalid* old version
        // of page 1, which must be discarded without a disk write.
        let mut io = IoLog::new();
        let out = c
            .insert(staged(2, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(io.disk_writes(), 0);
        assert!(out.staged_out.is_empty());
        assert!(c.contains(pid(1)));

        // Next insert dequeues the valid dirty version of page 1: disk write.
        let mut io = IoLog::new();
        let out = c
            .insert(staged(3, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(io.disk_writes(), 1);
        assert_eq!(out.staged_out.len(), 1);
        assert_eq!(out.staged_out[0].page, pid(1));
        assert!(!c.contains(pid(1)));
        assert_eq!(c.stats().staged_out_to_disk, 1);
    }

    #[test]
    fn clean_valid_pages_are_discarded_without_disk_write() {
        let mut c = meta_cache(2, 1, false);
        let mut io = IoLog::new();
        c.insert(staged(1, false, true), &mut NoSupplier, &mut io)
            .unwrap();
        c.insert(staged(2, false, true), &mut NoSupplier, &mut io)
            .unwrap();
        let mut io = IoLog::new();
        let out = c
            .insert(staged(3, false, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(io.disk_writes(), 0);
        assert!(out.staged_out.is_empty());
        assert!(!c.contains(pid(1)));
    }

    #[test]
    fn group_replacement_batches_io() {
        let mut c = meta_cache(16, 4, false);
        let mut io = IoLog::new();
        // Fill the cache with 16 dirty pages: writes happen in batches of 4.
        for i in 0..16 {
            c.insert(staged(i, true, true), &mut NoSupplier, &mut io)
                .unwrap();
        }
        let data_batches = io
            .events()
            .iter()
            .filter(|e| matches!(e, crate::io::FlashIoEvent::FlashWrite { pages: 4, .. }))
            .count();
        assert_eq!(data_batches, 4, "4 batches of 4 pages");
        // 16 data pages plus one small journal append per sealed group.
        assert_eq!(io.flash_pages_written(), 20);

        // The next insert triggers a group dequeue of 4 dirty pages: one
        // sequential flash read of 4 pages + 4 disk writes.
        let mut io = IoLog::new();
        c.insert(staged(100, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(io.disk_writes(), 4);
        let seq_reads: u64 = io
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::io::FlashIoEvent::FlashRead {
                    pages,
                    sequential: true,
                } => Some(*pages as u64),
                _ => None,
            })
            .sum();
        assert_eq!(seq_reads, 4);
        assert_eq!(c.len(), 13); // 16 - 4 dequeued + 1 inserted
    }

    #[test]
    fn second_chance_reenqueues_referenced_pages() {
        let mut c = meta_cache(8, 4, true);
        let mut io = IoLog::new();
        for i in 0..8 {
            c.insert(staged(i, true, true), &mut NoSupplier, &mut io)
                .unwrap();
        }
        // Reference pages 0 and 2 (they sit in the first group).
        c.fetch(pid(0), &mut io).unwrap().unwrap();
        c.fetch(pid(2), &mut io).unwrap().unwrap();

        let mut io = IoLog::new();
        let out = c
            .insert(staged(100, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        // Pages 1 and 3 (unreferenced, dirty) go to disk; 0 and 2 survive.
        assert_eq!(io.disk_writes(), 2);
        assert!(c.contains(pid(0)));
        assert!(c.contains(pid(2)));
        assert!(!c.contains(pid(1)));
        assert!(!c.contains(pid(3)));
        assert_eq!(c.stats().second_chances, 2);
        assert_eq!(out.staged_out.len(), 2);
    }

    #[test]
    fn gsc_pulls_dirty_pages_from_dram_to_fill_batch() {
        let mut c = meta_cache(8, 4, true);
        let mut io = IoLog::new();
        for i in 0..8 {
            c.insert(staged(i, true, true), &mut NoSupplier, &mut io)
                .unwrap();
        }
        // Supplier provides extra dirty pages 200, 201, ...
        let mut next = 200u32;
        let mut supplier = || {
            let s = staged(next, true, true);
            next += 1;
            Some(s)
        };
        let mut io = IoLog::new();
        c.insert(staged(100, true, true), &mut supplier, &mut io)
            .unwrap();
        assert!(c.stats().pulled_from_dram > 0);
        assert!(c.contains(pid(200)));
        // The batch written was full-sized (4 pages) in a single write.
        let max_batch = io
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::io::FlashIoEvent::FlashWrite { pages, .. } => Some(*pages),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_batch, 4);
    }

    #[test]
    fn all_referenced_group_still_makes_progress() {
        let mut c = meta_cache(4, 4, true);
        let mut io = IoLog::new();
        for i in 0..4 {
            c.insert(staged(i, true, true), &mut NoSupplier, &mut io)
                .unwrap();
        }
        for i in 0..4 {
            c.fetch(pid(i), &mut io).unwrap().unwrap();
        }
        // Every cached page is referenced; the insert must still succeed.
        let out = c
            .insert(staged(99, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert!(c.contains(pid(99)));
        // The forced-out page went to disk (it was dirty).
        assert_eq!(out.staged_out.len(), 1);
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn data_round_trips_through_mem_store() {
        let store = Arc::new(MemFlashStore::new(8));
        let mut c = MvFifoCache::new(meta_cfg(8, 1, false), store);
        let mut io = IoLog::new();
        let mut page = Page::new(pid(5));
        page.set_lsn(Lsn(42));
        page.write_body(0, b"flash resident");
        c.insert(
            StagedPage::with_data(page, true, true),
            &mut NoSupplier,
            &mut io,
        )
        .unwrap();

        let hit = c.fetch(pid(5), &mut io).unwrap().unwrap();
        let data = hit.data.expect("mem store carries data");
        assert_eq!(data.read_body(0, 14), b"flash resident");
        assert_eq!(data.lsn(), Lsn(42));
    }

    #[test]
    fn staged_out_pages_carry_data_for_disk_write() {
        let store = Arc::new(MemFlashStore::new(2));
        let mut c = MvFifoCache::new(meta_cfg(2, 1, false), store);
        let mut io = IoLog::new();
        let mut p1 = Page::new(pid(1));
        p1.write_body(0, b"v1");
        c.insert(
            StagedPage::with_data(p1, true, true),
            &mut NoSupplier,
            &mut io,
        )
        .unwrap();
        c.insert(staged(2, false, true), &mut NoSupplier, &mut io)
            .unwrap();
        // Page 1 is dequeued dirty; its data must be available for the disk
        // write the engine will perform.
        let out = c
            .insert(staged(3, false, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(out.staged_out.len(), 1);
        let data = out.staged_out[0].data.as_ref().expect("data present");
        assert_eq!(data.read_body(0, 2), b"v1");
    }

    #[test]
    fn sync_flushes_pending_batch_and_metadata() {
        let cfg = meta_cfg(64, 16, false);
        let mut c = MvFifoCache::new(cfg, Arc::new(NullFlashStore::new(64)));
        let mut io = IoLog::new();
        for i in 0..5 {
            c.insert(staged(i, true, true), &mut NoSupplier, &mut io)
                .unwrap();
        }
        // 5 < group of 16: nothing written yet.
        assert_eq!(io.flash_pages_written(), 0);
        assert_eq!(c.journal().unsealed_entries(), 5);
        let mut io = IoLog::new();
        c.sync(&mut io).unwrap();
        // Pending batch (5 pages) + its journal group seal (1 page) + the
        // cache checkpoint snapshot (1 page).
        assert_eq!(io.flash_pages_written(), 7);
        // All writes sequential.
        assert_eq!(io.flash_pages_written_random(), 0);
        assert_eq!(c.journal().unsealed_entries(), 0);
        // A clean shutdown restarts with zero journal replay.
        assert_eq!(c.journal().replay_entries(), 0);
        assert!(c.journal().checkpoint().is_some());
        // A second sync with nothing new to fold writes no second snapshot.
        assert_eq!(c.journal().stats().checkpoints_written, 1);
        let mut io = IoLog::new();
        c.sync(&mut io).unwrap();
        assert_eq!(c.journal().stats().checkpoints_written, 1);
        assert!(io.is_empty(), "idempotent sync must cost no flash I/O");
    }

    #[test]
    fn metadata_checkpointing_is_sequential_and_periodic() {
        let mut cfg = meta_cfg(1024, 1, false);
        cfg.meta_checkpoint_interval_groups = 100;
        let mut c = MvFifoCache::new(cfg, Arc::new(NullFlashStore::new(1024)));
        let mut io = IoLog::new();
        for i in 0..250 {
            c.insert(staged(i, true, true), &mut NoSupplier, &mut io)
                .unwrap();
        }
        // Group size 1: every insert seals a group; every 100 groups a cache
        // checkpoint snapshots the directory and prunes the journal.
        assert_eq!(c.journal().stats().checkpoints_written, 2);
        assert_eq!(c.journal().stats().groups_sealed, 250);
        // Replay is bounded by the cadence, not the cache's lifetime.
        assert_eq!(c.journal().replay_entries(), 50);
        assert_eq!(io.flash_pages_written_random(), 0);
    }

    #[test]
    fn recovery_restores_cache_contents_from_flash() {
        let store = Arc::new(MemFlashStore::new(64));
        let mut cfg = meta_cfg(64, 1, false);
        cfg.meta_checkpoint_interval_groups = 8;
        let mut c = MvFifoCache::new(cfg.clone(), Arc::clone(&store) as Arc<dyn FlashStore>);
        let mut io = IoLog::new();
        for i in 0..20u32 {
            let mut p = Page::new(pid(i));
            p.set_lsn(Lsn(i as u64 + 1));
            p.write_body(0, &i.to_le_bytes());
            c.insert(
                StagedPage::with_data(p, true, true),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        }
        // 20 enqueues, group size 1, checkpoint every 8 groups: two cache
        // checkpoints plus 4 sealed groups remain to replay.
        assert_eq!(c.journal().stats().checkpoints_written, 2);
        assert_eq!(c.journal().replay_entries(), 4);

        // Crash: the unsealed journal tail is lost, flash contents, the
        // checkpoint and the sealed groups survive.
        let mut survivor = c.journal().clone();
        survivor.crash();

        let mut recovery_io = IoLog::new();
        let (recovered, info) = MvFifoCache::recover(
            cfg,
            store as Arc<dyn FlashStore>,
            &survivor,
            Lsn(u64::MAX),
            &mut recovery_io,
        );
        assert!(info.checkpoint_loaded);
        assert_eq!(info.journal_records_replayed, 4);
        assert_eq!(info.entries_restored, 20);
        assert_eq!(info.entries_discarded_beyond_wal, 0);
        assert_eq!(recovered.len(), 20);
        let mut io = IoLog::new();
        let mut ok = 0;
        let mut recovered = recovered;
        for i in 0..20u32 {
            if let Some(hit) = recovered.fetch(pid(i), &mut io).unwrap() {
                let data = hit.data.unwrap();
                assert_eq!(data.read_body(0, 4), &i.to_le_bytes());
                ok += 1;
            }
        }
        assert_eq!(ok, 20, "all cached pages recoverable");
        // Recovery itself used only sequential flash reads.
        assert!(recovery_io
            .events()
            .iter()
            .all(|e| e.is_flash() && !e.is_write()));
    }

    #[test]
    fn recovery_keeps_only_latest_version() {
        let store = Arc::new(MemFlashStore::new(16));
        let cfg = meta_cfg(16, 1, false);
        let mut c = MvFifoCache::new(cfg.clone(), Arc::clone(&store) as Arc<dyn FlashStore>);
        let mut io = IoLog::new();
        let mut old = Page::new(pid(7));
        old.set_lsn(Lsn(1));
        old.write_body(0, b"old");
        c.insert(
            StagedPage::with_data(old, true, true),
            &mut NoSupplier,
            &mut io,
        )
        .unwrap();
        let mut newer = Page::new(pid(7));
        newer.set_lsn(Lsn(2));
        newer.write_body(0, b"new");
        c.insert(
            StagedPage::with_data(newer, true, true),
            &mut NoSupplier,
            &mut io,
        )
        .unwrap();

        let mut survivor = c.journal().clone();
        survivor.crash();
        let (mut recovered, _) = MvFifoCache::recover(
            cfg.clone(),
            Arc::clone(&store) as Arc<dyn FlashStore>,
            &survivor,
            Lsn(u64::MAX),
            &mut IoLog::new(),
        );
        let hit = recovered.fetch(pid(7), &mut IoLog::new()).unwrap().unwrap();
        assert_eq!(hit.lsn, Lsn(2));
        assert_eq!(hit.data.unwrap().read_body(0, 3), b"new");

        // With a durable LSN between the two versions, reconciliation
        // discards the too-new copy and the older version is served again.
        let (mut reconciled, info) = MvFifoCache::recover(
            cfg,
            store as Arc<dyn FlashStore>,
            &survivor,
            Lsn(1),
            &mut IoLog::new(),
        );
        assert_eq!(info.entries_discarded_beyond_wal, 1);
        let hit = reconciled
            .fetch(pid(7), &mut IoLog::new())
            .unwrap()
            .unwrap();
        assert_eq!(hit.lsn, Lsn(1));
        assert_eq!(hit.data.unwrap().read_body(0, 3), b"old");

        // The discard is durable: even if the (reused) LSN range later
        // becomes durable again, another crash cannot resurrect the
        // discarded version from stale persistent metadata.
        let info = reconciled.crash_and_recover(Lsn(u64::MAX), &mut IoLog::new());
        assert_eq!(info.entries_discarded_beyond_wal, 0);
        let hit = reconciled
            .fetch(pid(7), &mut IoLog::new())
            .unwrap()
            .unwrap();
        assert_eq!(hit.lsn, Lsn(1), "dead-timeline version resurrected");
    }

    #[test]
    fn rule1_discard_also_evicts_the_stale_occupant_of_a_reused_slot() {
        // Checkpoint maps slot 0 -> page A. The slot is then dequeued and
        // reused by page C (sealed, so C's bytes physically overwrite A's).
        // When recovery discards C (lsn beyond durable), it must NOT leave
        // the checkpoint's A entry pointing at a slot that now holds C's
        // bytes — A was staged out to disk at dequeue and is correct there.
        let store = Arc::new(MemFlashStore::new(2));
        let cfg = meta_cfg(2, 1, false);
        let mut c = MvFifoCache::new(cfg.clone(), Arc::clone(&store) as Arc<dyn FlashStore>);
        let mut io = IoLog::new();
        let mut a = Page::new(pid(1));
        a.set_lsn(Lsn(1));
        a.write_body(0, b"AAAA");
        c.insert(
            StagedPage::with_data(a, true, true),
            &mut NoSupplier,
            &mut io,
        )
        .unwrap();
        let mut b = Page::new(pid(2));
        b.set_lsn(Lsn(2));
        b.write_body(0, b"BBBB");
        c.insert(
            StagedPage::with_data(b, true, true),
            &mut NoSupplier,
            &mut io,
        )
        .unwrap();
        c.checkpoint_metadata(&mut io).unwrap(); // snapshot: slot0->A, slot1->B

        // C evicts A (slot 0 reused) and seals with lsn 50.
        let mut newer = Page::new(pid(3));
        newer.set_lsn(Lsn(50));
        newer.write_body(0, b"CCCC");
        c.insert(
            StagedPage::with_data(newer, true, true),
            &mut NoSupplier,
            &mut io,
        )
        .unwrap();

        let mut survivor = c.journal().clone();
        survivor.crash();
        let (mut rec, info) = MvFifoCache::recover(
            cfg,
            store as Arc<dyn FlashStore>,
            &survivor,
            Lsn(10),
            &mut IoLog::new(),
        );
        assert_eq!(info.entries_discarded_beyond_wal, 1);
        // B survives with its own bytes; neither A nor C may be served.
        assert!(!rec.contains(pid(3)), "C outran the durable log");
        assert!(
            !rec.contains(pid(1)),
            "A's slot holds C's bytes — serving it would return the wrong page"
        );
        let hit = rec.fetch(pid(2), &mut IoLog::new()).unwrap().unwrap();
        assert_eq!(hit.data.unwrap().read_body(0, 4), b"BBBB");

        // The discard is physical, not just metadata: even after durability
        // advances past C's (reused) LSN range, another recovery — whose
        // tail scan probes the empty window slot — must not resurrect C's
        // dead-timeline bytes from the flash device.
        let info = rec.crash_and_recover(Lsn(u64::MAX), &mut IoLog::new());
        assert_eq!(info.entries_discarded_beyond_wal, 0);
        assert!(
            !rec.contains(pid(3)),
            "dead-timeline version resurrected by the tail scan"
        );
        assert!(rec.contains(pid(2)));
    }

    #[test]
    fn evacuation_lists_dirty_pages_without_clearing_flags() {
        let store = Arc::new(MemFlashStore::new(8));
        let mut c = MvFifoCache::new(
            meta_cfg(8, 1, false),
            Arc::clone(&store) as Arc<dyn FlashStore>,
        );
        let mut io = IoLog::new();
        for i in 0..4u32 {
            let mut p = Page::new(pid(i));
            p.set_lsn(Lsn(i as u64 + 1));
            p.write_body(0, &i.to_le_bytes());
            c.insert(
                StagedPage::with_data(p, i % 2 == 0, true),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        }
        let first = c.evacuate_dirty(&mut io);
        assert_eq!(first.pages.len(), 2, "pages 0 and 2 are dirty");
        assert_eq!(first.unread_dirty, 0);
        assert!(first.pages.iter().all(|s| s.dirty && s.data.is_some()));
        // The flags stay set until the caller's disk writes succeed and the
        // cache is wiped: a repeated call re-lists the same pages instead of
        // silently treating them as clean.
        let second = c.evacuate_dirty(&mut io);
        assert_eq!(
            first.pages.iter().map(|s| s.page).collect::<Vec<_>>(),
            second.pages.iter().map(|s| s.page).collect::<Vec<_>>()
        );
        assert_eq!(c.valid_versions().iter().filter(|(_, _, d)| *d).count(), 2);
    }

    #[test]
    fn recovery_preserves_fifo_eviction_order() {
        let store = Arc::new(MemFlashStore::new(8));
        let cfg = meta_cfg(8, 1, false);
        let mut c = MvFifoCache::new(cfg.clone(), Arc::clone(&store) as Arc<dyn FlashStore>);
        let mut io = IoLog::new();
        for i in 0..8u32 {
            let mut p = Page::new(pid(i));
            p.set_lsn(Lsn(i as u64 + 1));
            c.insert(
                StagedPage::with_data(p, true, true),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        }
        let pre = c.valid_versions();
        let mut survivor = c.journal().clone();
        survivor.crash();
        let (mut rec, _) = MvFifoCache::recover(
            cfg,
            store as Arc<dyn FlashStore>,
            &survivor,
            Lsn(u64::MAX),
            &mut IoLog::new(),
        );
        // Same versions in the same queue order...
        assert_eq!(rec.valid_versions(), pre);
        // ...so the next replacement dequeues the same victim as it would
        // have before the crash (page 0, the queue front).
        let out = rec
            .insert(staged(100, true, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(out.staged_out[0].page, pid(0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// An arbitrary interleaving of inserts and fetches against any
        /// cache geometry preserves the structural invariants of mvFIFO:
        /// bounded occupancy, a directory that only points at valid slots
        /// holding the right page, and never a random flash write.
        fn check(ops: Vec<(u8, u32, bool)>, capacity: usize, group: usize, sc: bool) {
            let mut cache = meta_cache(capacity, group, sc);
            let mut io = IoLog::new();
            for (op, page, dirty) in ops {
                if op % 3 == 0 {
                    cache.fetch(pid(page % 64), &mut io).unwrap();
                } else {
                    cache
                        .insert(staged(page % 64, dirty, true), &mut NoSupplier, &mut io)
                        .unwrap();
                }
                assert!(cache.len() <= cache.capacity());
                for (p, s) in cache.dir.iter() {
                    let m = cache.slots[*s]
                        .as_ref()
                        .expect("directory points at a slot");
                    assert!(m.valid, "directory must reference valid versions only");
                    assert_eq!(m.page, *p);
                }
                // At most one valid version per page.
                let mut valid_pages = std::collections::HashSet::new();
                for m in cache.slots.iter().flatten() {
                    if m.valid {
                        assert!(valid_pages.insert(m.page), "duplicate valid version");
                    }
                }
            }
            assert_eq!(io.flash_pages_written_random(), 0);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn invariants_hold_for_base_face(ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<bool>()), 1..200)) {
                check(ops, 16, 1, false);
            }

            #[test]
            fn invariants_hold_for_gr_and_gsc(
                ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<bool>()), 1..200),
                group in 2usize..8,
                sc in any::<bool>(),
            ) {
                check(ops, 24, group, sc);
            }
        }

        /// Crash-point recovery property: run a recorded operation history
        /// against a data-carrying cache, crash after `crash_at` operations,
        /// recover with an arbitrary durable LSN, and check that the
        /// post-recovery directory is a prefix-consistent subset of what the
        /// history enqueued:
        ///
        /// * every recovered mapping `page -> (lsn, dirty-or-cleaner)` is a
        ///   version the pre-crash history actually enqueued;
        /// * no recovered version is newer than the pre-crash latest version
        ///   of its page;
        /// * no recovered version has an LSN beyond the durable log end.
        fn check_crash_recovery(
            ops: Vec<(u8, u32, bool)>,
            crash_at: usize,
            durable_pick: u8,
            capacity: usize,
            group: usize,
            sc: bool,
            defer: bool,
        ) {
            use std::collections::HashMap as Map;
            let store = Arc::new(MemFlashStore::new(capacity));
            let cfg = CacheConfig {
                defer_group_writes: defer,
                ..meta_cfg(capacity, group, sc)
            };
            let mut cache = MvFifoCache::new(cfg, Arc::clone(&store) as Arc<dyn FlashStore>);
            let mut io = IoLog::new();
            // Every version ever enqueued, and the latest version per page.
            let mut enqueued: std::collections::HashSet<(PageId, Lsn)> =
                std::collections::HashSet::new();
            let mut latest: Map<PageId, Lsn> = Map::new();
            let crash_at = crash_at % (ops.len() + 1);
            let mut max_lsn = 0u64;
            for (i, (op, page, dirty)) in ops.iter().take(crash_at).enumerate() {
                let lsn = Lsn(i as u64 + 1);
                let page = pid(page % 48);
                match op % 4 {
                    0 => {
                        cache.fetch(page, &mut io).unwrap();
                    }
                    1 => cache.sync(&mut io).unwrap(),
                    _ => {
                        let mut p = Page::new(page);
                        p.set_lsn(lsn);
                        let out = cache
                            .insert(
                                StagedPage::with_data(p, *dirty, true),
                                &mut NoSupplier,
                                &mut io,
                            )
                            .unwrap();
                        // Deferred pipeline: the op byte decides how far the
                        // destage of a returned group got before the crash —
                        // never started (dropped), write applied but seal
                        // lost, or fully completed. These are exactly the
                        // in-pipeline crash points.
                        if let Some(write) = out.pending_group {
                            match op % 3 {
                                0 => {} // enqueued, never written
                                1 => write.apply(&*store, &mut io).unwrap(),
                                _ => {
                                    write.apply(&*store, &mut io).unwrap();
                                    cache.complete_group(write.epoch, &mut io);
                                }
                            }
                        }
                        enqueued.insert((page, lsn));
                        latest.insert(page, lsn);
                        max_lsn = lsn.0;
                    }
                }
            }
            let durable = Lsn((durable_pick as u64) % (max_lsn + 2));
            let info = cache.crash_and_recover(durable, &mut io);
            assert!(info.survived);
            for (page, lsn, _dirty) in cache.valid_versions() {
                assert!(
                    lsn <= durable,
                    "{page}: recovered lsn {lsn:?} beyond durable {durable:?}"
                );
                assert!(
                    enqueued.contains(&(page, lsn)),
                    "{page}: recovered version {lsn:?} was never enqueued"
                );
                let newest = latest.get(&page).copied().expect("page was enqueued");
                assert!(
                    lsn <= newest,
                    "{page}: recovered {lsn:?} newer than pre-crash latest {newest:?}"
                );
            }
            // The recovered cache still honours its structural invariants
            // and keeps serving.
            assert!(cache.len() <= cache.capacity());
            for (p, s) in cache.dir.iter() {
                let m = cache.slots[*s]
                    .as_ref()
                    .expect("directory points at a slot");
                assert!(m.valid);
                assert_eq!(m.page, *p);
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn any_crash_point_recovers_a_prefix_consistent_subset(
                ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<bool>()), 1..250),
                crash_at in any::<u16>(),
                durable in any::<u8>(),
                group in 1usize..8,
                sc in any::<bool>(),
            ) {
                check_crash_recovery(ops, crash_at as usize, durable, 32, group, sc, false);
            }

            /// Same property with the asynchronous destage pipeline in every
            /// intermediate state: groups enqueued but unwritten, written
            /// but unsealed, and completed, interleaved arbitrarily.
            #[test]
            fn any_destage_crash_point_recovers_a_prefix_consistent_subset(
                ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<bool>()), 1..250),
                crash_at in any::<u16>(),
                durable in any::<u8>(),
                group in 1usize..8,
                sc in any::<bool>(),
            ) {
                check_crash_recovery(ops, crash_at as usize, durable, 32, group, sc, true);
            }
        }
    }

    mod deferred {
        use super::*;

        fn defer_cfg(capacity: usize, group: usize) -> CacheConfig {
            CacheConfig {
                defer_group_writes: true,
                ..meta_cfg(capacity, group, false)
            }
        }

        fn data_staged(n: u32, lsn: u64) -> StagedPage {
            let mut p = Page::new(pid(n));
            p.set_lsn(Lsn(lsn));
            p.write_body(0, &n.to_le_bytes());
            StagedPage::with_data(p, true, true)
        }

        #[test]
        fn filled_group_is_returned_not_written() {
            let store = Arc::new(MemFlashStore::new(16));
            let mut c = MvFifoCache::new(defer_cfg(16, 4), Arc::clone(&store) as _);
            let mut io = IoLog::new();
            let mut pending = None;
            for n in 0..4u32 {
                let out = c
                    .insert(data_staged(n, n as u64 + 1), &mut NoSupplier, &mut io)
                    .unwrap();
                if out.pending_group.is_some() {
                    pending = out.pending_group;
                }
            }
            // The foreground performed no device I/O at all: the insert only
            // mutated the directory and handed the batch back.
            assert!(io.is_empty(), "deferred insert must charge no I/O");
            assert_eq!(store.occupied(), 0, "no bytes reached the store");
            let write = pending.expect("fourth insert fills the group");
            assert_eq!(write.pages.len(), 4);
            assert_eq!(write.meta_records.len(), 4);
            assert_eq!(c.journal().unsealed_entries(), 0, "records detached");
            assert_eq!(c.journal().sealed_groups(), 0, "but not yet durable");

            // Fetches of in-flight versions are served from the shared RAM
            // frames — the foreground never waits for the batch write.
            let hit = c
                .fetch(pid(2), &mut io)
                .unwrap()
                .expect("in-flight page served");
            assert_eq!(hit.data.unwrap().read_body(0, 4), &2u32.to_le_bytes());

            // The caller applies the batch off-lock, then seals it.
            let mut apply_io = IoLog::new();
            write.apply(&*store, &mut apply_io).unwrap();
            assert_eq!(apply_io.flash_pages_written(), 4);
            assert_eq!(store.occupied(), 4);
            c.complete_group(write.epoch, &mut apply_io);
            assert_eq!(c.journal().sealed_groups(), 1);
            // Completion is idempotent.
            c.complete_group(write.epoch, &mut apply_io);
            assert_eq!(c.journal().sealed_groups(), 1);
        }

        #[test]
        fn completions_seal_in_epoch_order() {
            let store = Arc::new(MemFlashStore::new(32));
            let mut c = MvFifoCache::new(defer_cfg(32, 2), Arc::clone(&store) as _);
            let mut io = IoLog::new();
            let mut groups = Vec::new();
            for n in 0..6u32 {
                let out = c
                    .insert(data_staged(n, n as u64 + 1), &mut NoSupplier, &mut io)
                    .unwrap();
                groups.extend(out.pending_group);
            }
            assert_eq!(groups.len(), 3);
            // Complete the *youngest* group first: nothing may seal until the
            // older ones complete, or replay order (and §4.3) would break.
            for g in &groups {
                g.apply(&*store, &mut io).unwrap();
            }
            c.complete_group(groups[2].epoch, &mut io);
            assert_eq!(c.journal().sealed_groups(), 0);
            c.complete_group(groups[0].epoch, &mut io);
            assert_eq!(c.journal().sealed_groups(), 1);
            c.complete_group(groups[1].epoch, &mut io);
            assert_eq!(c.journal().sealed_groups(), 3);
            let rec = c.journal().recover(&mut IoLog::new());
            let epochs: Vec<u64> = rec.entries.iter().map(|e| e.epoch).collect();
            let mut sorted = epochs.clone();
            sorted.sort_unstable();
            assert_eq!(epochs, sorted, "replay must be epoch-ordered");
        }

        #[test]
        fn crash_with_group_enqueued_but_unwritten_loses_it_consistently() {
            // Crash point 1: the group left the foreground but its batch
            // write never ran. Data and metadata die together — recovery
            // sees neither.
            let store = Arc::new(MemFlashStore::new(16));
            let mut c = MvFifoCache::new(defer_cfg(16, 4), Arc::clone(&store) as _);
            let mut io = IoLog::new();
            let mut pending = None;
            for n in 0..4u32 {
                let out = c
                    .insert(data_staged(n, n as u64 + 1), &mut NoSupplier, &mut io)
                    .unwrap();
                if out.pending_group.is_some() {
                    pending = out.pending_group;
                }
            }
            assert!(pending.is_some());
            let info = c.crash_and_recover(Lsn(u64::MAX), &mut IoLog::new());
            assert!(info.survived);
            assert_eq!(info.entries_restored, 0, "unwritten group fully lost");
            for n in 0..4u32 {
                assert!(!c.contains(pid(n)));
            }
        }

        #[test]
        fn crash_with_write_done_but_seal_pending_readmits_only_reconciled() {
            // Crash point 2: the batch hit the device but the journal seal
            // never happened. The journal does not reference the slots; when
            // the durable queue pointers cover them (a cadence checkpoint
            // fired after an older group sealed), the bounded tail scan may
            // re-admit them from page headers — but only under the WAL
            // reconciliation rule.
            let store = Arc::new(MemFlashStore::new(16));
            let cfg = CacheConfig {
                meta_checkpoint_interval_groups: 1,
                ..defer_cfg(16, 2)
            };
            let mut c = MvFifoCache::new(cfg, Arc::clone(&store) as _);
            let mut io = IoLog::new();
            let mut groups = Vec::new();
            for n in 0..4u32 {
                let out = c
                    .insert(data_staged(n, 10 + n as u64), &mut NoSupplier, &mut io)
                    .unwrap();
                groups.extend(out.pending_group);
            }
            assert_eq!(groups.len(), 2);
            // Group 1 (pages 0,1) fully destages; its completion installs a
            // cadence checkpoint whose pointers cover all four slots. Group 2
            // (pages 2,3) hits the device but its seal is lost in the crash.
            groups[0].apply(&*store, &mut io).unwrap();
            c.complete_group(groups[0].epoch, &mut io);
            groups[1].apply(&*store, &mut io).unwrap();
            // Durable LSN 12 covers pages 0..=2; the header scan may re-admit
            // page 2 but must discard page 3 (lsn 13).
            let info = c.crash_and_recover(Lsn(12), &mut IoLog::new());
            assert!(info.survived);
            assert!(info.pages_scanned > 0, "tail scan probed the slots");
            for (page, lsn, _) in c.valid_versions() {
                assert!(lsn <= Lsn(12), "{page} outran the durable log");
            }
            assert!(c.contains(pid(0)) && c.contains(pid(1)), "sealed group");
            assert!(c.contains(pid(2)), "scan re-admitted the covered page");
            assert!(!c.contains(pid(3)), "scan must respect the durable LSN");
        }

        #[test]
        fn sync_applies_and_seals_outstanding_groups_inline() {
            let store = Arc::new(MemFlashStore::new(16));
            let mut c = MvFifoCache::new(defer_cfg(16, 4), Arc::clone(&store) as _);
            let mut io = IoLog::new();
            for n in 0..5u32 {
                c.insert(data_staged(n, n as u64 + 1), &mut NoSupplier, &mut io)
                    .unwrap();
                // The pending group is deliberately "leaked": sync is the
                // safety net for callers that never drained it.
            }
            c.sync(&mut io).unwrap();
            assert_eq!(store.occupied(), 5, "group + partial batch written");
            assert_eq!(c.journal().replay_entries(), 0, "checkpoint folded all");
            let info = c.crash_and_recover(Lsn(u64::MAX), &mut IoLog::new());
            assert_eq!(info.entries_restored, 5);
        }

        #[test]
        fn cadence_checkpoint_never_references_unwritten_groups() {
            // Group 1 completes while groups 2..N are still in flight; the
            // cadence checkpoint (interval 1) fires at the completion and
            // must exclude the in-flight entries — their bytes are not on
            // flash, and a crash would otherwise serve garbage.
            let store = Arc::new(MemFlashStore::new(32));
            let cfg = CacheConfig {
                meta_checkpoint_interval_groups: 1,
                ..defer_cfg(32, 2)
            };
            let mut c = MvFifoCache::new(cfg, Arc::clone(&store) as _);
            let mut io = IoLog::new();
            let mut groups = Vec::new();
            for n in 0..6u32 {
                let out = c
                    .insert(data_staged(n, n as u64 + 1), &mut NoSupplier, &mut io)
                    .unwrap();
                groups.extend(out.pending_group);
            }
            // Apply and seal only the first group; 2 and 3 stay in flight.
            groups[0].apply(&*store, &mut io).unwrap();
            c.complete_group(groups[0].epoch, &mut io);
            let ckpt = c.journal().checkpoint().expect("cadence fired");
            assert_eq!(ckpt.entries.len(), 2, "only the sealed group's pages");
            // Crash: in-flight groups vanish; the checkpoint must not
            // resurrect their entries.
            let info = c.crash_and_recover(Lsn(u64::MAX), &mut IoLog::new());
            assert_eq!(info.entries_restored, 2);
            assert!(c.contains(pid(0)) && c.contains(pid(1)));
            for n in 2..6u32 {
                assert!(!c.contains(pid(n)), "page {n} resurrected unwritten");
            }
        }

        #[test]
        fn dequeue_of_inflight_slot_carries_its_ram_frame() {
            // A 4-slot cache with group 4: the first group is in flight when
            // the next inserts force a dequeue of its slots. The staged-out
            // dirty pages must carry data from the shared RAM frames (the
            // store has nothing yet).
            let store = Arc::new(MemFlashStore::new(4));
            let mut c = MvFifoCache::new(defer_cfg(4, 4), Arc::clone(&store) as _);
            let mut io = IoLog::new();
            let mut groups = Vec::new();
            for n in 0..4u32 {
                let out = c
                    .insert(data_staged(n, n as u64 + 1), &mut NoSupplier, &mut io)
                    .unwrap();
                groups.extend(out.pending_group);
            }
            assert_eq!(groups.len(), 1);
            // Group 1 not applied yet; the next insert dequeues its slots.
            let out = c
                .insert(data_staged(100, 100), &mut NoSupplier, &mut io)
                .unwrap();
            assert_eq!(out.staged_out.len(), 4, "all four were dirty+valid");
            for s in &out.staged_out {
                let data = s.data.as_ref().expect("RAM frame travels along");
                assert_eq!(data.id(), s.page);
            }
        }
    }

    #[test]
    fn capacity_invariant_under_random_workload() {
        let mut c = meta_cache(32, 8, true);
        let mut io = IoLog::new();
        let mut rng: u64 = 0x12345;
        for i in 0..2000u32 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = (rng >> 16) as u32 % 200;
            if rng.is_multiple_of(3) {
                c.fetch(pid(page), &mut io).unwrap();
            } else {
                c.insert(
                    staged(page, rng.is_multiple_of(2), true),
                    &mut NoSupplier,
                    &mut io,
                )
                .unwrap();
            }
            assert!(c.len() <= c.capacity(), "overflow at step {i}");
            // The directory never points at an invalid slot.
            for (p, s) in c.dir.iter() {
                let m = c.slots[*s].as_ref().expect("directory points at a slot");
                assert!(m.valid);
                assert_eq!(m.page, *p);
            }
        }
        // Writes to flash are never random under mvFIFO.
        assert_eq!(io.flash_pages_written_random(), 0);
        assert!(c.stats().hits > 0);
        assert!(c.stats().staged_out > 0);
    }
}
