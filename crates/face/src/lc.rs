//! The Lazy Cleaning (LC) baseline [Do et al., SIGMOD 2011] as described in
//! the paper's §2.3 and §5.
//!
//! LC caches pages on exit from the DRAM buffer with a write-back policy —
//! the same "when" and "sync" choices as FaCE — but manages the flash cache
//! with LRU-2 replacement and keeps exactly one copy per page, overwriting it
//! in place. Every admission or replacement therefore costs a *random* flash
//! write, which is what saturates the flash device in the paper's Table 4.
//! A lazy cleaner flushes cold dirty pages to disk in the background once the
//! dirty fraction exceeds a threshold.
//!
//! Because LC provides no mechanism for making the flash-resident dirty pages
//! part of the persistent database, checkpoints must write them to disk
//! ([`FlashCache::drain_dirty_for_checkpoint`]).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use face_pagestore::{DeviceResult, Lsn, PageId};

use crate::io::IoLog;
use crate::policy::{FlashCache, PageSupplier};
use crate::store::FlashStore;
use crate::types::{
    CacheConfig, CacheRecoveryInfo, CacheStatCounters, CacheStats, Evacuation, FetchPin,
    FlashFetch, InsertOutcome, QuarantineOutcome, SlotGenerations, StagedPage,
};

#[derive(Debug, Clone, Copy)]
struct LcMeta {
    slot: usize,
    lsn: Lsn,
    dirty: bool,
    /// Most recent and second most recent access times (logical clock).
    last: u64,
    penultimate: u64,
}

/// The LC flash cache.
pub struct LcCache {
    config: CacheConfig,
    store: Arc<dyn FlashStore>,
    map: HashMap<PageId, LcMeta>,
    /// Victim order for LRU-2: pages keyed by (penultimate access, last
    /// access, page). A page referenced only once has penultimate = 0 and is
    /// evicted before any page with two references, as LRU-2 prescribes.
    victim_order: BTreeSet<(u64, u64, PageId)>,
    free_slots: Vec<usize>,
    clock: u64,
    dirty_count: usize,
    /// Per-slot version counters for the lock-light fetch protocol. LC
    /// overwrites slots **in place**, so the counter bumps on every slot
    /// write (admission and refresh), not only on reuse: an off-lock reader
    /// racing an in-place overwrite must discard its read and retry.
    generations: SlotGenerations,
    /// Slots removed from rotation after repeated device failures. RAM-only:
    /// a restart clears the set and retries the slots fresh (persistent
    /// faults simply re-quarantine). A quarantined slot never re-enters
    /// `free_slots`, so LC's usable capacity shrinks by one per entry.
    quarantined: HashSet<usize>,
    /// Dirty pages diverted to disk when an inline flash write failed. The
    /// concurrent wrapper drains this via [`FlashCache::take_write_fallout`]
    /// and routes the pages to the disk store WAL-guarded.
    write_fallout: Vec<StagedPage>,
    stats: CacheStatCounters,
}

impl LcCache {
    /// Create an LC cache over `store`.
    pub fn new(config: CacheConfig, store: Arc<dyn FlashStore>) -> Self {
        assert!(config.capacity_pages > 0, "flash cache needs capacity");
        assert!(
            store.capacity() >= config.capacity_pages,
            "flash store smaller than configured capacity"
        );
        let free_slots = (0..config.capacity_pages).rev().collect();
        let generations = SlotGenerations::new(config.capacity_pages);
        Self {
            config,
            store,
            map: HashMap::new(),
            victim_order: BTreeSet::new(),
            free_slots,
            clock: 0,
            dirty_count: 0,
            generations,
            quarantined: HashSet::new(),
            write_fallout: Vec::new(),
            stats: CacheStatCounters::default(),
        }
    }

    fn bump_generation(&mut self, slot: usize) {
        self.generations.bump(slot);
    }

    /// Current fraction of cached pages that are dirty.
    pub fn dirty_fraction(&self) -> f64 {
        if self.map.is_empty() {
            0.0
        } else {
            self.dirty_count as f64 / self.map.len() as f64
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn bump(&mut self, page: PageId) {
        let now = self.tick();
        if let Some(meta) = self.map.get_mut(&page) {
            let old_key = (meta.penultimate, meta.last, page);
            meta.penultimate = meta.last;
            meta.last = now;
            self.victim_order.remove(&old_key);
            self.victim_order
                .insert((meta.penultimate, meta.last, page));
        }
    }

    fn remove_entry(&mut self, page: PageId) -> Option<LcMeta> {
        let meta = self.map.remove(&page)?;
        self.victim_order
            .remove(&(meta.penultimate, meta.last, page));
        if meta.dirty {
            self.dirty_count -= 1;
        }
        self.bump_generation(meta.slot);
        self.free_slots.push(meta.slot);
        Some(meta)
    }

    /// Evict the LRU-2 victim, returning its stage-out (if it was dirty).
    ///
    /// A dirty victim is read back out of flash *before* any bookkeeping is
    /// touched, so a device read error aborts the eviction with the cache
    /// unchanged — the victim stays cached and dirty.
    fn evict_victim(&mut self, io: &mut IoLog) -> DeviceResult<Option<StagedPage>> {
        let Some(&(_, _, victim)) = self.victim_order.iter().next() else {
            return Ok(None);
        };
        let meta = *self.map.get(&victim).expect("victim is cached");
        let frame = if meta.dirty {
            // Reading the page back out of flash and writing it to disk are
            // both random operations.
            io.flash_read_rand(1);
            self.store.read_slot(meta.slot)?
        } else {
            None
        };
        self.remove_entry(victim).expect("victim is cached");
        self.stats.staged_out.inc();
        if meta.dirty {
            io.disk_write(victim);
            self.stats.staged_out_to_disk.inc();
            Ok(Some(StagedPage {
                page: victim,
                lsn: meta.lsn,
                dirty: true,
                fdirty: false,
                data: frame.map(Arc::new),
            }))
        } else {
            Ok(None)
        }
    }

    /// Route a dirty page whose flash write failed to the disk side: charge
    /// the disk write and park the page in the write-fallout buffer for the
    /// caller to drain ([`FlashCache::take_write_fallout`]) and persist
    /// WAL-guarded.
    fn divert_to_fallout(&mut self, staged: StagedPage, io: &mut IoLog) {
        io.disk_write(staged.page);
        self.stats.staged_out_to_disk.inc();
        self.write_fallout.push(StagedPage {
            dirty: true,
            fdirty: false,
            ..staged
        });
    }

    /// The background lazy cleaner: once the dirty fraction exceeds the
    /// threshold, flush the coldest dirty pages to disk until the target
    /// fraction is reached. Returns the cleaned pages so the engine can write
    /// them to the disk store in data-carrying mode.
    fn lazy_clean(&mut self, io: &mut IoLog) -> Vec<StagedPage> {
        let mut cleaned = Vec::new();
        if self.dirty_fraction() <= self.config.lc_dirty_threshold {
            return cleaned;
        }
        let target = (self.config.lc_clean_target * self.map.len() as f64).floor() as usize;
        // Coldest-first order is exactly the victim order.
        let order: Vec<PageId> = self.victim_order.iter().map(|&(_, _, p)| p).collect();
        for page in order {
            if self.dirty_count <= target {
                break;
            }
            let Some(meta) = self.map.get(&page) else {
                continue;
            };
            if !meta.dirty {
                continue;
            }
            let (slot, lsn) = (meta.slot, meta.lsn);
            io.flash_read_rand(1);
            // The cleaner is best-effort background work: a page whose slot
            // cannot be read is simply skipped and stays dirty — the
            // checkpoint drain (or a later retry) will surface the error,
            // and the degrade controller quarantines the slot on repeats.
            let Ok(frame) = self.store.read_slot(slot) else {
                continue;
            };
            let meta = self.map.get_mut(&page).expect("still cached");
            meta.dirty = false;
            self.dirty_count -= 1;
            self.stats.lazily_cleaned.inc();
            io.disk_write(page);
            cleaned.push(StagedPage {
                page,
                lsn,
                dirty: true,
                fdirty: false,
                data: frame.map(Arc::new),
            });
        }
        cleaned
    }
}

impl FlashCache for LcCache {
    fn policy_name(&self) -> &'static str {
        "LC"
    }

    fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn fetch(&mut self, page: PageId, io: &mut IoLog) -> DeviceResult<Option<FlashFetch>> {
        self.stats.lookups.inc();
        let Some(meta) = self.map.get(&page).copied() else {
            return Ok(None);
        };
        self.stats.hits.inc();
        self.bump(page);
        io.flash_read_rand(1);
        Ok(Some(FlashFetch {
            data: self.store.read_slot(meta.slot)?,
            dirty: meta.dirty,
            lsn: meta.lsn,
        }))
    }

    fn fetch_pin(&mut self, page: PageId, retry: bool, io: &mut IoLog) -> Option<FetchPin> {
        if retry {
            self.stats.fetch_retries.inc();
        } else {
            self.stats.lookups.inc();
        }
        let meta = *self.map.get(&page)?;
        if !retry {
            self.stats.hits.inc();
        }
        self.bump(page);
        io.flash_read_rand(1);
        Some(FetchPin {
            slot: meta.slot,
            lsn: meta.lsn,
            dirty: meta.dirty,
            generation: self.generations.current(meta.slot),
            frame: None,
            data_expected: true,
        })
    }

    fn fetch_validate(&self, slot: usize, generation: u64) -> bool {
        self.generations.check(slot, generation)
    }

    fn insert(
        &mut self,
        staged: StagedPage,
        _supplier: &mut dyn PageSupplier,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        self.stats.inserts.inc();
        if staged.dirty {
            self.stats.dirty_inserts.inc();
        }
        let mut outcome = InsertOutcome {
            cached: true,
            ..Default::default()
        };

        if let Some(meta) = self.map.get_mut(&staged.page) {
            // Single-copy design: overwrite the existing copy in place.
            let became_dirty = staged.dirty && !meta.dirty;
            let was_dirty = meta.dirty;
            meta.dirty |= staged.dirty;
            meta.lsn = staged.lsn;
            if became_dirty {
                self.dirty_count += 1;
            }
            let slot = meta.slot;
            io.flash_write_rand(1);
            self.bump_generation(slot);
            if let Some(data) = &staged.data {
                if let Err(e) = self.store.write_slot(slot, data) {
                    // The in-place overwrite may have torn the only flash
                    // copy, so the entry cannot stay cached. Drop it, free
                    // the slot (the degrade controller quarantines it on
                    // repeats), and divert the freshest version to disk.
                    self.remove_entry(staged.page);
                    if was_dirty || staged.dirty {
                        self.divert_to_fallout(staged, io);
                    }
                    return Err(e);
                }
            }
            self.bump(staged.page);
            self.stats.cached_inserts.inc();
        } else {
            // Admit a new page, evicting the LRU-2 victim if full.
            if self.free_slots.is_empty() {
                if let Some(out) = self.evict_victim(io)? {
                    outcome.staged_out.push(out);
                }
            }
            let Some(slot) = self.free_slots.pop() else {
                // Every slot is quarantined: serve the page through to disk
                // instead of caching it.
                outcome.cached = false;
                if staged.dirty {
                    io.disk_write(staged.page);
                    self.stats.staged_out_to_disk.inc();
                    outcome.staged_out.push(staged);
                }
                return Ok(outcome);
            };
            io.flash_write_rand(1);
            self.bump_generation(slot);
            if let Some(data) = &staged.data {
                if let Err(e) = self.store.write_slot(slot, data) {
                    // Nothing was mapped yet: return the slot to rotation
                    // and divert the page to disk if it carried updates.
                    self.free_slots.push(slot);
                    if staged.dirty {
                        self.divert_to_fallout(staged, io);
                    }
                    return Err(e);
                }
            }
            let now = self.tick();
            self.map.insert(
                staged.page,
                LcMeta {
                    slot,
                    lsn: staged.lsn,
                    dirty: staged.dirty,
                    last: now,
                    penultimate: 0,
                },
            );
            self.victim_order.insert((0, now, staged.page));
            if staged.dirty {
                self.dirty_count += 1;
            }
            self.stats.cached_inserts.inc();
        }

        // Background lazy cleaning.
        let cleaned = self.lazy_clean(io);
        outcome.staged_out.extend(cleaned);
        Ok(outcome)
    }

    fn sync(&mut self, _io: &mut IoLog) -> DeviceResult<()> {
        // LC has no buffered batch; nothing to do.
        Ok(())
    }

    fn take_write_fallout(&mut self) -> Vec<StagedPage> {
        std::mem::take(&mut self.write_fallout)
    }

    fn drain_dirty_for_checkpoint(&mut self, io: &mut IoLog) -> DeviceResult<Vec<StagedPage>> {
        let dirty_pages: Vec<PageId> = self
            .map
            .iter()
            .filter(|(_, m)| m.dirty)
            .map(|(p, _)| *p)
            .collect();
        let mut out: Vec<StagedPage> = Vec::with_capacity(dirty_pages.len());
        for page in dirty_pages {
            let meta = self.map.get(&page).expect("still cached");
            let (slot, lsn) = (meta.slot, meta.lsn);
            io.flash_read_rand(1);
            let frame = match self.store.read_slot(slot) {
                Ok(f) => f,
                Err(e) => {
                    // Re-dirty the pages already drained this call: the
                    // caller drops `out` on error, and a cleared flag would
                    // let a retried checkpoint treat them as safe to skip.
                    for undone in out {
                        let meta = self.map.get_mut(&undone.page).expect("still cached");
                        meta.dirty = true;
                        self.dirty_count += 1;
                    }
                    return Err(e);
                }
            };
            let meta = self.map.get_mut(&page).expect("still cached");
            meta.dirty = false;
            self.dirty_count -= 1;
            io.disk_write(page);
            out.push(StagedPage {
                page,
                lsn,
                dirty: true,
                fdirty: false,
                data: frame.map(Arc::new),
            });
        }
        Ok(out)
    }

    fn evacuate_dirty(&mut self, io: &mut IoLog) -> Evacuation {
        // Like the checkpoint drain, but without clearing the dirty flags:
        // the caller's disk writes may fail, and a cleared flag would let a
        // retry treat the page as safe to drop (see the trait contract).
        let mut ev = Evacuation::default();
        ev.pages.append(&mut self.write_fallout);
        for (page, meta) in &self.map {
            if !meta.dirty {
                continue;
            }
            io.flash_read_rand(1);
            let frame = match self.store.read_slot(meta.slot) {
                Ok(f) => f,
                Err(_) if self.store.carries_data() => {
                    // The only copy of this dirty page is unreadable; emit a
                    // data-less marker so the caller can block stale disk
                    // serves of it until WAL redo rebuilds the page.
                    ev.unread_dirty += 1;
                    ev.pages.push(StagedPage {
                        page: *page,
                        lsn: meta.lsn,
                        dirty: true,
                        fdirty: false,
                        data: None,
                    });
                    continue;
                }
                Err(_) => None,
            };
            io.disk_write(*page);
            ev.pages.push(StagedPage {
                page: *page,
                lsn: meta.lsn,
                dirty: true,
                fdirty: false,
                data: frame.map(Arc::new),
            });
        }
        ev
    }

    fn quarantine_slot(&mut self, slot: usize, io: &mut IoLog) -> QuarantineOutcome {
        let mut out = QuarantineOutcome::default();
        if slot >= self.config.capacity_pages || !self.quarantined.insert(slot) {
            return out;
        }
        out.quarantined = true;
        self.bump_generation(slot);
        // Whether free or occupied, the slot leaves rotation for good (until
        // a restart or a heal clears the RAM-only tombstone set).
        self.free_slots.retain(|&s| s != slot);
        let Some((&page, &meta)) = self.map.iter().find(|(_, m)| m.slot == slot) else {
            return out;
        };
        // Remove the resident without returning its slot to the free list.
        self.map.remove(&page);
        self.victim_order
            .remove(&(meta.penultimate, meta.last, page));
        if meta.dirty {
            self.dirty_count -= 1;
        }
        out.removed = Some(page);
        if !meta.dirty {
            // A clean resident is simply dropped; the next fetch misses to
            // disk, which still has the authoritative copy.
            return out;
        }
        // Dirty resident: LC keeps the only copy on the (failing) flash
        // slot. Try to read it back one last time.
        io.flash_read_rand(1);
        let frame = match self.store.read_slot(slot) {
            Ok(f) => f,
            Err(_) if self.store.carries_data() => {
                // Bytes lost: hand back a data-less evacuee so the caller
                // can block stale disk serves until WAL redo rebuilds it.
                out.dirty_unread = true;
                out.evacuee = Some(StagedPage {
                    page,
                    lsn: meta.lsn,
                    dirty: true,
                    fdirty: false,
                    data: None,
                });
                return out;
            }
            Err(_) => None,
        };
        io.disk_write(page);
        self.stats.staged_out_to_disk.inc();
        out.evacuee = Some(StagedPage {
            page,
            lsn: meta.lsn,
            dirty: true,
            fdirty: false,
            data: frame.map(Arc::new),
        });
        out
    }

    fn persists_dirty_pages(&self) -> bool {
        false
    }

    fn crash_and_recover(&mut self, _durable_lsn: Lsn, _io: &mut IoLog) -> CacheRecoveryInfo {
        // LC keeps no persistent metadata: after a crash the flash-resident
        // copies are unreachable and the cache restarts cold (paper §4.1).
        // Quarantine tombstones are RAM-only and clear with the restart —
        // persistently bad slots get re-quarantined by fresh failures.
        self.map.clear();
        self.victim_order.clear();
        self.free_slots = (0..self.config.capacity_pages).rev().collect();
        self.dirty_count = 0;
        self.quarantined.clear();
        self.write_fallout.clear();
        CacheRecoveryInfo::default()
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn capacity(&self) -> usize {
        self.config.capacity_pages
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoSupplier;
    use crate::store::NullFlashStore;

    fn pid(n: u32) -> PageId {
        PageId::new(0, n)
    }

    fn staged(n: u32, dirty: bool) -> StagedPage {
        StagedPage::meta_only(pid(n), Lsn(n as u64), dirty, dirty)
    }

    fn cache(capacity: usize) -> LcCache {
        let cfg = CacheConfig {
            capacity_pages: capacity,
            lc_dirty_threshold: 2.0, // unreachable: the cleaner never runs in these tests
            lc_clean_target: 0.5,
            ..CacheConfig::default()
        };
        LcCache::new(cfg, Arc::new(NullFlashStore::new(capacity)))
    }

    #[test]
    fn single_copy_overwrite_in_place() {
        let mut c = cache(4);
        let mut io = IoLog::new();
        c.insert(staged(1, false), &mut NoSupplier, &mut io)
            .unwrap();
        c.insert(staged(1, true), &mut NoSupplier, &mut io).unwrap();
        assert_eq!(c.len(), 1, "LC keeps one copy per page");
        // Both writes are random flash writes.
        assert_eq!(io.flash_pages_written_random(), 2);
        assert!((c.dirty_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fetch_hits_and_misses() {
        let mut c = cache(4);
        let mut io = IoLog::new();
        c.insert(staged(1, true), &mut NoSupplier, &mut io).unwrap();
        assert!(c.fetch(pid(1), &mut io).unwrap().unwrap().dirty);
        assert!(c.fetch(pid(2), &mut io).unwrap().is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().lookups, 2);
    }

    #[test]
    fn lru2_prefers_single_reference_victims() {
        let mut c = cache(3);
        let mut io = IoLog::new();
        c.insert(staged(1, false), &mut NoSupplier, &mut io)
            .unwrap();
        c.insert(staged(2, false), &mut NoSupplier, &mut io)
            .unwrap();
        c.insert(staged(3, false), &mut NoSupplier, &mut io)
            .unwrap();
        // Page 1 gets a second reference (older than page 2's first), page 2
        // and 3 have only one. LRU-2 evicts among single-reference pages
        // first, oldest first: page 2.
        c.fetch(pid(1), &mut io).unwrap().unwrap();
        c.insert(staged(4, false), &mut NoSupplier, &mut io)
            .unwrap();
        assert!(c.contains(pid(1)));
        assert!(!c.contains(pid(2)));
        assert!(c.contains(pid(3)));
        assert!(c.contains(pid(4)));
    }

    #[test]
    fn dirty_eviction_goes_to_disk() {
        let mut c = cache(2);
        let mut io = IoLog::new();
        c.insert(staged(1, true), &mut NoSupplier, &mut io).unwrap();
        c.insert(staged(2, false), &mut NoSupplier, &mut io)
            .unwrap();
        let mut io = IoLog::new();
        let out = c
            .insert(staged(3, false), &mut NoSupplier, &mut io)
            .unwrap();
        // Page 1 (oldest, dirty) is evicted: flash read + disk write.
        assert_eq!(io.disk_writes(), 1);
        assert_eq!(out.staged_out.len(), 1);
        assert_eq!(out.staged_out[0].page, pid(1));
        assert_eq!(c.stats().staged_out_to_disk, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = cache(1);
        let mut io = IoLog::new();
        c.insert(staged(1, false), &mut NoSupplier, &mut io)
            .unwrap();
        let mut io = IoLog::new();
        let out = c
            .insert(staged(2, false), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(io.disk_writes(), 0);
        assert!(out.staged_out.is_empty());
    }

    #[test]
    fn lazy_cleaner_kicks_in_above_threshold() {
        let cfg = CacheConfig {
            capacity_pages: 10,
            lc_dirty_threshold: 0.5,
            lc_clean_target: 0.2,
            ..CacheConfig::default()
        };
        let mut c = LcCache::new(cfg, Arc::new(NullFlashStore::new(10)));
        let mut io = IoLog::new();
        for i in 0..8 {
            c.insert(staged(i, true), &mut NoSupplier, &mut io).unwrap();
        }
        // 8/8 dirty > 0.5 threshold -> cleaner runs down to 20%.
        assert!(c.dirty_fraction() <= 0.5);
        assert!(c.stats().lazily_cleaned > 0);
        assert!(io.disk_writes() > 0);
        // Cleaned pages stay cached (clean), so the cache still contains them.
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn checkpoint_drains_dirty_pages_to_disk() {
        let mut c = cache(8);
        let mut io = IoLog::new();
        for i in 0..5 {
            c.insert(staged(i, i % 2 == 0), &mut NoSupplier, &mut io)
                .unwrap();
        }
        assert!(!c.persists_dirty_pages());
        let mut ckpt_io = IoLog::new();
        let drained = c.drain_dirty_for_checkpoint(&mut ckpt_io).unwrap();
        assert_eq!(drained.len(), 3); // pages 0, 2, 4
        assert_eq!(ckpt_io.disk_writes(), 3);
        assert!((c.dirty_fraction() - 0.0).abs() < 1e-9);
        // Second drain is free.
        assert!(c
            .drain_dirty_for_checkpoint(&mut ckpt_io)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn all_flash_writes_are_random() {
        let mut c = cache(16);
        let mut io = IoLog::new();
        for i in 0..100 {
            c.insert(staged(i % 30, i % 2 == 0), &mut NoSupplier, &mut io)
                .unwrap();
        }
        assert_eq!(io.flash_pages_written(), io.flash_pages_written_random());
        assert!(c.len() <= c.capacity());
    }
}
