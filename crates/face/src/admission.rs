//! Ghost-queue admission filtering (ISSUE 7 / ROADMAP item 2).
//!
//! FaCE buys its throughput with flash writes: every DRAM eviction is a page
//! program, including pages that will never be referenced again. WLFC and
//! Flashield both show the highest-leverage wear lever is *admission* — never
//! pay a flash write for a one-touch page. The mechanism is a **ghost
//! directory**: a bounded FIFO of recently rejected page ids, holding no
//! data. A clean page's first touch is recorded only there; if the id is
//! re-referenced while its ghost entry is live, the page has proven it is no
//! one-hit wonder and the re-reference earns the flash write.
//!
//! Two consumers share the [`GhostQueue`] core:
//!
//! * [`SharedGhost`] — a lock-striped filter applied by
//!   [`crate::ShardedFlashCache`] in front of the legacy policies (mvFIFO
//!   family, LC, TAC) when [`crate::CacheConfig::ghost_admission`] is set.
//!   Its stripes rank `ghost_admission` in the lock order: strictly inside
//!   the cache shard, device I/O forbidden while held.
//! * [`crate::s3fifo::S3FifoCache`] — owns a `GhostQueue` outright (under its
//!   shard lock) as the third queue of the S3-FIFO policy.
//!
//! The ghost directory is deliberately **RAM-only**: it is an admission
//! heuristic, not cache metadata. After a crash it restarts empty — the worst
//! case is a few re-filtered first touches, never a correctness problem.
//!
//! ```
//! use face_cache::GhostQueue;
//! use face_pagestore::PageId;
//!
//! let mut ghost = GhostQueue::new(4);
//! let page = PageId::new(0, 7);
//! // First touch: recorded in the ghost only — no flash write is paid.
//! assert!(!ghost.admit_or_record(page));
//! assert!(ghost.contains(page));
//! // Re-reference while the ghost entry is live: the write is earned, and
//! // the entry is consumed (a third touch of an uncached page starts over).
//! assert!(ghost.admit_or_record(page));
//! assert!(!ghost.contains(page));
//! ```

use std::collections::{HashMap, VecDeque};

use face_analysis::classes::GHOST_ADMISSION;
use face_analysis::OrderedMutex;
use face_pagestore::PageId;

/// A bounded FIFO of page ids with O(1) membership, insertion and logical
/// removal. Eviction is lazy: removing an id only drops it from the index;
/// the queue entry is skipped when it surfaces at the front.
#[derive(Debug, Default)]
pub struct GhostQueue {
    /// Insertion order: (sequence, page). Stale entries — whose sequence no
    /// longer matches the index — are skipped during eviction.
    queue: VecDeque<(u64, PageId)>,
    /// Live members: page → sequence of its newest queue entry.
    index: HashMap<PageId, u64>,
    capacity: usize,
    next_seq: u64,
}

impl GhostQueue {
    /// An empty ghost directory remembering at most `capacity` page ids.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Self::default()
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no ghost entries are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `page` has a live ghost entry.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// Record `page` (moving it to the rear if already present), evicting the
    /// oldest ghosts beyond capacity.
    pub fn record(&mut self, page: PageId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.index.insert(page, seq);
        self.queue.push_back((seq, page));
        while self.index.len() > self.capacity {
            match self.queue.pop_front() {
                Some((s, p)) if self.index.get(&p) == Some(&s) => {
                    self.index.remove(&p);
                }
                Some(_) => {} // stale entry — already removed or re-recorded
                None => break,
            }
        }
        // Opportunistically drop stale front entries so the deque stays
        // proportional to the live population.
        while let Some(&(s, p)) = self.queue.front() {
            if self.index.get(&p) == Some(&s) {
                break;
            }
            self.queue.pop_front();
        }
    }

    /// Remove `page`'s ghost entry if live; returns whether it was.
    pub fn take(&mut self, page: PageId) -> bool {
        self.index.remove(&page).is_some()
    }

    /// The admission decision in one step: a live ghost entry is consumed and
    /// the page is admitted (`true`); otherwise the page is recorded as a
    /// ghost and rejected (`false`).
    pub fn admit_or_record(&mut self, page: PageId) -> bool {
        if self.take(page) {
            true
        } else {
            self.record(page);
            false
        }
    }

    /// Drop every ghost (crash: the directory is RAM-only).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.index.clear();
    }
}

/// How many stripes a [`SharedGhost`] spreads its directory over. Admission
/// checks are one hash probe; 8 stripes keep them off each other's necks at
/// the engine's thread counts without wasting capacity granularity.
const GHOST_STRIPES: usize = 8;

/// A lock-striped ghost directory shared by every shard of a
/// [`crate::ShardedFlashCache`]. One filter for the whole cache (not one per
/// shard): a page always hashes to the same stripe, so its first touch and
/// its re-reference meet regardless of shard routing.
pub struct SharedGhost {
    stripes: Vec<OrderedMutex<GhostQueue>>,
}

impl SharedGhost {
    /// A filter remembering about `capacity` page ids, split evenly over the
    /// stripes.
    pub fn new(capacity: usize) -> Self {
        let per_stripe = capacity.div_ceil(GHOST_STRIPES).max(1);
        Self {
            stripes: (0..GHOST_STRIPES)
                .map(|_| OrderedMutex::new(GHOST_ADMISSION, GhostQueue::new(per_stripe)))
                .collect(),
        }
    }

    fn stripe(&self, page: PageId) -> &OrderedMutex<GhostQueue> {
        let mut h = page.to_u64();
        // splitmix-style finalizer: PageId's low bits are page numbers and
        // would otherwise land consecutive pages on consecutive stripes only.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        &self.stripes[(h as usize) % self.stripes.len()]
    }

    /// The admission decision for `page` (see
    /// [`GhostQueue::admit_or_record`]). Takes one `ghost_admission` stripe —
    /// legal under a `cache_shard` lock, no device I/O while held.
    pub fn admit_or_record(&self, page: PageId) -> bool {
        self.stripe(page).lock().admit_or_record(page)
    }

    /// Whether `page` currently has a live ghost entry (diagnostics/tests).
    pub fn contains(&self, page: PageId) -> bool {
        self.stripe(page).lock().contains(page)
    }

    /// Live entries across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every stripe is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every ghost (cold restart).
    pub fn clear(&self) {
        for s in &self.stripes {
            s.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PageId {
        PageId::new(0, n)
    }

    #[test]
    fn first_touch_rejected_re_reference_admitted() {
        let mut g = GhostQueue::new(4);
        assert!(!g.admit_or_record(p(1)), "first touch is a ghost");
        assert!(g.contains(p(1)));
        assert!(g.admit_or_record(p(1)), "re-reference is admitted");
        assert!(!g.contains(p(1)), "admission consumes the ghost entry");
        assert!(!g.admit_or_record(p(1)), "after consumption it starts over");
    }

    #[test]
    fn capacity_evicts_oldest_ghosts_first() {
        let mut g = GhostQueue::new(2);
        g.record(p(1));
        g.record(p(2));
        g.record(p(3));
        assert!(!g.contains(p(1)), "oldest ghost evicted");
        assert!(g.contains(p(2)));
        assert!(g.contains(p(3)));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn re_recording_refreshes_position() {
        let mut g = GhostQueue::new(2);
        g.record(p(1));
        g.record(p(2));
        g.record(p(1)); // refresh: p(1) is now newest
        g.record(p(3)); // evicts p(2), the oldest live entry
        assert!(g.contains(p(1)));
        assert!(!g.contains(p(2)));
        assert!(g.contains(p(3)));
    }

    #[test]
    fn lazy_removal_keeps_queue_bounded() {
        let mut g = GhostQueue::new(8);
        for round in 0..1000u32 {
            g.record(p(round % 16));
            g.take(p((round + 1) % 16));
        }
        assert!(g.len() <= 8);
        assert!(
            g.queue.len() <= 64,
            "stale entries must not accumulate: {}",
            g.queue.len()
        );
    }

    #[test]
    fn shared_ghost_routes_a_page_consistently() {
        let g = SharedGhost::new(64);
        assert!(!g.admit_or_record(p(7)));
        assert!(g.contains(p(7)));
        assert!(g.admit_or_record(p(7)));
        assert!(g.is_empty());
        for n in 0..32 {
            g.record_for_test(p(n));
        }
        assert!(g.len() <= 64);
        g.clear();
        assert!(g.is_empty());
    }

    impl SharedGhost {
        fn record_for_test(&self, page: PageId) {
            self.stripe(page).lock().record(page);
        }
    }
}
