//! A sharded, concurrency-safe front for the flash-cache policies.
//!
//! The policy implementations ([`crate::mvfifo`], [`crate::lc`],
//! [`crate::tac`]) are deliberately single-threaded: their directories are
//! intricate (a circular multi-version queue, an LRU-2 victim order, a
//! temperature map) and the paper's algorithms are specified sequentially.
//! [`ShardedFlashCache`] makes them safe for concurrent callers the same way
//! the paper's host system (PostgreSQL) partitions its buffer table: the
//! page-id space is hashed over `N` independent shards, each a full policy
//! instance over its own slice of the flash device, each behind its own
//! mutex. Callers holding different pages proceed in parallel; the global
//! mvFIFO order becomes a per-shard FIFO order, which preserves every
//! property the paper relies on (sequential batch writes, multi-version
//! invalidation, bounded occupancy) within each shard.
//!
//! Statistics are atomic inside the policies ([`crate::types::Counter`]), so
//! [`ShardedFlashCache::stats`] merges per-shard snapshots without stalling
//! writers for long.

use std::sync::Arc;

use face_analysis::classes::{CACHE_SHARD, DIAG};
use face_analysis::{witness, OrderedMutex, OrderedRwLock};
use face_pagestore::{backoff_sleep, Counter, DeviceResult, Lsn, PageId};

use crate::admission::SharedGhost;
use crate::degrade::{DegradeConfig, DegradeController};
use crate::destage::PendingGroupWrite;
use crate::io::IoLog;
use crate::policy::{build_cache, CachePolicyKind, FlashCache, NoSupplier, PageSupplier};
use crate::store::FlashStore;
use crate::types::{
    CacheConfig, CacheRecoveryInfo, CacheStats, Evacuation, FlashFetch, InsertOutcome,
    QuarantineOutcome,
};
use crate::StagedPage;

/// A lock-striped set of independent policy instances, routable by page id,
/// exposing the whole [`FlashCache`] surface through `&self`.
///
/// Each shard sits behind an `RwLock`: mutating operations take the write
/// lock, while pure lookups ([`ShardedFlashCache::contains`], the validate
/// half of the lock-light fetch, [`ShardedFlashCache::stats`]) share a read
/// lock. With [`CacheConfig::lock_light_reads`] set,
/// [`ShardedFlashCache::fetch`] pins the version under a short write lock,
/// **drops the lock, performs the flash device read with no lock held**, and
/// revalidates against the slot's generation — so one slow device read never
/// stalls the other threads hashing to the shard (the read-side counterpart
/// of the deferred group writes).
pub struct ShardedFlashCache {
    shards: Vec<OrderedRwLock<Box<dyn FlashCache>>>,
    stores: Vec<Arc<dyn FlashStore>>,
    /// Per-shard occupancy mirrors, refreshed after every mutating shard
    /// operation, so [`ShardedFlashCache::len`] never sweeps the shard locks
    /// (it used to take every lock per call). Exact whenever writers are
    /// quiesced; a point-in-time approximation under concurrency, like
    /// [`ShardedFlashCache::stats`].
    occupancy: Vec<Counter>,
    /// Per-shard configurations (each shard owns a slice of the capacity);
    /// kept so a shard can be rebuilt cold ([`ShardedFlashCache::reset_cold`]).
    configs: Vec<CacheConfig>,
    kind: CachePolicyKind,
    capacity: usize,
    /// TAC routes by extent so per-extent temperature is not diluted across
    /// shards; every other policy routes by page.
    route_granularity: u64,
    /// Mirror of [`CacheConfig::lock_light_reads`].
    lock_light: bool,
    persists: bool,
    name: &'static str,
    /// Ghost-queue admission filter in front of the legacy policies
    /// ([`CacheConfig::ghost_admission`]): a clean first-touch page is
    /// recorded here instead of earning a flash write. `None` when the flag
    /// is off and for S3-FIFO, whose ghost queue is integral to the policy.
    ghost: Option<SharedGhost>,
    /// Clean first touches the ghost filter kept off the flash.
    admission_filtered: Counter,
    /// Ghost re-references that earned their flash write.
    admission_ghost_hits: Counter,
    /// Degrade controller, when the owner installed one
    /// ([`ShardedFlashCache::with_degrade`]): bounds the off-lock fetch
    /// retries and counts them. Error *classification* (quarantine, breaker)
    /// stays with the owner, which sees the errors this type propagates.
    degrade: Option<Arc<DegradeController>>,
    /// Dirty pages rescued from failed shard operations (insert, sync,
    /// checkpoint drain), already published to the caller's stage-out sink
    /// where one was in scope. The owner drains this via
    /// [`ShardedFlashCache::take_write_fallout`] after an error and persists
    /// the pages to disk WAL-guarded. `DIAG` class: taken briefly, never
    /// around I/O, after the shard lock is released.
    fallout: OrderedMutex<Vec<StagedPage>>,
}

impl ShardedFlashCache {
    /// Build `shards` independent caches of `kind`, splitting
    /// `config.capacity_pages` between them. `store_factory` is called once
    /// per shard with that shard's slot capacity (the functional engine hands
    /// out one [`crate::MemFlashStore`] per shard; the simulation would use
    /// header-only stores).
    ///
    /// Returns `None` for [`CachePolicyKind::None`].
    pub fn build(
        kind: CachePolicyKind,
        config: CacheConfig,
        shards: usize,
        store_factory: impl Fn(usize) -> Arc<dyn FlashStore>,
    ) -> Option<Self> {
        if kind == CachePolicyKind::None {
            return None;
        }
        let capacity = config.capacity_pages.max(1);
        // Never create shards so small that a policy's group size exceeds its
        // capacity; each shard must hold at least one replacement group.
        // S3-FIFO additionally needs two slots per shard (one per region).
        let min_per_shard = config.group_size.max(if kind == CachePolicyKind::S3Fifo {
            2
        } else {
            1
        });
        let shards = shards.clamp(1, (capacity / min_per_shard).max(1));
        let base = capacity / shards;
        let rem = capacity % shards;

        let mut built = Vec::with_capacity(shards);
        let mut stores = Vec::with_capacity(shards);
        let mut configs = Vec::with_capacity(shards);
        let mut name = "";
        for i in 0..shards {
            let shard_capacity = base + usize::from(i < rem);
            let shard_config = CacheConfig {
                capacity_pages: shard_capacity,
                ..config.clone()
            };
            let store = store_factory(shard_capacity);
            let cache = build_cache(kind, shard_config.clone(), Arc::clone(&store))
                .expect("kind is not None");
            name = cache.policy_name();
            stores.push(store);
            configs.push(shard_config);
            built.push(OrderedRwLock::new(CACHE_SHARD, cache));
        }
        let persists = built[0].read().persists_dirty_pages();
        // One filter for the whole cache, not per shard: a page's first touch
        // and its comeback must meet even though insert order is arbitrary.
        let ghost = (config.ghost_admission && kind != CachePolicyKind::S3Fifo)
            .then(|| SharedGhost::new(config.effective_ghost_capacity()));
        Some(Self {
            ghost,
            admission_filtered: Counter::default(),
            admission_ghost_hits: Counter::default(),
            degrade: None,
            fallout: OrderedMutex::new(DIAG, Vec::new()),
            occupancy: (0..built.len()).map(|_| Counter::default()).collect(),
            shards: built,
            stores,
            configs,
            kind,
            capacity,
            route_granularity: if kind == CachePolicyKind::Tac {
                config.tac_extent_pages.max(1) as u64
            } else {
                1
            },
            lock_light: config.lock_light_reads,
            persists,
            name,
        })
    }

    /// Install a degrade controller: bounds (and counts) the transient-error
    /// retries of the off-lock fetch path. Call once at construction time,
    /// before the cache is shared.
    pub fn with_degrade(mut self, controller: Arc<DegradeController>) -> Self {
        self.degrade = Some(controller);
        self
    }

    /// Retry budget for transient device errors on the off-lock read path.
    fn max_retries(&self) -> u32 {
        self.degrade
            .as_ref()
            .map(|c| c.config().max_retries)
            .unwrap_or_else(|| DegradeConfig::default().max_retries)
    }

    /// Refresh a shard's occupancy mirror from the policy, while its lock is
    /// still held by the caller.
    fn note_len(&self, shard: usize, cache: &dyn FlashCache) {
        self.occupancy[shard].set(cache.len() as u64);
    }

    /// Drain a shard's policy-level write-fallout buffer (with the shard
    /// lock still held), publish the pages to `staged_out_sink`, and park
    /// them in the cache-level fallout buffer for
    /// [`ShardedFlashCache::take_write_fallout`].
    fn rescue_fallout(
        &self,
        cache: &mut dyn FlashCache,
        staged_out_sink: &mut dyn FnMut(&[StagedPage]),
    ) -> Vec<StagedPage> {
        let fallout = cache.take_write_fallout();
        if !fallout.is_empty() {
            staged_out_sink(&fallout);
        }
        fallout
    }

    /// Dirty pages rescued from failed shard operations since the last call.
    /// After any method here returns a device error, the owner must drain
    /// this and persist the pages to disk (WAL-guarded) — they are no longer
    /// reachable through the cache directory.
    pub fn take_write_fallout(&self) -> Vec<StagedPage> {
        std::mem::take(&mut *self.fallout.lock())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard flash stores (crash-simulation tests inspect them).
    pub fn stores(&self) -> &[Arc<dyn FlashStore>] {
        &self.stores
    }

    /// The policy kind every shard runs.
    pub fn kind(&self) -> CachePolicyKind {
        self.kind
    }

    /// Human-readable policy name.
    pub fn policy_name(&self) -> &'static str {
        self.name
    }

    /// Whether dirty pages staged into this cache count as persistent
    /// database content (FaCE yes, LC/TAC no).
    pub fn persists_dirty_pages(&self) -> bool {
        self.persists
    }

    /// Total capacity in page slots across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard `page` routes to. Public so callers can filter work by
    /// shard — the GSC pull-from-DRAM supplier must only feed a shard pages
    /// that belong to it, and destage jobs route by shard.
    pub fn shard_of(&self, page: PageId) -> usize {
        face_pagestore::stripe_of(page.to_u64() / self.route_granularity, self.shards.len())
    }

    /// Whether a valid copy of `page` is cached. Takes only the shard's
    /// **read** lock, so hot-path callers never serialize behind writers
    /// already inside the shard (and never block readers at all).
    pub fn contains(&self, page: PageId) -> bool {
        self.shards[self.shard_of(page)].read().contains(page)
    }

    /// Look up `page` on a DRAM miss (see [`FlashCache::fetch`]).
    ///
    /// With [`CacheConfig::lock_light_reads`] set this is the lock-light
    /// protocol: pin the version under a short shard write lock
    /// ([`FlashCache::fetch_pin`]), drop the lock, perform the flash device
    /// read **off-lock**, then revalidate the slot's generation under a read
    /// lock ([`FlashCache::fetch_validate`]). Losing the race to an eviction
    /// or slot reuse discards the read and retries the lookup from scratch
    /// ([`CacheStats::fetch_retries`]); versions still in a deferred group
    /// are served from their shared RAM frames with no device read at all.
    /// Without the flag, the classic read-under-lock path runs unchanged.
    ///
    /// Device read errors surface as `Err`: transient errors are retried
    /// off-lock (with backoff, up to the degrade controller's budget) before
    /// giving up. The caller decides what an error means — for a clean copy
    /// the disk is still authoritative and a miss-to-disk is safe; for a
    /// dirty copy the flash held the only current version.
    pub fn fetch(&self, page: PageId, io: &mut IoLog) -> DeviceResult<Option<FlashFetch>> {
        let shard = self.shard_of(page);
        if !self.lock_light {
            // The classic read-under-lock path is the A/B baseline the
            // lock-light experiments compare against: its device read under
            // the shard lock is the measured cost, not an accident.
            let _allow = witness::allow_device_io("cache: classic read-under-lock fetch");
            return self.shards[shard].write().fetch(page, io);
        }
        let store = &self.stores[shard];
        let mut retry = false;
        loop {
            let Some(pin) = self.shards[shard].write().fetch_pin(page, retry, io) else {
                return Ok(None);
            };
            // RAM-resident frame (pending batch / in-flight group): immutable
            // and Arc-shared, valid regardless of what happens to the slot.
            if let Some(frame) = pin.frame {
                return Ok(Some(FlashFetch {
                    data: Some(frame.as_ref().clone()),
                    dirty: pin.dirty,
                    lsn: pin.lsn,
                }));
            }
            // Metadata-only hit: nothing to read, nothing to validate — the
            // pinned metadata was consistent under the lock.
            if !pin.data_expected || !store.carries_data() {
                return Ok(Some(FlashFetch {
                    data: None,
                    dirty: pin.dirty,
                    lsn: pin.lsn,
                }));
            }
            // The flash device read, with **no shard lock held** — which is
            // also why the transient-error backoff may sleep right here.
            let mut attempt: u32 = 0;
            let data = loop {
                match store.read_slot(pin.slot) {
                    Ok(d) => break d,
                    Err(e) if e.is_transient() && attempt < self.max_retries() => {
                        attempt += 1;
                        if let Some(c) = &self.degrade {
                            c.note_retry();
                        }
                        backoff_sleep(attempt);
                    }
                    Err(e) => return Err(e),
                }
            };
            if self.shards[shard]
                .read()
                .fetch_validate(pin.slot, pin.generation)
            {
                return Ok(Some(FlashFetch {
                    data,
                    dirty: pin.dirty,
                    lsn: pin.lsn,
                }));
            }
            // The slot was evicted or reused while we read: the bytes may
            // belong to a different version. Discard and retry.
            retry = true;
        }
    }

    /// Hand a page leaving the DRAM buffer to its shard (see
    /// [`FlashCache::insert`]) with no GSC supplier.
    pub fn insert(&self, staged: StagedPage, io: &mut IoLog) -> DeviceResult<InsertOutcome> {
        self.insert_with(staged, &mut NoSupplier, io)
    }

    /// Hand a page to its shard with a Group Second Chance supplier. The
    /// supplier runs **while the shard lock is held**, so it must never block
    /// on another cache shard and must only return pages that route to this
    /// same shard (check with [`ShardedFlashCache::shard_of`]); the engine's
    /// supplier additionally only uses `try_lock` on buffer shards, keeping
    /// the lock graph acyclic. Pages it returns must already be WAL-covered
    /// — they enter the persistent database right here.
    ///
    /// In deferred mode ([`CacheConfig::defer_group_writes`]) the returned
    /// outcome may carry a [`PendingGroupWrite`] stamped with this shard's
    /// index; the caller must apply it off-lock
    /// ([`ShardedFlashCache::apply_group_write`]) and then seal it
    /// ([`ShardedFlashCache::complete_group`]) — typically by enqueueing it
    /// on a [`crate::destage::Destager`].
    pub fn insert_with(
        &self,
        staged: StagedPage,
        supplier: &mut dyn PageSupplier,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        self.insert_with_sink(staged, supplier, io, &mut |_| {})
    }

    /// Like [`ShardedFlashCache::insert_with`], additionally invoking
    /// `staged_out_sink` on the dequeued pages **before the shard lock is
    /// released**. The tier uses this to publish stage-outs into its wash
    /// table atomically with their removal from the directory — otherwise a
    /// concurrent fetch could miss both the cache (entry already gone) and
    /// the wash table (entry not yet published) and serve the stale disk
    /// version. The sink must be short and must not take cache locks.
    pub fn insert_with_sink(
        &self,
        staged: StagedPage,
        supplier: &mut dyn PageSupplier,
        io: &mut IoLog,
        staged_out_sink: &mut dyn FnMut(&[StagedPage]),
    ) -> DeviceResult<InsertOutcome> {
        let shard = self.shard_of(staged.page);
        let mut guard = self.shards[shard].write();
        if let Some(ghost) = &self.ghost {
            // The admission filter applies to **clean first touches only**:
            // dirty pages must be absorbed (rejecting one would drop the only
            // up-to-date copy), and an already-cached page's insert is the
            // policy's business (conditional enqueue / version supersession).
            // A rejected clean page still exists on disk, so `cached: false`
            // is safe. The ghost stripe nests inside the shard lock
            // (`ghost_admission` ranks below `cache_shard`), keeping the
            // reject decision atomic with the directory check.
            if !staged.dirty && !guard.contains(staged.page) {
                if ghost.admit_or_record(staged.page) {
                    self.admission_ghost_hits.inc();
                } else {
                    self.admission_filtered.inc();
                    return Ok(InsertOutcome {
                        cached: false,
                        ..Default::default()
                    });
                }
            }
        }
        let mut outcome = match guard.insert(staged, supplier, io) {
            Ok(outcome) => outcome,
            Err(e) => {
                // The policy rolled its directory back and parked every
                // dirty page it had to un-cache in its fallout buffer.
                // Publish them to the wash sink *before* releasing the lock
                // (same race as regular stage-outs), then hand them up.
                let fallout = self.rescue_fallout(&mut **guard, staged_out_sink);
                self.note_len(shard, &**guard);
                drop(guard);
                if !fallout.is_empty() {
                    self.fallout.lock().extend(fallout);
                }
                return Err(e);
            }
        };
        if !outcome.staged_out.is_empty() {
            staged_out_sink(&outcome.staged_out);
        }
        self.note_len(shard, &**guard);
        drop(guard);
        if let Some(pending) = outcome.pending_group.as_mut() {
            pending.shard = shard;
        }
        Ok(outcome)
    }

    /// Apply a deferred group's physical flash batch write against its
    /// shard's store. Takes **no shard lock** — exactly why the write was
    /// deferred. On error the group is still owed: the caller aborts it
    /// ([`ShardedFlashCache::abort_group`]) or retries (the batch rewrite is
    /// idempotent; the journal seals only on completion).
    pub fn apply_group_write(&self, write: &PendingGroupWrite, io: &mut IoLog) -> DeviceResult<()> {
        write.apply(&*self.stores[write.shard % self.stores.len()], io)
    }

    /// Whether a deferred group's physical write is still owed (formed but
    /// neither applied-and-sealed inline by `sync` nor completed by the
    /// pipeline). Destage workers consult this before applying, so a group
    /// that `sync`/checkpoint already flushed inline — `drain` is
    /// best-effort when producers race it — is not written (and charged)
    /// twice.
    pub fn group_write_pending(&self, shard: usize, epoch: u64) -> bool {
        self.shards[shard % self.shards.len()]
            .read()
            .group_write_pending(epoch)
    }

    /// Seal a deferred group's journal records now that its batch write is
    /// on flash (briefly takes the shard lock; see
    /// [`FlashCache::complete_group`]).
    pub fn complete_group(&self, shard: usize, epoch: u64, io: &mut IoLog) {
        self.shards[shard % self.shards.len()]
            .write()
            .complete_group(epoch, io);
    }

    /// Notification that `page` was fetched from disk (see
    /// [`FlashCache::on_fetched_from_disk`]).
    pub fn on_fetched_from_disk(
        &self,
        page: PageId,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        let shard = self.shard_of(page);
        let mut guard = self.shards[shard].write();
        if let Some(ghost) = &self.ghost {
            // On-entry caching (TAC) admits pages read from disk — always
            // clean, so the same first-touch filter applies in front of the
            // policy's own temperature check. For the eviction-time policies
            // (FaCE family, LC) this notification is a no-op and must NOT
            // touch the ghost: their admission point is the buffer-pool
            // write-back (`insert_with_sink`), and recording the fetch here
            // would make a page's own later eviction look like a ghost
            // re-reference — one logical touch counted as two, admitting
            // every one-touch scan page the filter exists to reject.
            if self.kind == CachePolicyKind::Tac && !guard.contains(page) {
                if ghost.admit_or_record(page) {
                    self.admission_ghost_hits.inc();
                } else {
                    self.admission_filtered.inc();
                    return Ok(InsertOutcome::default());
                }
            }
        }
        let outcome = guard.on_fetched_from_disk(page, io);
        self.note_len(shard, &**guard);
        outcome
    }

    /// Flush buffered batches and metadata on every shard.
    ///
    /// Every shard is attempted even after one fails (a checkpoint wants
    /// whatever durability it can get); the first error is returned. Dirty
    /// pages a failing shard had to un-cache wait in
    /// [`ShardedFlashCache::take_write_fallout`].
    pub fn sync(&self, io: &mut IoLog) -> DeviceResult<()> {
        // Checkpoint/shutdown path: pending group writes and metadata are
        // flushed inline, under the shard lock, by design (durability over
        // latency here).
        let _allow = witness::allow_device_io("cache: sync flushes groups inline");
        let mut first_err = None;
        for shard in &self.shards {
            let mut guard = shard.write();
            if let Err(e) = guard.sync(io) {
                let fallout = self.rescue_fallout(&mut **guard, &mut |_| {});
                drop(guard);
                if !fallout.is_empty() {
                    self.fallout.lock().extend(fallout);
                }
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Drain dirty pages for a checkpoint from every shard (LC).
    ///
    /// On a shard error the pages already drained from *earlier* shards —
    /// whose dirty flags are cleared — are parked in the fallout buffer
    /// ([`ShardedFlashCache::take_write_fallout`]) instead of being lost
    /// with the dropped return value.
    pub fn drain_dirty_for_checkpoint(&self, io: &mut IoLog) -> DeviceResult<Vec<StagedPage>> {
        let _allow = witness::allow_device_io("cache: LC checkpoint drain reads slots");
        let mut out = Vec::new();
        for shard in &self.shards {
            match shard.write().drain_dirty_for_checkpoint(io) {
                Ok(drained) => out.extend(drained),
                Err(e) => {
                    if !out.is_empty() {
                        self.fallout.lock().extend(out);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Evacuate every dirty valid page from every shard (see
    /// [`FlashCache::evacuate_dirty`]): the caller must write them to disk
    /// before wiping the cache with [`ShardedFlashCache::reset_cold`].
    /// Includes any parked write-fallout. `unread_dirty` counts dirty pages
    /// whose slots could not be read — their committed updates are
    /// recoverable only through WAL redo.
    pub fn evacuate_dirty(&self, io: &mut IoLog) -> Evacuation {
        // Admin/quiesced operation: reads every dirty slot under the lock.
        let _allow = witness::allow_device_io("cache: quiesced dirty evacuation");
        let mut merged = Evacuation::default();
        merged.pages.append(&mut self.fallout.lock());
        for shard in &self.shards {
            let mut ev = shard.write().evacuate_dirty(io);
            merged.pages.append(&mut ev.pages);
            merged.unread_dirty += ev.unread_dirty;
        }
        merged
    }

    /// Quarantine one slot of one shard (see [`FlashCache::quarantine_slot`]):
    /// the slot leaves rotation, a clean resident is dropped, a dirty
    /// resident is evacuated. The evacuee (if any) is published to
    /// `staged_out_sink` **before the shard lock is released** — same
    /// atomicity contract as [`ShardedFlashCache::insert_with_sink`] — and
    /// also returned for the caller to persist to disk WAL-guarded.
    pub fn quarantine_slot(
        &self,
        shard: usize,
        slot: usize,
        io: &mut IoLog,
        staged_out_sink: &mut dyn FnMut(&[StagedPage]),
    ) -> QuarantineOutcome {
        // Quarantine makes a last-resort read of the failing slot to rescue
        // a dirty resident; acknowledged under-lock I/O.
        let _allow = witness::allow_device_io("cache: quarantine evacuates the failing slot");
        let shard = shard % self.shards.len();
        let mut guard = self.shards[shard].write();
        let out = guard.quarantine_slot(slot, io);
        if let Some(evacuee) = &out.evacuee {
            staged_out_sink(std::slice::from_ref(evacuee));
        }
        self.note_len(shard, &**guard);
        out
    }

    /// Abort a deferred group whose batch write failed (see
    /// [`FlashCache::abort_group`]): the group's slots become reclaimable
    /// holes, its journal records die unsealed, and its dirty pages come
    /// back for disk failover. Like
    /// [`ShardedFlashCache::quarantine_slot`], the returned pages are
    /// published to `staged_out_sink` under the shard lock.
    pub fn abort_group(
        &self,
        shard: usize,
        epoch: u64,
        io: &mut IoLog,
        staged_out_sink: &mut dyn FnMut(&[StagedPage]),
    ) -> Vec<StagedPage> {
        let shard = shard % self.shards.len();
        let mut guard = self.shards[shard].write();
        let fallout = guard.abort_group(epoch, io);
        if !fallout.is_empty() {
            staged_out_sink(&fallout);
        }
        self.note_len(shard, &**guard);
        fallout
    }

    /// Crash and recover every shard, merging the per-shard reports.
    /// `survived` is true only if every shard's metadata survived (FaCE).
    /// Each shard reconciles its recovered directory against `durable_lsn`
    /// (the durable end of the WAL): versions newer than it are discarded.
    /// Callers without a WAL pass `Lsn(u64::MAX)`.
    pub fn crash_and_recover(&self, durable_lsn: Lsn, io: &mut IoLog) -> CacheRecoveryInfo {
        // Restart path: the world is quiesced, metadata scans and slot reads
        // run under the shard lock by construction.
        let _allow = witness::allow_device_io("cache: quiesced crash-and-recover");
        // Parked fallout is RAM-resident and dies with the crash; the WAL
        // re-covers the committed updates those pages carried.
        self.fallout.lock().clear();
        let mut merged = CacheRecoveryInfo {
            survived: true,
            ..CacheRecoveryInfo::default()
        };
        for (i, shard) in self.shards.iter().enumerate() {
            let mut guard = shard.write();
            let info = guard.crash_and_recover(durable_lsn, io);
            self.note_len(i, &**guard);
            merged = merged.merged(&info);
        }
        merged
    }

    /// Drop every shard cold: flash store contents and all cache metadata
    /// (journal, checkpoint, directory) are discarded and fresh policy
    /// instances are built. Models restarting with a wiped or replaced cache
    /// device — the baseline the warm-recovery experiments compare against.
    pub fn reset_cold(&self) {
        let _allow = witness::allow_device_io("cache: quiesced cold reset wipes stores");
        for (i, ((shard, store), config)) in self
            .shards
            .iter()
            .zip(self.stores.iter())
            .zip(self.configs.iter())
            .enumerate()
        {
            let mut guard = shard.write();
            store.clear();
            *guard = build_cache(self.kind, config.clone(), Arc::clone(store))
                .expect("kind is not None");
            self.note_len(i, &**guard);
        }
        if let Some(ghost) = &self.ghost {
            ghost.clear();
        }
        self.fallout.lock().clear();
    }

    /// Merged activity counters across shards.
    ///
    /// The snapshot is **consistent across shards**: every shard's read lock
    /// is acquired (in shard order) before any counter is read, so the
    /// merged numbers reflect one instant and per-shard sums cannot tear
    /// against a concurrent mutating operation that spans the snapshot (a
    /// read lock suffices: mutators hold the write lock). The result is
    /// still a *point-in-time* value: by the time the caller looks at it,
    /// further operations may have run. Callers needing exact books must
    /// quiesce writers first — the staleness, not the tearing, is the
    /// contract.
    pub fn stats(&self) -> CacheStats {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut merged = guards
            .iter()
            .map(|g| g.stats())
            .fold(CacheStats::default(), |acc, s| acc.merged(&s));
        // Device-level page-program tally and the sharded admission filter's
        // counters live outside the shards — atomic reads, no extra lock
        // sweep. (S3-FIFO shards report their admission counters through the
        // per-shard stats merged above; exactly one of the two sources is
        // nonzero.)
        merged.flash_pages_written = self.flash_pages_written();
        merged.admission_filtered += self.admission_filtered.get();
        merged.admission_ghost_hits += self.admission_ghost_hits.get();
        merged
    }

    /// Lifetime flash page programs across every shard's store — a
    /// **lock-free** sum of the per-device atomic tallies (monotonic: it
    /// survives [`CacheStats`] resets and cold wipes, so callers diff
    /// before/after readings).
    pub fn flash_pages_written(&self) -> u64 {
        self.stores.iter().map(|s| s.pages_written()).sum()
    }

    /// Reset activity counters on every shard, under an all-shards **write**
    /// pass: a reset is a mutation, and holding mere read locks would let a
    /// concurrent [`ShardedFlashCache::stats`] snapshot interleave with the
    /// zeroing and merge pre-reset and post-reset shard values.
    pub fn reset_stats(&self) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        for g in &guards {
            g.reset_stats();
        }
        self.admission_filtered.set(0);
        self.admission_ghost_hits.set(0);
    }

    /// Occupied page slots across shards, from the per-shard occupancy
    /// mirrors — **no shard lock is taken**. Exact at quiesce; under
    /// concurrent inserts the value may lag the shards by in-flight
    /// operations (the previous implementation locked every shard per call,
    /// which serialized hot-path callers against the whole cache).
    pub fn len(&self) -> usize {
        self.occupancy.iter().map(|c| c.get() as usize).sum()
    }

    /// Whether no shard holds anything (same contract as
    /// [`ShardedFlashCache::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemFlashStore;
    use face_pagestore::{Lsn, Page};

    fn sharded(kind: CachePolicyKind, capacity: usize, shards: usize) -> ShardedFlashCache {
        let config = CacheConfig {
            capacity_pages: capacity,
            group_size: 4,
            meta_checkpoint_interval_groups: 1_000_000,
            lc_dirty_threshold: 2.0,
            // The whole suite runs through the lock-light read path (the
            // policy-level tests in mvfifo/lc/tac keep covering the classic
            // read-under-lock fetch).
            lock_light_reads: true,
            ..CacheConfig::default()
        };
        ShardedFlashCache::build(kind, config, shards, |cap| {
            Arc::new(MemFlashStore::new(cap)) as Arc<dyn FlashStore>
        })
        .unwrap()
    }

    fn data_page(n: u32) -> StagedPage {
        let mut p = Page::new(PageId::new(0, n));
        p.set_lsn(Lsn(n as u64 + 1));
        p.write_body(0, &n.to_le_bytes());
        StagedPage::with_data(p, true, true)
    }

    #[test]
    fn none_policy_builds_nothing() {
        assert!(ShardedFlashCache::build(
            CachePolicyKind::None,
            CacheConfig::default(),
            4,
            |cap| Arc::new(MemFlashStore::new(cap)) as Arc<dyn FlashStore>
        )
        .is_none());
    }

    #[test]
    fn capacity_splits_exactly_across_shards() {
        let c = sharded(CachePolicyKind::FaceGsc, 130, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.capacity(), 130);
        let total: usize = c.stores().iter().map(|s| s.capacity()).sum();
        assert_eq!(total, 130);
        assert_eq!(c.policy_name(), "FaCE+GSC");
        assert!(c.persists_dirty_pages());
        assert_eq!(c.kind(), CachePolicyKind::FaceGsc);
    }

    #[test]
    fn tiny_caches_collapse_to_fewer_shards() {
        // 8 slots with group size 4 support at most 2 shards.
        let c = sharded(CachePolicyKind::FaceGr, 8, 16);
        assert!(c.shard_count() <= 2);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn insert_fetch_round_trip_across_shards() {
        let c = sharded(CachePolicyKind::Face, 256, 4);
        let mut io = IoLog::new();
        for n in 0..64u32 {
            c.insert(data_page(n), &mut io).unwrap();
        }
        assert_eq!(c.len(), 64);
        assert!(!c.is_empty());
        for n in 0..64u32 {
            let page = PageId::new(0, n);
            assert!(c.contains(page), "page {n} routed consistently");
            let hit = c.fetch(page, &mut io).unwrap().expect("cached");
            assert_eq!(hit.data.unwrap().read_body(0, 4), &n.to_le_bytes());
        }
        let stats = c.stats();
        assert_eq!(stats.inserts, 64);
        assert_eq!(stats.hits, 64);
        c.reset_stats();
        let after = c.stats();
        // Everything resets except the device-level page-program tally,
        // which is monotonic by contract (callers diff readings).
        assert_eq!(
            after,
            CacheStats {
                flash_pages_written: after.flash_pages_written,
                ..CacheStats::default()
            }
        );
        assert_eq!(after.flash_pages_written, c.flash_pages_written());
    }

    #[test]
    fn concurrent_callers_keep_shards_consistent() {
        let c = Arc::new(sharded(CachePolicyKind::FaceGsc, 512, 4));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let mut io = IoLog::new();
                    for i in 0..200u32 {
                        let n = t * 1000 + (i % 50);
                        c.insert(data_page(n), &mut io).unwrap();
                        c.fetch(PageId::new(0, n), &mut io).unwrap();
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.inserts, 8 * 200);
        assert_eq!(stats.lookups, 8 * 200);
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn crash_and_recover_merges_shard_reports() {
        let c = sharded(CachePolicyKind::FaceGsc, 256, 4);
        let mut io = IoLog::new();
        for n in 0..40u32 {
            c.insert(data_page(n), &mut io).unwrap();
        }
        c.sync(&mut io).unwrap();
        let info = c.crash_and_recover(Lsn(u64::MAX), &mut io);
        assert!(info.survived);
        assert_eq!(info.entries_restored, 40);
        assert!(info.checkpoint_loaded, "sync writes a cache checkpoint");
        assert_eq!(info.entries_discarded_beyond_wal, 0);
        // The recovered shards still serve every page.
        for n in 0..40u32 {
            assert!(c.contains(PageId::new(0, n)), "page {n} lost");
        }

        // LC loses everything on every shard.
        let lc = sharded(CachePolicyKind::Lc, 64, 4);
        let mut io = IoLog::new();
        for n in 0..10u32 {
            lc.insert(data_page(n), &mut io).unwrap();
        }
        let info = lc.crash_and_recover(Lsn(u64::MAX), &mut io);
        assert!(!info.survived);
        assert_eq!(info.entries_restored, 0);
        assert!(lc.is_empty());
    }

    #[test]
    fn recovery_reconciles_against_the_durable_lsn() {
        let c = sharded(CachePolicyKind::FaceGsc, 256, 4);
        let mut io = IoLog::new();
        for n in 0..40u32 {
            c.insert(data_page(n), &mut io).unwrap(); // page n carries Lsn(n + 1)
        }
        c.sync(&mut io).unwrap();
        // Only LSNs <= 20 are durable in the WAL: the newer half of the cache
        // must be discarded at recovery, the older half stays warm.
        let info = c.crash_and_recover(Lsn(20), &mut io);
        assert!(info.survived);
        assert_eq!(info.entries_discarded_beyond_wal, 20);
        assert_eq!(info.entries_restored, 20);
        for n in 0..40u32 {
            assert_eq!(
                c.contains(PageId::new(0, n)),
                n < 20,
                "page {n} on the wrong side of the durable LSN"
            );
        }
    }

    #[test]
    fn reset_cold_drops_contents_but_keeps_working() {
        let c = sharded(CachePolicyKind::FaceGsc, 256, 4);
        let mut io = IoLog::new();
        for n in 0..32u32 {
            c.insert(data_page(n), &mut io).unwrap();
        }
        c.sync(&mut io).unwrap();
        assert!(!c.is_empty());
        c.reset_cold();
        assert!(c.is_empty());
        assert!(!c.contains(PageId::new(0, 3)));
        // The stores were wiped too — nothing to recover.
        let info = c.crash_and_recover(Lsn(u64::MAX), &mut io);
        assert_eq!(info.entries_restored, 0);
        // The cold cache accepts new work.
        c.insert(data_page(99), &mut io).unwrap();
        assert!(c.contains(PageId::new(0, 99)));
    }

    #[test]
    fn insert_with_supplier_feeds_the_target_shard() {
        // One shard so every supplied page routes correctly; GSC pulls from
        // the supplier once a replacement batch has room to top up.
        let config = CacheConfig {
            capacity_pages: 8,
            group_size: 4,
            second_chance: true,
            meta_checkpoint_interval_groups: 1_000_000,
            ..CacheConfig::default()
        };
        let c = ShardedFlashCache::build(CachePolicyKind::FaceGsc, config, 1, |cap| {
            Arc::new(MemFlashStore::new(cap)) as Arc<dyn FlashStore>
        })
        .unwrap();
        let mut io = IoLog::new();
        for n in 0..8u32 {
            c.insert(data_page(n), &mut io).unwrap();
        }
        let mut next = 200u32;
        let mut supplier = || {
            let s = data_page(next);
            next += 1;
            Some(s)
        };
        c.insert_with(data_page(100), &mut supplier, &mut io)
            .unwrap();
        assert!(c.stats().pulled_from_dram > 0, "supplier was consulted");
        assert_eq!(c.shard_of(PageId::new(0, 200)), 0);
        assert!(c.contains(PageId::new(0, 200)));
    }

    use crate::store::GateFlashStore;

    #[test]
    fn deferred_inserts_hold_no_shard_lock_across_flash_writes() {
        let config = CacheConfig {
            capacity_pages: 64,
            group_size: 4,
            defer_group_writes: true,
            meta_checkpoint_interval_groups: 1_000_000,
            ..CacheConfig::default()
        };
        let store = Arc::new(GateFlashStore::new(64));
        let store_for_build = Arc::clone(&store);
        let c = Arc::new(
            ShardedFlashCache::build(CachePolicyKind::FaceGr, config, 1, move |_| {
                Arc::clone(&store_for_build) as Arc<dyn FlashStore>
            })
            .unwrap(),
        );

        // Foreground: the gate is CLOSED, yet filling a group returns
        // instantly — insert performs no flash I/O at all.
        let mut io = IoLog::new();
        let mut pending = None;
        for n in 0..4u32 {
            let out = c.insert(data_page(n), &mut io).unwrap();
            if out.pending_group.is_some() {
                pending = out.pending_group;
            }
        }
        let write = pending.expect("group filled");
        assert!(io.is_empty(), "foreground charged I/O under deferral");

        // Background: apply the group write; it blocks on the gate. The
        // shard must stay usable the whole time — contains/fetch/insert from
        // another thread proceed because apply holds no shard lock.
        let bg = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut io = IoLog::new();
                c.apply_group_write(&write, &mut io).unwrap();
                c.complete_group(write.shard, write.epoch, &mut io);
            })
        };
        // Give the background thread time to enter the blocked write.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let start = std::time::Instant::now();
        assert!(c.contains(PageId::new(0, 1)), "directory intact");
        let mut io = IoLog::new();
        assert!(c.fetch(PageId::new(0, 2), &mut io).unwrap().is_some());
        c.insert(data_page(50), &mut io).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_millis(250),
            "shard mutex was held across the blocked flash write"
        );
        store.release();
        bg.join().unwrap();
        // The batch landed and sealed once the device unblocked.
        assert!(store.read_slot(0).unwrap().is_some());
    }

    #[test]
    fn lock_light_fetch_holds_no_shard_lock_across_flash_reads() {
        let config = CacheConfig {
            capacity_pages: 64,
            group_size: 4,
            lock_light_reads: true,
            meta_checkpoint_interval_groups: 1_000_000,
            ..CacheConfig::default()
        };
        let store = Arc::new(GateFlashStore::new(64));
        store.release(); // writes flow; only reads are gated below
        let store_for_build = Arc::clone(&store);
        let c = Arc::new(
            ShardedFlashCache::build(CachePolicyKind::FaceGr, config, 1, move |_| {
                Arc::clone(&store_for_build) as Arc<dyn FlashStore>
            })
            .unwrap(),
        );
        let mut io = IoLog::new();
        for n in 0..8u32 {
            c.insert(data_page(n), &mut io).unwrap(); // two sealed groups on the store
        }

        // Background: a fetch parks inside the device read. The shard must
        // stay fully usable the whole time — the reader holds no shard lock
        // across the read.
        store.hold_reads();
        let bg = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut io = IoLog::new();
                c.fetch(PageId::new(0, 1), &mut io)
                    .unwrap()
                    .expect("cached")
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        let start = std::time::Instant::now();
        assert!(c.contains(PageId::new(0, 2)), "directory reachable");
        let mut io = IoLog::new();
        c.insert(data_page(50), &mut io).unwrap();
        // Page 50 sits in the pending batch: its fetch is served from the
        // shared RAM frame, no device read, no waiting on the gate.
        let ram_hit = c
            .fetch(PageId::new(0, 50), &mut io)
            .unwrap()
            .expect("pending");
        assert_eq!(ram_hit.data.unwrap().read_body(0, 4), &50u32.to_le_bytes());
        assert!(
            start.elapsed() < std::time::Duration::from_millis(250),
            "shard lock was held across the blocked flash read"
        );
        store.release_reads();
        let hit = bg.join().unwrap();
        assert_eq!(hit.data.unwrap().read_body(0, 4), &1u32.to_le_bytes());
        assert_eq!(c.stats().fetch_retries, 0, "nothing raced this read");
    }

    #[test]
    fn lock_light_fetch_retries_when_losing_the_eviction_race() {
        // Single shard, capacity = one group, clean pages throughout: the
        // dequeue that steals the parked reader's slot performs no device
        // read of its own (clean + valid + no second chance = silent drop),
        // so only the reader is parked at the gate.
        let config = CacheConfig {
            capacity_pages: 4,
            group_size: 4,
            lock_light_reads: true,
            meta_checkpoint_interval_groups: 1_000_000,
            ..CacheConfig::default()
        };
        let store = Arc::new(GateFlashStore::new(4));
        store.release();
        let store_for_build = Arc::clone(&store);
        let c = Arc::new(
            ShardedFlashCache::build(CachePolicyKind::FaceGr, config, 1, move |_| {
                Arc::clone(&store_for_build) as Arc<dyn FlashStore>
            })
            .unwrap(),
        );
        let clean = |n: u32| {
            let mut p = Page::new(PageId::new(0, n));
            p.set_lsn(Lsn(1));
            p.write_body(0, &n.to_le_bytes());
            StagedPage::with_data(p, false, true)
        };
        let mut io = IoLog::new();
        for n in 0..4u32 {
            c.insert(clean(n), &mut io).unwrap();
        }

        store.hold_reads();
        let bg = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.fetch(PageId::new(0, 1), &mut IoLog::new()).unwrap())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Evict the whole first group and reuse its slots while the reader
        // is parked inside the device read: the bytes it will get back
        // belong to a different page, and the generation check must say so.
        let mut io = IoLog::new();
        for n in 10..14u32 {
            c.insert(clean(n), &mut io).unwrap();
        }
        assert!(!c.contains(PageId::new(0, 1)), "pinned version evicted");
        store.release_reads();
        let result = bg.join().unwrap();
        assert!(
            result.is_none(),
            "a read that lost the slot to reuse must not serve foreign bytes"
        );
        assert!(
            c.stats().fetch_retries > 0,
            "the generation-validation retry path was not exercised"
        );
    }

    #[test]
    fn len_mirror_matches_shards_at_quiesce() {
        let c = sharded(CachePolicyKind::FaceGsc, 256, 4);
        let mut io = IoLog::new();
        for n in 0..100u32 {
            c.insert(data_page(n), &mut io).unwrap();
        }
        // The lock-free mirror agrees with a locked sweep of the shards.
        let swept: usize = c.shards.iter().map(|s| s.read().len()).sum();
        assert_eq!(c.len(), swept);
        assert_eq!(c.len(), 100);
        let info = c.crash_and_recover(Lsn(u64::MAX), &mut io);
        assert!(info.survived);
        let swept: usize = c.shards.iter().map(|s| s.read().len()).sum();
        assert_eq!(c.len(), swept, "mirror refreshed by recovery");
        c.reset_cold();
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn exclusive_fetch_path_still_serves_hits() {
        // lock_light_reads off: the classic read-under-lock fetch.
        let config = CacheConfig {
            capacity_pages: 64,
            group_size: 4,
            meta_checkpoint_interval_groups: 1_000_000,
            ..CacheConfig::default()
        };
        assert!(!config.lock_light_reads);
        let c = ShardedFlashCache::build(CachePolicyKind::FaceGsc, config, 2, |cap| {
            Arc::new(MemFlashStore::new(cap)) as Arc<dyn FlashStore>
        })
        .unwrap();
        let mut io = IoLog::new();
        for n in 0..16u32 {
            c.insert(data_page(n), &mut io).unwrap();
        }
        for n in 0..16u32 {
            let hit = c
                .fetch(PageId::new(0, n), &mut io)
                .unwrap()
                .expect("cached");
            assert_eq!(hit.data.unwrap().read_body(0, 4), &n.to_le_bytes());
        }
        assert_eq!(c.stats().fetch_retries, 0);
        assert_eq!(c.stats().hits, 16);
    }

    fn clean_page(n: u32) -> StagedPage {
        let mut p = Page::new(PageId::new(0, n));
        p.set_lsn(Lsn(n as u64 + 1));
        p.write_body(0, &n.to_le_bytes());
        StagedPage::with_data(p, false, true)
    }

    fn ghosted(kind: CachePolicyKind, capacity: usize, shards: usize) -> ShardedFlashCache {
        let config = CacheConfig {
            capacity_pages: capacity,
            group_size: 4,
            meta_checkpoint_interval_groups: 1_000_000,
            ghost_admission: true,
            ..CacheConfig::default()
        };
        ShardedFlashCache::build(kind, config, shards, |cap| {
            Arc::new(MemFlashStore::new(cap)) as Arc<dyn FlashStore>
        })
        .unwrap()
    }

    #[test]
    fn ghost_admission_rejects_clean_first_touches() {
        let c = ghosted(CachePolicyKind::FaceGsc, 256, 4);
        let mut io = IoLog::new();
        // Clean one-touch pages: every insert is filtered, no flash writes.
        for n in 0..32u32 {
            let out = c.insert(clean_page(n), &mut io).unwrap();
            assert!(!out.cached, "clean first touch must be filtered");
            assert!(!c.contains(PageId::new(0, n)));
        }
        c.sync(&mut io).unwrap();
        assert_eq!(c.flash_pages_written(), 0, "one-touch pages cost nothing");
        let stats = c.stats();
        assert_eq!(stats.admission_filtered, 32);
        assert_eq!(stats.admission_ghost_hits, 0);
        assert_eq!(stats.flash_pages_written, 0);

        // The comeback earns the write.
        for n in 0..32u32 {
            let out = c.insert(clean_page(n), &mut io).unwrap();
            assert!(out.cached, "ghost re-reference must be admitted");
            assert!(c.contains(PageId::new(0, n)));
        }
        c.sync(&mut io).unwrap();
        assert!(c.flash_pages_written() >= 32);
        assert_eq!(c.stats().admission_ghost_hits, 32);
    }

    #[test]
    fn ghost_admission_never_rejects_dirty_pages() {
        let c = ghosted(CachePolicyKind::FaceGsc, 256, 4);
        let mut io = IoLog::new();
        for n in 0..16u32 {
            // data_page() stages dirty pages: the only up-to-date copy.
            let out = c.insert(data_page(n), &mut io).unwrap();
            assert!(out.cached, "a dirty page must always be absorbed");
            assert!(c.contains(PageId::new(0, n)));
        }
        assert_eq!(c.stats().admission_filtered, 0);
    }

    #[test]
    fn disk_fetch_notification_does_not_spend_the_ghost_touch() {
        // A disk fetch followed by the same page's clean buffer eviction is
        // ONE logical touch for an eviction-time policy. If the fetch
        // notification recorded into the ghost, the eviction would read as a
        // re-reference and every one-touch scan page would be admitted —
        // exactly what the filter exists to prevent.
        let c = ghosted(CachePolicyKind::FaceGsc, 256, 4);
        let mut io = IoLog::new();
        for n in 0..8u32 {
            let page = PageId::new(0, n);
            assert!(!c.on_fetched_from_disk(page, &mut io).unwrap().cached);
            let out = c.insert(clean_page(n), &mut io).unwrap();
            assert!(
                !out.cached,
                "fetch + first eviction must still count as a first touch"
            );
            assert!(!c.contains(page));
        }
        assert_eq!(c.stats().admission_filtered, 8);
        assert_eq!(c.stats().admission_ghost_hits, 0);

        // The genuine comeback (second eviction) still earns the write.
        let out = c.insert(clean_page(0), &mut io).unwrap();
        assert!(out.cached, "second eviction is a real re-reference");
    }

    #[test]
    fn ghost_admission_gates_tac_disk_fetches() {
        let c = ghosted(CachePolicyKind::Tac, 64, 1);
        let mut io = IoLog::new();
        let page = PageId::new(0, 0);
        // The filters compose: odd touches are ghosted (each pass-through
        // consumes the ghost entry), even touches reach TAC and heat the
        // extent — so with TAC's threshold of two the fourth touch caches.
        assert!(!c.on_fetched_from_disk(page, &mut io).unwrap().cached); // ghosted
        assert!(!c.on_fetched_from_disk(page, &mut io).unwrap().cached); // TAC heat 1
        assert!(!c.on_fetched_from_disk(page, &mut io).unwrap().cached); // ghosted
        let out = c.on_fetched_from_disk(page, &mut io).unwrap(); // TAC heat 2
        assert!(out.cached, "heat accumulated after ghost admission");
        assert_eq!(c.stats().admission_filtered, 2);
        assert_eq!(c.stats().admission_ghost_hits, 2);
    }

    #[test]
    fn s3fifo_shards_round_trip_and_recover() {
        let config = CacheConfig {
            capacity_pages: 256,
            group_size: 4,
            meta_checkpoint_interval_groups: 1_000_000,
            lock_light_reads: true,
            ..CacheConfig::default()
        };
        let c = ShardedFlashCache::build(CachePolicyKind::S3Fifo, config, 4, |cap| {
            Arc::new(MemFlashStore::new(cap)) as Arc<dyn FlashStore>
        })
        .unwrap();
        assert_eq!(c.policy_name(), "S3-FIFO");
        assert!(c.persists_dirty_pages());
        let mut io = IoLog::new();
        for n in 0..64u32 {
            assert!(
                c.insert(data_page(n), &mut io).unwrap().cached,
                "dirty absorbed"
            );
        }
        // Dirty first touches sit on probation in the small queue and would
        // demote if never touched again; a second version of each page is a
        // proven re-reference and lands in the roomy main queue.
        for n in 0..64u32 {
            assert!(
                c.insert(data_page(n), &mut io).unwrap().cached,
                "update absorbed"
            );
        }
        for n in 0..64u32 {
            let hit = c
                .fetch(PageId::new(0, n), &mut io)
                .unwrap()
                .expect("cached");
            assert_eq!(hit.data.unwrap().read_body(0, 4), &n.to_le_bytes());
        }
        c.sync(&mut io).unwrap();
        assert!(c.flash_pages_written() > 0);
        let info = c.crash_and_recover(Lsn(u64::MAX), &mut io);
        assert!(info.survived, "S3-FIFO metadata persists like FaCE's");
        for n in 0..64u32 {
            assert!(c.contains(PageId::new(0, n)), "page {n} lost in crash");
        }
    }

    #[test]
    fn tac_routes_by_extent_so_temperature_accumulates() {
        let c = sharded(CachePolicyKind::Tac, 64, 4);
        let mut io = IoLog::new();
        // Two different pages of the same extent must land on the same shard
        // for the second access to cross the admission temperature.
        let a = PageId::new(0, 0);
        let b = PageId::new(0, 1);
        c.on_fetched_from_disk(a, &mut io).unwrap();
        let out = c.on_fetched_from_disk(b, &mut io).unwrap();
        assert!(out.cached, "extent heat must not be diluted across shards");
        assert!(!c.persists_dirty_pages());
    }

    #[test]
    fn lc_checkpoint_drains_across_shards() {
        let c = sharded(CachePolicyKind::Lc, 64, 4);
        let mut io = IoLog::new();
        for n in 0..20u32 {
            c.insert(data_page(n), &mut io).unwrap();
        }
        let drained = c.drain_dirty_for_checkpoint(&mut io).unwrap();
        assert_eq!(drained.len(), 20);
    }
}
