//! The Temperature-Aware Caching (TAC) baseline [Canim et al., PVLDB 2010;
//! Bhattacharjee et al., DaMoN 2011] as characterised in the paper's §2.3 and
//! Table 2.
//!
//! TAC differs from FaCE along every design axis:
//! * pages are cached **on entry** to the DRAM buffer (when fetched from
//!   disk), so the flash cache and the DRAM buffer hold overlapping copies;
//! * the cache is **write-through**: a dirty page evicted from DRAM is
//!   written to disk *and*, if cached, its flash copy is updated — the flash
//!   cache therefore never reduces disk writes;
//! * replacement is **temperature-based**: accesses are counted per fixed-size
//!   extent and cold-extent pages are preferred victims;
//! * the slot directory is maintained persistently in flash, costing two
//!   additional random flash writes (invalidate + validate) per admission or
//!   replacement (paper §4.1).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use face_pagestore::{DeviceResult, Lsn, PageId};

use crate::io::IoLog;
use crate::policy::{FlashCache, PageSupplier};
use crate::store::FlashStore;
use crate::types::{
    CacheConfig, CacheRecoveryInfo, CacheStatCounters, CacheStats, FetchPin, FlashFetch,
    InsertOutcome, QuarantineOutcome, SlotGenerations, StagedPage,
};

#[derive(Debug, Clone, Copy)]
struct TacMeta {
    slot: usize,
    lsn: Lsn,
    last_access: u64,
    /// Whether this entry's slot has been written with this page's data.
    /// Admission on a disk fetch records metadata only; serving the old
    /// occupant of a recycled slot would be a correctness bug.
    has_data: bool,
}

/// The TAC flash cache.
pub struct TacCache {
    config: CacheConfig,
    store: Arc<dyn FlashStore>,
    map: HashMap<PageId, TacMeta>,
    /// Access counts per extent (extent = `tac_extent_pages` consecutive
    /// pages of a file), the "temperature".
    extent_heat: HashMap<u64, u32>,
    free_slots: Vec<usize>,
    clock: u64,
    /// Per-slot version counters for the lock-light fetch protocol. TAC
    /// writes slots in place (admission and write-through refresh), so the
    /// counter bumps on every slot write as well as on eviction.
    generations: SlotGenerations,
    /// Slots removed from rotation after repeated device failures. RAM-only
    /// tombstones (cleared by restart); a quarantined slot never re-enters
    /// `free_slots`. TAC copies are never dirty, so quarantine never needs
    /// an evacuation — the disk always has the authoritative copy.
    quarantined: HashSet<usize>,
    /// Dirty write-through pages whose flash refresh failed. The insert
    /// returns an error in that case, losing its outcome, so the page rides
    /// here for the caller to drain and persist WAL-guarded.
    write_fallout: Vec<StagedPage>,
    stats: CacheStatCounters,
}

impl TacCache {
    /// Create a TAC cache over `store`.
    pub fn new(config: CacheConfig, store: Arc<dyn FlashStore>) -> Self {
        assert!(config.capacity_pages > 0, "flash cache needs capacity");
        assert!(
            store.capacity() >= config.capacity_pages,
            "flash store smaller than configured capacity"
        );
        assert!(config.tac_extent_pages > 0, "extent must hold pages");
        let free_slots = (0..config.capacity_pages).rev().collect();
        let generations = SlotGenerations::new(config.capacity_pages);
        Self {
            config,
            store,
            map: HashMap::new(),
            extent_heat: HashMap::new(),
            free_slots,
            clock: 0,
            generations,
            quarantined: HashSet::new(),
            write_fallout: Vec::new(),
            stats: CacheStatCounters::default(),
        }
    }

    fn bump_generation(&mut self, slot: usize) {
        self.generations.bump(slot);
    }

    fn extent_of(&self, page: PageId) -> u64 {
        page.to_u64() / self.config.tac_extent_pages as u64
    }

    fn heat_of(&self, page: PageId) -> u32 {
        *self.extent_heat.get(&self.extent_of(page)).unwrap_or(&0)
    }

    fn warm_up(&mut self, page: PageId) {
        let extent = self.extent_of(page);
        *self.extent_heat.entry(extent).or_insert(0) += 1;
    }

    /// Persistent slot-directory maintenance: one invalidation write plus one
    /// validation write, both random (paper §4.1).
    fn charge_metadata_update(&mut self, io: &mut IoLog) {
        io.flash_write_rand(1);
        io.flash_write_rand(1);
        self.stats.metadata_flushes.inc();
    }

    /// Evict a victim chosen by temperature (coldest extent first, LRU as the
    /// tie-break within the sampled candidates). TAC copies are never dirty
    /// (write-through), so eviction needs no disk write.
    fn evict_victim(&mut self, io: &mut IoLog) {
        let victim = {
            let candidates = lru_sample_victim(&self.map, 16, |m| m.last_access);
            candidates
                .into_iter()
                .min_by_key(|p| (self.heat_of(*p), self.map[p].last_access))
        };
        if let Some(victim) = victim {
            let meta = self.map.remove(&victim).expect("victim cached");
            self.bump_generation(meta.slot);
            self.free_slots.push(meta.slot);
            self.stats.staged_out.inc();
            self.charge_metadata_update(io);
        }
    }

    fn admit(
        &mut self,
        page: PageId,
        lsn: Lsn,
        data: Option<&face_pagestore::Page>,
        io: &mut IoLog,
    ) -> DeviceResult<()> {
        if self.free_slots.is_empty() {
            self.evict_victim(io);
        }
        let Some(slot) = self.free_slots.pop() else {
            return Ok(());
        };
        io.flash_write_rand(1);
        self.charge_metadata_update(io);
        self.bump_generation(slot);
        let has_data = if let Some(d) = data {
            if let Err(e) = self.store.write_slot(slot, d) {
                // Nothing was mapped yet and the page is clean on disk:
                // return the slot to rotation and surface the error.
                self.free_slots.push(slot);
                return Err(e);
            }
            true
        } else {
            false
        };
        self.clock += 1;
        self.map.insert(
            page,
            TacMeta {
                slot,
                lsn,
                last_access: self.clock,
                has_data,
            },
        );
        self.stats.cached_inserts.inc();
        Ok(())
    }
}

impl FlashCache for TacCache {
    fn policy_name(&self) -> &'static str {
        "TAC"
    }

    fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn fetch(&mut self, page: PageId, io: &mut IoLog) -> DeviceResult<Option<FlashFetch>> {
        self.stats.lookups.inc();
        self.warm_up(page);
        let Some(meta) = self.map.get_mut(&page) else {
            return Ok(None);
        };
        self.clock += 1;
        meta.last_access = self.clock;
        let meta = *meta;
        self.stats.hits.inc();
        io.flash_read_rand(1);
        Ok(Some(FlashFetch {
            data: if meta.has_data {
                self.store.read_slot(meta.slot)?
            } else {
                None
            },
            // Write-through: the cached copy is never newer than disk.
            dirty: false,
            lsn: meta.lsn,
        }))
    }

    fn fetch_pin(&mut self, page: PageId, retry: bool, io: &mut IoLog) -> Option<FetchPin> {
        if retry {
            self.stats.fetch_retries.inc();
        } else {
            self.stats.lookups.inc();
            self.warm_up(page);
        }
        let meta = self.map.get_mut(&page)?;
        self.clock += 1;
        meta.last_access = self.clock;
        let meta = *meta;
        if !retry {
            self.stats.hits.inc();
        }
        io.flash_read_rand(1);
        Some(FetchPin {
            slot: meta.slot,
            // Write-through: the cached copy is never newer than disk.
            dirty: false,
            lsn: meta.lsn,
            generation: self.generations.current(meta.slot),
            frame: None,
            // Metadata-only admissions (on-entry, before any data write)
            // have nothing on the device for this page.
            data_expected: meta.has_data,
        })
    }

    fn fetch_validate(&self, slot: usize, generation: u64) -> bool {
        self.generations.check(slot, generation)
    }

    fn insert(
        &mut self,
        staged: StagedPage,
        _supplier: &mut dyn PageSupplier,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        self.stats.inserts.inc();
        if staged.dirty {
            self.stats.dirty_inserts.inc();
        }
        let mut outcome = InsertOutcome::default();
        if staged.dirty {
            // Write-through: the dirty page always goes to disk, so TAC never
            // reduces the disk write traffic (counted as a stage-out so the
            // write-reduction metric reflects that).
            io.disk_write(staged.page);
            outcome.wrote_through_to_disk = true;
            self.stats.staged_out_to_disk.inc();
            // And, if a flash copy exists, it is refreshed in place.
            if let Some(meta) = self.map.get_mut(&staged.page) {
                meta.lsn = staged.lsn;
                if staged.data.is_some() {
                    meta.has_data = true;
                }
                let slot = meta.slot;
                io.flash_write_rand(1);
                self.charge_metadata_update(io);
                self.bump_generation(slot);
                if let Some(d) = &staged.data {
                    if let Err(e) = self.store.write_slot(slot, d) {
                        // The in-place refresh may have torn the flash copy;
                        // drop the (clean) entry — disk stays authoritative.
                        // Returning an error loses the write-through outcome,
                        // so the page rides the fallout buffer to disk.
                        let meta = self.map.remove(&staged.page).expect("still cached");
                        self.bump_generation(meta.slot);
                        self.free_slots.push(meta.slot);
                        self.write_fallout.push(StagedPage {
                            dirty: true,
                            fdirty: false,
                            ..staged
                        });
                        return Err(e);
                    }
                }
                outcome.cached = true;
                self.stats.cached_inserts.inc();
            }
        } else {
            // Clean pages leaving the DRAM buffer are not cached on exit —
            // TAC caches on entry.
            outcome.cached = self.map.contains_key(&staged.page);
        }
        Ok(outcome)
    }

    fn on_fetched_from_disk(
        &mut self,
        page: PageId,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        self.warm_up(page);
        let mut outcome = InsertOutcome::default();
        if self.map.contains_key(&page) {
            outcome.cached = true;
            return Ok(outcome);
        }
        // Admit only pages from sufficiently warm extents.
        if self.heat_of(page) >= self.config.tac_admission_temperature {
            self.admit(page, Lsn::ZERO, None, io)?;
            outcome.cached = true;
        }
        Ok(outcome)
    }

    fn sync(&mut self, _io: &mut IoLog) -> DeviceResult<()> {
        Ok(())
    }

    fn take_write_fallout(&mut self) -> Vec<StagedPage> {
        std::mem::take(&mut self.write_fallout)
    }

    fn quarantine_slot(&mut self, slot: usize, _io: &mut IoLog) -> QuarantineOutcome {
        let mut out = QuarantineOutcome::default();
        if slot >= self.config.capacity_pages || !self.quarantined.insert(slot) {
            return out;
        }
        out.quarantined = true;
        self.bump_generation(slot);
        self.free_slots.retain(|&s| s != slot);
        if let Some((&page, _)) = self.map.iter().find(|(_, m)| m.slot == slot) {
            // TAC copies are never dirty, so dropping the resident is safe:
            // the next fetch misses to disk, which has the current version.
            self.map.remove(&page);
            out.removed = Some(page);
        }
        out
    }

    fn persists_dirty_pages(&self) -> bool {
        // Nothing in the cache is ever dirty, so checkpoints need no extra
        // work — but the cache also never absorbs a disk write.
        false
    }

    fn crash_and_recover(&mut self, _durable_lsn: Lsn, _io: &mut IoLog) -> CacheRecoveryInfo {
        // TAC maintains its slot directory persistently in flash, so its
        // clean cached copies would in principle survive. The reproduction
        // models the conservative outcome the paper measures against: the
        // cache restarts cold and only correctness-neutral clean copies are
        // lost.
        self.map.clear();
        self.extent_heat.clear();
        self.free_slots = (0..self.config.capacity_pages).rev().collect();
        // Quarantine tombstones are RAM-only and clear with the restart.
        self.quarantined.clear();
        self.write_fallout.clear();
        CacheRecoveryInfo::default()
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn capacity(&self) -> usize {
        self.config.capacity_pages
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Return up to `sample` keys with the smallest `last_access` values — the
/// candidate set for temperature-aware victim selection.
fn lru_sample_victim<K: Eq + std::hash::Hash + Copy, V>(
    map: &HashMap<K, V>,
    sample: usize,
    last_access: impl Fn(&V) -> u64,
) -> Vec<K> {
    let mut entries: Vec<(u64, K)> = map.iter().map(|(k, v)| (last_access(v), *k)).collect();
    entries.sort_by_key(|(t, _)| *t);
    entries.truncate(sample);
    entries.into_iter().map(|(_, k)| k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoSupplier;
    use crate::store::NullFlashStore;

    fn pid(n: u32) -> PageId {
        PageId::new(0, n)
    }

    fn cache(capacity: usize) -> TacCache {
        let cfg = CacheConfig {
            capacity_pages: capacity,
            tac_extent_pages: 4,
            tac_admission_temperature: 2,
            ..CacheConfig::default()
        };
        TacCache::new(cfg, Arc::new(NullFlashStore::new(capacity)))
    }

    #[test]
    fn caches_on_entry_after_warming() {
        let mut c = cache(8);
        let mut io = IoLog::new();
        // First disk fetch of a cold extent: not admitted.
        let o = c.on_fetched_from_disk(pid(1), &mut io).unwrap();
        assert!(!o.cached);
        assert!(!c.contains(pid(1)));
        // Second access to the same extent crosses the admission temperature.
        let o = c.on_fetched_from_disk(pid(1), &mut io).unwrap();
        assert!(o.cached);
        assert!(c.contains(pid(1)));
        // Admission cost: page write + 2 metadata writes, all random.
        assert_eq!(io.flash_pages_written_random(), 3);
    }

    #[test]
    fn write_through_always_hits_disk() {
        let mut c = cache(8);
        let mut io = IoLog::new();
        // Warm and admit page 1.
        c.on_fetched_from_disk(pid(1), &mut io).unwrap();
        c.on_fetched_from_disk(pid(1), &mut io).unwrap();
        let mut io = IoLog::new();
        let out = c
            .insert(
                StagedPage::meta_only(pid(1), Lsn(5), true, true),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        assert!(out.wrote_through_to_disk);
        assert_eq!(io.disk_writes(), 1);
        // The flash copy was refreshed too (random write + metadata).
        assert!(io.flash_pages_written_random() >= 1);
        // Cached copies are never dirty.
        assert!(!c.fetch(pid(1), &mut io).unwrap().unwrap().dirty);
    }

    #[test]
    fn dirty_page_not_cached_if_absent() {
        let mut c = cache(8);
        let mut io = IoLog::new();
        let out = c
            .insert(
                StagedPage::meta_only(pid(9), Lsn(1), true, true),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        assert!(out.wrote_through_to_disk);
        assert!(!out.cached);
        assert!(!c.contains(pid(9)));
        // Clean exit of an uncached page does nothing at all.
        let out = c
            .insert(
                StagedPage::meta_only(pid(10), Lsn(1), false, false),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        assert!(!out.cached);
    }

    #[test]
    fn cold_extent_pages_evicted_before_hot_ones() {
        let mut c = cache(2);
        let mut io = IoLog::new();
        // Page 0 (extent 0) becomes hot: many accesses.
        for _ in 0..5 {
            c.on_fetched_from_disk(pid(0), &mut io).unwrap();
        }
        assert!(c.contains(pid(0)));
        // Page 8 (extent 2) just warm enough to admit.
        c.on_fetched_from_disk(pid(8), &mut io).unwrap();
        c.on_fetched_from_disk(pid(8), &mut io).unwrap();
        assert!(c.contains(pid(8)));
        // Page 16 (extent 4) warms up and needs a slot: the cold page 8 goes,
        // the hot page 0 stays.
        c.on_fetched_from_disk(pid(16), &mut io).unwrap();
        c.on_fetched_from_disk(pid(16), &mut io).unwrap();
        assert!(c.contains(pid(0)));
        assert!(!c.contains(pid(8)));
        assert!(c.contains(pid(16)));
        assert_eq!(c.stats().staged_out, 1);
    }

    #[test]
    fn eviction_never_writes_disk() {
        let mut c = cache(2);
        let mut io = IoLog::new();
        for p in [0u32, 4, 8, 12, 16, 20] {
            c.on_fetched_from_disk(pid(p), &mut io).unwrap();
            c.on_fetched_from_disk(pid(p), &mut io).unwrap();
        }
        assert_eq!(io.disk_writes(), 0);
        assert!(c.len() <= c.capacity());
        assert!(!c.persists_dirty_pages());
        assert!(c.drain_dirty_for_checkpoint(&mut io).unwrap().is_empty());
    }

    #[test]
    fn metadata_persistence_overhead_is_charged() {
        let mut c = cache(4);
        let mut io = IoLog::new();
        c.on_fetched_from_disk(pid(1), &mut io).unwrap();
        c.on_fetched_from_disk(pid(1), &mut io).unwrap();
        // Admission: 1 data write + 2 metadata writes.
        assert_eq!(io.flash_pages_written_random(), 3);
        assert_eq!(c.stats().metadata_flushes, 1);
    }

    #[test]
    fn fetch_misses_and_hits_update_stats() {
        let mut c = cache(4);
        let mut io = IoLog::new();
        assert!(c.fetch(pid(3), &mut io).unwrap().is_none());
        c.on_fetched_from_disk(pid(3), &mut io).unwrap();
        c.on_fetched_from_disk(pid(3), &mut io).unwrap();
        assert!(c.fetch(pid(3), &mut io).unwrap().is_some());
        assert_eq!(c.stats().lookups, 2);
        assert_eq!(c.stats().hits, 1);
        c.reset_stats();
        assert_eq!(c.stats().lookups, 0);
    }
}
