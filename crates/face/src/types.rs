//! Shared types for the flash-cache policies.

use std::sync::Arc;

pub use face_pagestore::Counter;
use face_pagestore::{Lsn, Page, PageId};
use serde::{Deserialize, Serialize};

use crate::destage::PendingGroupWrite;

/// A page handed to the flash cache by the DRAM buffer (eviction or
/// checkpoint flush) or pulled from the DRAM LRU tail by Group Second Chance.
///
/// The body travels behind an [`Arc`]: a page staged into a pending group,
/// queued for destaging and finally written to the flash store or the disk is
/// one shared 4 KiB frame, not a chain of copies. Cloning a `StagedPage` is
/// a pointer bump.
#[derive(Debug, Clone)]
pub struct StagedPage {
    /// The page id.
    pub page: PageId,
    /// The pageLSN of this version.
    pub lsn: Lsn,
    /// Newer than the disk copy.
    pub dirty: bool,
    /// Newer than the flash copy (false means an identical copy may already
    /// be cached).
    pub fdirty: bool,
    /// The page contents. `None` in metadata-only simulation mode.
    pub data: Option<Arc<Page>>,
}

impl StagedPage {
    /// A metadata-only staged page (simulation mode).
    pub fn meta_only(page: PageId, lsn: Lsn, dirty: bool, fdirty: bool) -> Self {
        Self {
            page,
            lsn,
            dirty,
            fdirty,
            data: None,
        }
    }

    /// A staged page carrying real data (the page is moved into a shared
    /// frame, not copied again downstream).
    pub fn with_data(page: Page, dirty: bool, fdirty: bool) -> Self {
        Self {
            page: page.id(),
            lsn: page.lsn(),
            dirty,
            fdirty,
            data: Some(Arc::new(page)),
        }
    }

    /// A staged page over an already-shared frame.
    pub fn with_shared(page: Arc<Page>, dirty: bool, fdirty: bool) -> Self {
        Self {
            page: page.id(),
            lsn: page.lsn(),
            dirty,
            fdirty,
            data: Some(page),
        }
    }
}

/// A cached version pinned under the shard lock for an off-lock flash read —
/// the first half of the lock-light fetch protocol
/// ([`crate::policy::FlashCache::fetch_pin`]).
///
/// The pin is *optimistic*: nothing prevents the slot from being evicted or
/// reused after the lock is dropped. `generation` is the slot's version
/// counter at pin time; the caller performs the device read with no lock
/// held and then revalidates with
/// [`crate::policy::FlashCache::fetch_validate`] — a mismatch means the
/// bytes read may belong to a different version (or page) and must be
/// discarded and the lookup retried.
#[derive(Debug, Clone)]
pub struct FetchPin {
    /// The flash slot holding the pinned version.
    pub slot: usize,
    /// The pinned version's pageLSN.
    pub lsn: Lsn,
    /// Whether the pinned version is newer than the disk copy.
    pub dirty: bool,
    /// The slot's generation counter at pin time.
    pub generation: u64,
    /// A RAM-resident frame for the version (pending batch or in-flight
    /// deferred group). When present the caller needs no device read at all
    /// — the shared frame is immutable and outlives any eviction race.
    pub frame: Option<Arc<Page>>,
    /// Whether a device read is expected to yield data for this version.
    /// `false` for stores/entries without page bodies (the caller serves the
    /// hit metadata-only, exactly like the locked path).
    pub data_expected: bool,
}

/// Per-slot version counters backing the lock-light fetch protocol, shared
/// by every policy: [`SlotGenerations::bump`] whenever a slot's occupant (or
/// its bytes, for in-place-overwrite policies) changes, and
/// [`SlotGenerations::check`] to validate a pin after an off-lock device
/// read. One type so the validation rule cannot drift between policies.
#[derive(Debug)]
pub struct SlotGenerations(Vec<u64>);

impl SlotGenerations {
    /// Counters for `capacity` slots, all starting at zero.
    pub fn new(capacity: usize) -> Self {
        Self(vec![0; capacity])
    }

    /// The slot's current generation (what a [`FetchPin`] carries).
    pub fn current(&self, slot: usize) -> u64 {
        self.0[slot]
    }

    /// Invalidate outstanding pins on `slot`.
    pub fn bump(&mut self, slot: usize) {
        self.0[slot] = self.0[slot].wrapping_add(1);
    }

    /// Whether `slot` still holds the version pinned at `generation`.
    pub fn check(&self, slot: usize, generation: u64) -> bool {
        self.0.get(slot) == Some(&generation)
    }
}

/// The result of a successful flash-cache fetch.
#[derive(Debug, Clone)]
pub struct FlashFetch {
    /// The cached copy's contents (present when the cache carries data).
    pub data: Option<Page>,
    /// Whether the cached copy is newer than the disk copy.
    pub dirty: bool,
    /// The pageLSN of the cached copy.
    pub lsn: Lsn,
}

/// What happened when a page was handed to the cache.
#[derive(Debug, Clone, Default)]
pub struct InsertOutcome {
    /// The page was admitted to the flash cache (metadata now references it).
    pub cached: bool,
    /// The inserted page itself was written through to disk (TAC).
    pub wrote_through_to_disk: bool,
    /// Dirty pages staged *out* of the flash cache to disk as a consequence
    /// of this insert. In data-carrying mode each carries its contents; the
    /// caller must write them to the disk store.
    pub staged_out: Vec<StagedPage>,
    /// With [`CacheConfig::defer_group_writes`] set, a filled replacement
    /// group is *returned* here instead of being written under the caller's
    /// lock. The caller must perform the physical batch write
    /// ([`PendingGroupWrite::apply`]) outside any cache lock and then seal
    /// its metadata ([`crate::policy::FlashCache::complete_group`]).
    pub pending_group: Option<PendingGroupWrite>,
}

/// What [`crate::policy::FlashCache::evacuate_dirty`] salvaged. Best-effort
/// by contract: evacuation runs when the device is suspect, so unreadable
/// dirty pages are counted instead of failing the sweep.
#[derive(Debug, Default)]
pub struct Evacuation {
    /// Every dirty valid cached page. Pages whose bytes could be produced
    /// (from RAM or a successful device read) carry `data` and must be
    /// written to disk by the caller; unreadable ones appear with
    /// `data: None` — *wound markers* the caller publishes so stale disk
    /// copies are refused until WAL redo rebuilds the page.
    pub pages: Vec<StagedPage>,
    /// Dirty valid pages whose flash bytes were unreadable (the number of
    /// `data: None` markers in `pages`).
    pub unread_dirty: u64,
}

/// What [`crate::policy::FlashCache::quarantine_slot`] displaced.
#[derive(Debug, Default)]
pub struct QuarantineOutcome {
    /// Whether the slot was newly quarantined by this call (false when it
    /// was already quarantined or out of range).
    pub quarantined: bool,
    /// The valid resident version dropped from the directory, if any.
    pub removed: Option<PageId>,
    /// A *dirty* displaced resident. With bytes (`data: Some`) the caller
    /// writes it to disk under the WAL guard; with `data: None` (see
    /// `dirty_unread`) it is a wound marker the caller publishes so stale
    /// disk copies are refused until WAL redo rebuilds the page.
    pub evacuee: Option<StagedPage>,
    /// The displaced resident was dirty but its bytes were unreadable
    /// (neither in RAM nor readable from the failing device): it must be
    /// recovered from WAL redo.
    pub dirty_unread: bool,
}

/// What a flash cache could restore of itself after a simulated crash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheRecoveryInfo {
    /// Whether any cached state survived and is usable after restart.
    pub survived: bool,
    /// Persistent metadata units read back (cache checkpoint + sealed
    /// journal groups).
    pub metadata_segments_loaded: u64,
    /// Data pages scanned to rebuild lost metadata entries.
    pub pages_scanned: u64,
    /// Cached page versions accessible after recovery.
    pub entries_restored: u64,
    /// Whether a [`crate::meta::CacheCheckpoint`] was found and loaded.
    pub checkpoint_loaded: bool,
    /// Entries loaded from the cache checkpoint snapshot.
    pub checkpoint_entries_loaded: u64,
    /// Journal records replayed from sealed groups past the checkpoint —
    /// the replay length the checkpoint cadence bounds.
    pub journal_records_replayed: u64,
    /// Journaled versions discarded because their pageLSN exceeded the WAL's
    /// durable end (reconciliation rule: flash must never run ahead of the
    /// durable log).
    pub entries_discarded_beyond_wal: u64,
}

impl CacheRecoveryInfo {
    /// Element-wise sum with `other` (merging per-shard reports). `survived`
    /// is the conjunction: the cache is warm only if every shard recovered.
    pub fn merged(&self, other: &CacheRecoveryInfo) -> CacheRecoveryInfo {
        CacheRecoveryInfo {
            survived: self.survived && other.survived,
            metadata_segments_loaded: self.metadata_segments_loaded
                + other.metadata_segments_loaded,
            pages_scanned: self.pages_scanned + other.pages_scanned,
            entries_restored: self.entries_restored + other.entries_restored,
            checkpoint_loaded: self.checkpoint_loaded || other.checkpoint_loaded,
            checkpoint_entries_loaded: self.checkpoint_entries_loaded
                + other.checkpoint_entries_loaded,
            journal_records_replayed: self.journal_records_replayed
                + other.journal_records_replayed,
            entries_discarded_beyond_wal: self.entries_discarded_beyond_wal
                + other.entries_discarded_beyond_wal,
        }
    }
}

/// Configuration for a flash cache instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in pages (flash cache bytes / 4 KiB).
    pub capacity_pages: usize,
    /// Batch size (pages) for group replacement / group second chance.
    /// The paper suggests the number of pages in a flash block, typically 64
    /// or 128.
    pub group_size: usize,
    /// Enable second chance for referenced pages (GSC).
    pub second_chance: bool,
    /// LC only: fraction of dirty pages that triggers the lazy cleaner.
    pub lc_dirty_threshold: f64,
    /// LC only: fraction the cleaner reduces the dirty share to.
    pub lc_clean_target: f64,
    /// TAC only: pages per temperature extent.
    pub tac_extent_pages: usize,
    /// TAC only: minimum extent temperature (accesses) for admission.
    pub tac_admission_temperature: u32,
    /// Cache-checkpoint cadence of the mapping-metadata journal: a
    /// [`crate::meta::CacheCheckpoint`] is written every this many sealed
    /// groups, bounding restart metadata replay to
    /// `meta_checkpoint_interval_groups × group_size` journal records.
    pub meta_checkpoint_interval_groups: usize,
    /// When set, a filled replacement group is handed back to the caller as a
    /// [`PendingGroupWrite`] instead of being written inside
    /// [`crate::policy::FlashCache::insert`]: the insert mutates only the
    /// directory and bookkeeping, and the caller performs the flash batch
    /// write off-lock (typically on a [`crate::destage::Destager`] thread)
    /// before sealing the group's journal records. Off by default: the
    /// trace-driven simulator and single-threaded callers keep the inline
    /// write-under-call contract.
    pub defer_group_writes: bool,
    /// When set, [`crate::ShardedFlashCache::fetch`] uses the lock-light
    /// read path: the version is pinned under the shard lock
    /// ([`crate::policy::FlashCache::fetch_pin`]), the lock is dropped, the
    /// flash device read runs **off-lock**, and the result is validated
    /// against the slot's generation counter
    /// ([`crate::policy::FlashCache::fetch_validate`]) — a lost eviction
    /// race retries ([`CacheStats::fetch_retries`]). Off by default: the
    /// trace-driven simulator and single-threaded callers keep the
    /// read-under-lock contract (the engine turns it on).
    pub lock_light_reads: bool,
    /// Ghost-queue admission filtering for the legacy policies (mvFIFO
    /// family, LC, TAC), applied by [`crate::ShardedFlashCache`]: a **clean**
    /// page's first touch is recorded only in a RAM-resident ghost directory
    /// and is *not* admitted (no flash write); only a re-reference while the
    /// ghost entry is live earns the flash write. Dirty pages are always
    /// admitted — rejecting them would forfeit the write absorption FaCE is
    /// built on. [`crate::CachePolicyKind::S3Fifo`] ignores this flag: its ghost
    /// queue is an integral part of the policy and always on.
    pub ghost_admission: bool,
    /// Capacity of the ghost directory in page ids (both the sharded
    /// admission filter and the S3-FIFO policy's ghost queue). `0` (default)
    /// sizes it automatically to the cache capacity, the classic S3-FIFO
    /// choice ("as many ghosts as the main cache holds objects").
    pub ghost_capacity_pages: usize,
    /// S3-FIFO only: fraction of the capacity given to the small
    /// (probationary) queue. The remainder is the main queue. Clamped so both
    /// regions hold at least one page.
    pub s3_small_fraction: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_pages: 64 * 1024, // 256 MB at 4 KiB/page
            group_size: 64,
            second_chance: false,
            lc_dirty_threshold: 0.75,
            lc_clean_target: 0.6,
            tac_extent_pages: 32,
            tac_admission_temperature: 2,
            meta_checkpoint_interval_groups: 8,
            defer_group_writes: false,
            lock_light_reads: false,
            ghost_admission: false,
            ghost_capacity_pages: 0,
            s3_small_fraction: 0.1,
        }
    }
}

impl CacheConfig {
    /// A configuration sized to `bytes` of flash, everything else default.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self {
            capacity_pages: (bytes / face_pagestore::PAGE_SIZE as u64) as usize,
            ..Self::default()
        }
    }

    /// Builder-style override of the group size.
    pub fn group_size(mut self, group_size: usize) -> Self {
        self.group_size = group_size;
        self
    }

    /// Builder-style enable of second chance.
    pub fn with_second_chance(mut self, on: bool) -> Self {
        self.second_chance = on;
        self
    }

    /// Builder-style override of the cache-checkpoint cadence (sealed groups
    /// between two [`crate::meta::CacheCheckpoint`] writes).
    pub fn meta_checkpoint_interval_groups(mut self, groups: usize) -> Self {
        self.meta_checkpoint_interval_groups = groups.max(1);
        self
    }

    /// Builder-style enable of deferred group writes (see
    /// [`CacheConfig::defer_group_writes`]).
    pub fn defer_group_writes(mut self, on: bool) -> Self {
        self.defer_group_writes = on;
        self
    }

    /// Builder-style enable of the lock-light read path (see
    /// [`CacheConfig::lock_light_reads`]).
    pub fn lock_light_reads(mut self, on: bool) -> Self {
        self.lock_light_reads = on;
        self
    }

    /// Builder-style enable of ghost-queue admission filtering (see
    /// [`CacheConfig::ghost_admission`]).
    pub fn ghost_admission(mut self, on: bool) -> Self {
        self.ghost_admission = on;
        self
    }

    /// Builder-style override of the ghost-directory capacity (see
    /// [`CacheConfig::ghost_capacity_pages`]; `0` = auto-size to capacity).
    pub fn ghost_capacity_pages(mut self, pages: usize) -> Self {
        self.ghost_capacity_pages = pages;
        self
    }

    /// Builder-style override of the S3-FIFO small-queue fraction.
    pub fn s3_small_fraction(mut self, fraction: f64) -> Self {
        self.s3_small_fraction = fraction;
        self
    }

    /// The effective ghost-directory capacity: the explicit setting, or the
    /// cache capacity when left at `0`.
    pub fn effective_ghost_capacity(&self) -> usize {
        if self.ghost_capacity_pages == 0 {
            self.capacity_pages.max(1)
        } else {
            self.ghost_capacity_pages
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_pages as u64 * face_pagestore::PAGE_SIZE as u64
    }
}

/// Counters describing flash-cache activity. The paper's Tables 3 and 4 are
/// derived from these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookup attempts (every DRAM miss consults the cache).
    pub lookups: u64,
    /// Lookups that found a valid cached copy (flash hits).
    pub hits: u64,
    /// Pages handed to the cache from the DRAM buffer.
    pub inserts: u64,
    /// Inserts admitted (enqueued / written into the cache).
    pub cached_inserts: u64,
    /// Inserts skipped because an identical copy was already cached
    /// (conditional enqueue of clean pages).
    pub skipped_inserts: u64,
    /// Dirty inserts (dirty flag set when handed over).
    pub dirty_inserts: u64,
    /// Previous versions invalidated by unconditional enqueues.
    pub invalidations: u64,
    /// Pages staged out of the cache (dequeued / replaced).
    pub staged_out: u64,
    /// Staged-out pages that had to be written to disk (dirty and valid).
    pub staged_out_to_disk: u64,
    /// Pages given a second chance (re-enqueued by GSC).
    pub second_chances: u64,
    /// Dirty pages pulled from the DRAM LRU tail to fill a GSC batch.
    pub pulled_from_dram: u64,
    /// Pages cleaned by LC's lazy cleaner.
    pub lazily_cleaned: u64,
    /// Persistent metadata segment flushes.
    pub metadata_flushes: u64,
    /// Lock-light fetches that lost the eviction race: the slot's generation
    /// changed between pinning the version and finishing the off-lock flash
    /// read, so the read was discarded and the lookup retried.
    pub fetch_retries: u64,
    /// Physical pages written to the flash device — the flash-wear cost every
    /// hit-ratio figure must be priced against. Counted by the
    /// [`crate::store::FlashStore`] implementations themselves (so batch,
    /// deferred and destaged writes are all captured) and surfaced by
    /// [`crate::ShardedFlashCache::stats`] without taking any shard lock.
    /// Individual policies leave this at zero; it is a device-level tally.
    pub flash_pages_written: u64,
    /// Clean first-touch inserts the ghost-queue admission filter rejected —
    /// flash writes *not* paid for one-touch pages.
    pub admission_filtered: u64,
    /// Inserts admitted because the page's id was found in the ghost
    /// directory (a filtered page proved it was no one-hit wonder).
    pub admission_ghost_hits: u64,
}

/// Atomic twin of [`CacheStats`], held inside each policy so that counters
/// can be bumped through `&self`/`&mut self` alike and snapshotted without
/// taking the cache's structural lock.
#[derive(Debug, Default)]
pub struct CacheStatCounters {
    /// See [`CacheStats::lookups`].
    pub lookups: Counter,
    /// See [`CacheStats::hits`].
    pub hits: Counter,
    /// See [`CacheStats::inserts`].
    pub inserts: Counter,
    /// See [`CacheStats::cached_inserts`].
    pub cached_inserts: Counter,
    /// See [`CacheStats::skipped_inserts`].
    pub skipped_inserts: Counter,
    /// See [`CacheStats::dirty_inserts`].
    pub dirty_inserts: Counter,
    /// See [`CacheStats::invalidations`].
    pub invalidations: Counter,
    /// See [`CacheStats::staged_out`].
    pub staged_out: Counter,
    /// See [`CacheStats::staged_out_to_disk`].
    pub staged_out_to_disk: Counter,
    /// See [`CacheStats::second_chances`].
    pub second_chances: Counter,
    /// See [`CacheStats::pulled_from_dram`].
    pub pulled_from_dram: Counter,
    /// See [`CacheStats::lazily_cleaned`].
    pub lazily_cleaned: Counter,
    /// See [`CacheStats::metadata_flushes`].
    pub metadata_flushes: Counter,
    /// See [`CacheStats::fetch_retries`].
    pub fetch_retries: Counter,
    /// See [`CacheStats::admission_filtered`].
    pub admission_filtered: Counter,
    /// See [`CacheStats::admission_ghost_hits`].
    pub admission_ghost_hits: Counter,
}

impl CacheStatCounters {
    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.get(),
            hits: self.hits.get(),
            inserts: self.inserts.get(),
            cached_inserts: self.cached_inserts.get(),
            skipped_inserts: self.skipped_inserts.get(),
            dirty_inserts: self.dirty_inserts.get(),
            invalidations: self.invalidations.get(),
            staged_out: self.staged_out.get(),
            staged_out_to_disk: self.staged_out_to_disk.get(),
            second_chances: self.second_chances.get(),
            pulled_from_dram: self.pulled_from_dram.get(),
            lazily_cleaned: self.lazily_cleaned.get(),
            metadata_flushes: self.metadata_flushes.get(),
            fetch_retries: self.fetch_retries.get(),
            // Device-level tally, owned by the flash stores (see
            // [`CacheStats::flash_pages_written`]).
            flash_pages_written: 0,
            admission_filtered: self.admission_filtered.get(),
            admission_ghost_hits: self.admission_ghost_hits.get(),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.restore(CacheStats::default());
    }

    /// Overwrite every counter from a snapshot (crash-recovery rebuilds a
    /// policy instance but keeps its lifetime statistics).
    pub fn restore(&self, s: CacheStats) {
        self.lookups.set(s.lookups);
        self.hits.set(s.hits);
        self.inserts.set(s.inserts);
        self.cached_inserts.set(s.cached_inserts);
        self.skipped_inserts.set(s.skipped_inserts);
        self.dirty_inserts.set(s.dirty_inserts);
        self.invalidations.set(s.invalidations);
        self.staged_out.set(s.staged_out);
        self.staged_out_to_disk.set(s.staged_out_to_disk);
        self.second_chances.set(s.second_chances);
        self.pulled_from_dram.set(s.pulled_from_dram);
        self.lazily_cleaned.set(s.lazily_cleaned);
        self.metadata_flushes.set(s.metadata_flushes);
        self.fetch_retries.set(s.fetch_retries);
        self.admission_filtered.set(s.admission_filtered);
        self.admission_ghost_hits.set(s.admission_ghost_hits);
    }
}

impl From<CacheStats> for CacheStatCounters {
    fn from(s: CacheStats) -> Self {
        let c = Self::default();
        c.restore(s);
        c
    }
}

impl CacheStats {
    /// Element-wise sum with `other` (merging per-shard snapshots).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups + other.lookups,
            hits: self.hits + other.hits,
            inserts: self.inserts + other.inserts,
            cached_inserts: self.cached_inserts + other.cached_inserts,
            skipped_inserts: self.skipped_inserts + other.skipped_inserts,
            dirty_inserts: self.dirty_inserts + other.dirty_inserts,
            invalidations: self.invalidations + other.invalidations,
            staged_out: self.staged_out + other.staged_out,
            staged_out_to_disk: self.staged_out_to_disk + other.staged_out_to_disk,
            second_chances: self.second_chances + other.second_chances,
            pulled_from_dram: self.pulled_from_dram + other.pulled_from_dram,
            lazily_cleaned: self.lazily_cleaned + other.lazily_cleaned,
            metadata_flushes: self.metadata_flushes + other.metadata_flushes,
            fetch_retries: self.fetch_retries + other.fetch_retries,
            flash_pages_written: self.flash_pages_written + other.flash_pages_written,
            admission_filtered: self.admission_filtered + other.admission_filtered,
            admission_ghost_hits: self.admission_ghost_hits + other.admission_ghost_hits,
        }
    }

    /// Flash bytes written — [`CacheStats::flash_pages_written`] priced in
    /// bytes, the unit the write-economy gate compares.
    pub fn flash_bytes_written(&self) -> u64 {
        self.flash_pages_written * face_pagestore::PAGE_SIZE as u64
    }

    /// Flash hit ratio over lookups — Table 3(a) ("ratio of flash cache hits
    /// to all DRAM misses") when every DRAM miss performs a lookup.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Write-reduction ratio — Table 3(b): the share of dirty evictions from
    /// the DRAM buffer that did *not* reach the disk at this point
    /// (absorbed by the flash cache). Some of them reach disk later when
    /// staged out; that delayed, deduplicated traffic is what the paper
    /// credits as the reduction.
    pub fn write_reduction_ratio(&self) -> f64 {
        if self.dirty_inserts == 0 {
            0.0
        } else {
            1.0 - (self.staged_out_to_disk as f64 / self.dirty_inserts as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_page_constructors() {
        let meta = StagedPage::meta_only(PageId::new(1, 2), Lsn(3), true, false);
        assert!(meta.data.is_none());
        assert!(meta.dirty);
        assert!(!meta.fdirty);

        let mut page = Page::new(PageId::new(4, 5));
        page.set_lsn(Lsn(9));
        let with_data = StagedPage::with_data(page, false, true);
        assert_eq!(with_data.page, PageId::new(4, 5));
        assert_eq!(with_data.lsn, Lsn(9));
        assert!(with_data.data.is_some());
    }

    #[test]
    fn config_capacity_conversions() {
        let cfg = CacheConfig::with_capacity_bytes(2 * 1024 * 1024 * 1024);
        assert_eq!(cfg.capacity_pages, 524_288);
        assert_eq!(cfg.capacity_bytes(), 2 * 1024 * 1024 * 1024);
        let cfg = cfg.group_size(128).with_second_chance(true);
        assert_eq!(cfg.group_size, 128);
        assert!(cfg.second_chance);
    }

    #[test]
    fn default_config_matches_paper_constants() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.meta_checkpoint_interval_groups, 8);
        assert!(cfg.group_size == 64 || cfg.group_size == 128);
    }

    #[test]
    fn stats_ratios() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.write_reduction_ratio(), 0.0);
        s.lookups = 100;
        s.hits = 70;
        s.dirty_inserts = 50;
        s.staged_out_to_disk = 20;
        assert!((s.hit_ratio() - 0.7).abs() < 1e-9);
        assert!((s.write_reduction_ratio() - 0.6).abs() < 1e-9);
        // More disk writes than dirty inserts clamps to zero reduction.
        s.staged_out_to_disk = 80;
        assert_eq!(s.write_reduction_ratio(), 0.0);
    }

    #[test]
    fn counters_snapshot_and_merge() {
        let c = CacheStatCounters::default();
        c.lookups.add(10);
        c.hits.inc();
        c.hits.inc();
        c.second_chances.inc();
        c.second_chances.sub(1);
        let snap = c.snapshot();
        assert_eq!(snap.lookups, 10);
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.second_chances, 0);

        let other = CacheStats {
            lookups: 5,
            hits: 1,
            ..CacheStats::default()
        };
        let merged = snap.merged(&other);
        assert_eq!(merged.lookups, 15);
        assert_eq!(merged.hits, 3);

        let restored = CacheStatCounters::from(merged);
        assert_eq!(restored.snapshot(), merged);
        restored.reset();
        assert_eq!(restored.snapshot(), CacheStats::default());
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(CacheStatCounters::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.lookups.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.snapshot().lookups, 4000);
    }

    #[test]
    fn insert_outcome_default_is_empty() {
        let o = InsertOutcome::default();
        assert!(!o.cached);
        assert!(!o.wrote_through_to_disk);
        assert!(o.staged_out.is_empty());
    }
}
