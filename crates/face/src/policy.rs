//! The [`FlashCache`] trait implemented by every caching policy, and a
//! factory for building a policy by name.

use std::sync::Arc;

use face_pagestore::{DeviceResult, PageId};

use crate::io::IoLog;
use crate::lc::LcCache;
use crate::mvfifo::MvFifoCache;
use crate::s3fifo::S3FifoCache;
use crate::store::FlashStore;
use crate::tac::TacCache;
use crate::types::{
    CacheConfig, CacheRecoveryInfo, CacheStats, Evacuation, FetchPin, FlashFetch, InsertOutcome,
    QuarantineOutcome, StagedPage,
};

/// Supplies additional dirty pages from the DRAM buffer's LRU tail so Group
/// Second Chance can fill a flash write batch (paper §3.3 — analogous to the
/// Linux writeback daemons / Oracle DBWR pulling victims in batches).
pub trait PageSupplier {
    /// The next dirty page pulled from the DRAM LRU tail, or `None` if the
    /// buffer has no more dirty pages to give.
    fn next_dirty_page(&mut self) -> Option<StagedPage>;
}

/// A supplier that never provides pages (used by non-GSC policies, unit tests
/// and checkpoint-time inserts).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSupplier;

impl PageSupplier for NoSupplier {
    fn next_dirty_page(&mut self) -> Option<StagedPage> {
        None
    }
}

impl<F> PageSupplier for F
where
    F: FnMut() -> Option<StagedPage>,
{
    fn next_dirty_page(&mut self) -> Option<StagedPage> {
        self()
    }
}

/// A second-level cache on a flash device, sitting between the DRAM buffer
/// pool and the disk array.
///
/// `Sync` is required because [`crate::ShardedFlashCache`] exposes the
/// `&self` surface (lookups, validation, stats) through shared `RwLock` read
/// guards — implementations keep their mutable state behind `&mut self` and
/// their counters atomic, so this is free.
pub trait FlashCache: Send + Sync {
    /// Human-readable policy name (used in reports).
    fn policy_name(&self) -> &'static str;

    /// Whether a valid copy of `page` is cached.
    fn contains(&self, page: PageId) -> bool;

    /// Look up `page` on a DRAM miss. On a hit the cached copy is returned
    /// (with data when the backing store carries data) and the physical flash
    /// read is recorded in `io`. `Err` means the device failed the read —
    /// distinct from `Ok(None)`, a plain miss.
    ///
    /// This is the classic **read-under-lock** path: the device read runs
    /// inside the call, so a caller serializing on a shard mutex holds it
    /// across the read. The lock-light alternative is the
    /// [`FlashCache::fetch_pin`] / [`FlashCache::fetch_validate`] pair.
    fn fetch(&mut self, page: PageId, io: &mut IoLog) -> DeviceResult<Option<FlashFetch>>;

    /// First half of the lock-light fetch: resolve `page` to its slot, mark
    /// it referenced, charge the flash read in `io`, and return a
    /// [`FetchPin`] carrying the slot's generation — **without touching the
    /// device**. The caller drops the shard lock, performs the read, and
    /// revalidates with [`FlashCache::fetch_validate`].
    ///
    /// `retry` is true when this lookup repeats after a failed validation:
    /// the retry is counted in [`CacheStats::fetch_retries`] instead of
    /// being double-counted as a fresh lookup/hit. (A pinned hit whose
    /// retry then misses stays counted as a hit — the version existed at
    /// pin time; the race is visible in the retry counter.)
    fn fetch_pin(&mut self, page: PageId, retry: bool, io: &mut IoLog) -> Option<FetchPin>;

    /// Second half of the lock-light fetch: whether `slot` still holds the
    /// version pinned at `generation`. `false` means the slot was evicted or
    /// reused while the caller read the device off-lock — the bytes may
    /// belong to a different version (or page) and must be discarded.
    fn fetch_validate(&self, slot: usize, generation: u64) -> bool;

    /// Hand a page leaving the DRAM buffer (eviction or checkpoint flush) to
    /// the cache. `supplier` lets Group Second Chance pull extra dirty pages
    /// from the DRAM LRU tail; pass [`NoSupplier`] when that must not happen
    /// (e.g. during checkpoints).
    ///
    /// With [`crate::types::CacheConfig::defer_group_writes`] set, a filled
    /// replacement group comes back in
    /// [`InsertOutcome::pending_group`](crate::types::InsertOutcome) instead
    /// of being written here: the caller applies the batch off-lock
    /// ([`crate::destage::PendingGroupWrite::apply`]) and then calls
    /// [`FlashCache::complete_group`].
    ///
    /// An `Err` means an inline device write failed. The policy has rolled
    /// the affected entries back out of its directory (their journal records
    /// never seal); dirty pages of the failed batch are waiting in
    /// [`FlashCache::take_write_fallout`] — the caller must drain them and
    /// write them to disk (WAL-guarded), treating the inserted page as not
    /// cached.
    fn insert(
        &mut self,
        staged: StagedPage,
        supplier: &mut dyn PageSupplier,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome>;

    /// Dirty pages rolled back from failed inline flash writes, awaiting
    /// disk failover. Populated when [`FlashCache::insert`],
    /// [`FlashCache::on_fetched_from_disk`] or [`FlashCache::sync`] return a
    /// device error; the caller drains this immediately (under the same
    /// lock) and routes the pages through its stage-out-to-disk path.
    fn take_write_fallout(&mut self) -> Vec<StagedPage> {
        Vec::new()
    }

    /// Report that a deferred group's physical batch write finished: the
    /// group's journal records may now seal (become crash-durable) — never
    /// before, preserving the data-with-metadata coupling of §4.3. A no-op
    /// for policies without deferred writes and for unknown epochs
    /// (idempotent: sync may have sealed the group inline already).
    fn complete_group(&mut self, _epoch: u64, _io: &mut IoLog) {}

    /// Whether the deferred group `epoch` still owes its physical batch
    /// write (formed, not yet applied inline or completed). `false` for
    /// policies without deferred writes and for sealed/unknown epochs.
    fn group_write_pending(&self, _epoch: u64) -> bool {
        false
    }

    /// Notification that `page` was fetched from *disk* into the DRAM buffer.
    /// Only on-entry policies (TAC) react to this. A device error follows
    /// the [`FlashCache::insert`] contract (rollback + write fallout).
    fn on_fetched_from_disk(
        &mut self,
        _page: PageId,
        _io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        Ok(InsertOutcome::default())
    }

    /// Flush any buffered page batch and metadata to flash (called by
    /// checkpoints and before clean shutdown). On a device error the
    /// unflushable group is rolled back (see [`FlashCache::insert`]); drain
    /// [`FlashCache::take_write_fallout`] for its dirty pages.
    fn sync(&mut self, io: &mut IoLog) -> DeviceResult<()>;

    /// Checkpoint support for policies whose cached dirty pages are *not*
    /// part of the persistent database (LC): return every dirty cached page
    /// (with data when available) so the caller can write them to disk, and
    /// mark them clean. FaCE and TAC return nothing. A device error aborts
    /// the drain (the checkpoint fails and can be retried).
    fn drain_dirty_for_checkpoint(&mut self, _io: &mut IoLog) -> DeviceResult<Vec<StagedPage>> {
        Ok(Vec::new())
    }

    /// Evacuation support: return **every** dirty valid cached page (with
    /// data when available) so the caller can write them to disk before
    /// wiping or replacing the cache device. For FaCE this is mandatory
    /// before a cache wipe — dirty flash pages are part of the persistent
    /// database and exist nowhere else. Unlike the checkpoint drain, dirty
    /// flags are **left set**: the caller's disk writes may still fail, and
    /// clearing early would let a retried evacuation (or a later eviction)
    /// drop the only copy. A successful evacuation is followed by a wipe,
    /// which retires the flags; repeated calls are idempotent. Policies that
    /// never hold dirty pages (TAC) return nothing.
    ///
    /// Best-effort by design: evacuation runs precisely when the device is
    /// suspect, so an unreadable dirty page is *counted*
    /// ([`Evacuation::unread_dirty`]) rather than aborting the evacuation —
    /// those pages are recovered from WAL redo instead of flash.
    fn evacuate_dirty(&mut self, io: &mut IoLog) -> Evacuation {
        let _ = io;
        Evacuation::default()
    }

    /// Take `slot` out of the replacement rotation permanently (until the
    /// cache is rebuilt cold) and invalidate its resident version: the
    /// degraded-mode response to a slot that keeps failing. A clean resident
    /// is simply dropped (re-fetched from disk on next miss); a dirty
    /// resident comes back in [`QuarantineOutcome::evacuee`] for a
    /// WAL-guarded disk write — its bytes are pulled from RAM when the
    /// group is still in flight, else read from the device (the caller
    /// wraps the call in an acknowledged-I/O scope; quarantine is a rare
    /// failure-path event). The flash store is *not* trimmed: if the bytes
    /// are still readable after a crash, recovery may legitimately use them.
    fn quarantine_slot(&mut self, _slot: usize, _io: &mut IoLog) -> QuarantineOutcome {
        QuarantineOutcome::default()
    }

    /// Abort a deferred group whose physical batch write failed
    /// permanently: drop its directory entries and journal records (they
    /// never seal — exactly the crash contract: data and metadata are lost
    /// together) and return the group's dirty pages (bytes from the
    /// in-flight RAM copy) for disk failover. Idempotent for unknown
    /// epochs. A no-op for policies without deferred writes.
    fn abort_group(&mut self, _epoch: u64, _io: &mut IoLog) -> Vec<StagedPage> {
        Vec::new()
    }

    /// Whether dirty pages staged in this cache are part of the persistent
    /// database (true for FaCE: checkpoints may flush to flash and recovery
    /// may read from flash; false for LC/TAC which must checkpoint to disk).
    fn persists_dirty_pages(&self) -> bool;

    /// Simulate a crash followed by restart-time cache recovery. Volatile
    /// (RAM-resident) cache metadata is lost; whatever the policy keeps
    /// persistently in flash is restored. FaCE rebuilds its directory from
    /// the cache checkpoint plus the sealed journal groups, reconciled
    /// against the WAL: any version whose pageLSN exceeds `durable_lsn` (the
    /// durable end of the log) is discarded, because its log records are
    /// lost and serving it would diverge from redo. LC and TAC lose
    /// everything (the paper's §4.1 point: without persistent metadata the
    /// flash copies become inaccessible). Callers without a WAL pass
    /// `Lsn(u64::MAX)` to disable reconciliation.
    fn crash_and_recover(
        &mut self,
        durable_lsn: face_pagestore::Lsn,
        io: &mut IoLog,
    ) -> CacheRecoveryInfo;

    /// Activity counters.
    fn stats(&self) -> CacheStats;

    /// Reset activity counters (after warm-up).
    fn reset_stats(&self);

    /// Capacity in page slots.
    fn capacity(&self) -> usize;

    /// Occupied page slots (including invalidated old versions for mvFIFO).
    fn len(&self) -> usize;

    /// Whether the cache currently holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which caching policy to run. `None` disables the flash cache entirely
/// (the HDD-only and SSD-only configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CachePolicyKind {
    /// No flash cache.
    None,
    /// Base FaCE: mvFIFO, per-page append writes.
    Face,
    /// FaCE with Group Replacement (batched dequeue/enqueue).
    FaceGr,
    /// FaCE with Group Second Chance.
    FaceGsc,
    /// S3-FIFO: small/main static queues plus a ghost admission directory
    /// (quick demotion of one-hit wonders, no flash write for a clean first
    /// touch).
    S3Fifo,
    /// Lazy Cleaning baseline (LRU-2, write-back, in-place overwrite).
    Lc,
    /// Temperature-aware caching baseline (on-entry, write-through).
    Tac,
}

impl CachePolicyKind {
    /// All policies that actually cache (excludes `None`).
    pub const CACHING: [CachePolicyKind; 6] = [
        CachePolicyKind::Face,
        CachePolicyKind::FaceGr,
        CachePolicyKind::FaceGsc,
        CachePolicyKind::S3Fifo,
        CachePolicyKind::Lc,
        CachePolicyKind::Tac,
    ];

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicyKind::None => "none",
            CachePolicyKind::Face => "FaCE",
            CachePolicyKind::FaceGr => "FaCE+GR",
            CachePolicyKind::FaceGsc => "FaCE+GSC",
            CachePolicyKind::S3Fifo => "S3-FIFO",
            CachePolicyKind::Lc => "LC",
            CachePolicyKind::Tac => "TAC",
        }
    }
}

impl std::fmt::Display for CachePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Build a flash cache of the given kind over `store`.
/// Returns `None` for [`CachePolicyKind::None`].
pub fn build_cache(
    kind: CachePolicyKind,
    config: CacheConfig,
    store: Arc<dyn FlashStore>,
) -> Option<Box<dyn FlashCache>> {
    match kind {
        CachePolicyKind::None => None,
        CachePolicyKind::Face => {
            let cfg = CacheConfig {
                group_size: 1,
                second_chance: false,
                ..config
            };
            Some(Box::new(MvFifoCache::new(cfg, store)))
        }
        CachePolicyKind::FaceGr => {
            let cfg = CacheConfig {
                second_chance: false,
                ..config
            };
            Some(Box::new(MvFifoCache::new(cfg, store)))
        }
        CachePolicyKind::FaceGsc => {
            let cfg = CacheConfig {
                second_chance: true,
                ..config
            };
            Some(Box::new(MvFifoCache::new(cfg, store)))
        }
        CachePolicyKind::S3Fifo => Some(Box::new(S3FifoCache::new(config, store))),
        CachePolicyKind::Lc => Some(Box::new(LcCache::new(config, store))),
        CachePolicyKind::Tac => Some(Box::new(TacCache::new(config, store))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::NullFlashStore;

    #[test]
    fn labels_and_display() {
        assert_eq!(CachePolicyKind::FaceGsc.label(), "FaCE+GSC");
        assert_eq!(format!("{}", CachePolicyKind::Lc), "LC");
        assert_eq!(CachePolicyKind::S3Fifo.label(), "S3-FIFO");
        assert_eq!(CachePolicyKind::CACHING.len(), 6);
    }

    #[test]
    fn factory_builds_every_policy() {
        let cfg = CacheConfig {
            capacity_pages: 128,
            ..CacheConfig::default()
        };
        assert!(build_cache(
            CachePolicyKind::None,
            cfg.clone(),
            Arc::new(NullFlashStore::new(128))
        )
        .is_none());
        for kind in CachePolicyKind::CACHING {
            let cache = build_cache(kind, cfg.clone(), Arc::new(NullFlashStore::new(128)))
                .expect("caching policy");
            assert_eq!(cache.capacity(), 128);
            assert!(cache.is_empty());
        }
        // Base FaCE forces group_size to 1.
        let face = build_cache(
            CachePolicyKind::Face,
            cfg.clone().group_size(64),
            Arc::new(NullFlashStore::new(128)),
        )
        .unwrap();
        assert_eq!(face.policy_name(), "FaCE");
        let gsc = build_cache(
            CachePolicyKind::FaceGsc,
            cfg,
            Arc::new(NullFlashStore::new(128)),
        )
        .unwrap();
        assert_eq!(gsc.policy_name(), "FaCE+GSC");
    }

    #[test]
    fn no_supplier_returns_nothing() {
        let mut s = NoSupplier;
        assert!(s.next_dirty_page().is_none());
        // Closures work as suppliers too.
        let mut n = 0;
        let mut closure_supplier = || {
            n += 1;
            None
        };
        assert!(closure_supplier.next_dirty_page().is_none());
        assert_eq!(n, 1);
    }
}
