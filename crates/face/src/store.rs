//! Storage for the flash-resident cache frames.
//!
//! The cache policies address the flash device as an array of page *slots*
//! (frame numbers). A [`FlashStore`] holds the actual bytes of those slots;
//! the [`NullFlashStore`] holds nothing and is used in metadata-only
//! simulation mode.
//!
//! All data operations are fallible: reads and writes return
//! [`DeviceResult`], so a worn-out or injected-faulty device reports a typed
//! [`face_pagestore::DeviceError`] instead of panicking or silently
//! conflating "empty slot"
//! with "unreadable slot". The [`FaultyFlashStore`] wrapper injects failures
//! from a seed-deterministic [`FaultPlan`]; install it through the engine's
//! `flash_store_factory` knob.

use std::sync::Arc;

use face_analysis::classes::FLASH_SLOTS;
use face_analysis::OrderedRwLock;
use face_pagestore::fault::sleep_for;
use face_pagestore::{Counter, DeviceOp, DeviceResult, FaultAction, FaultPlan, Page, PageId};

/// Storage for flash cache slots.
pub trait FlashStore: Send + Sync {
    /// Number of page slots.
    fn capacity(&self) -> usize;

    /// Write a page into `slot`. On error nothing is guaranteed to have
    /// reached the medium.
    fn write_slot(&self, slot: usize, page: &Page) -> DeviceResult<()>;

    /// Write a batch of pages into consecutive slots starting at `start_slot`
    /// (wrapping around the capacity), modelling FaCE's single batch-sized
    /// sequential write. On error a *prefix* of the batch may have been
    /// persisted (torn write) — callers must not seal metadata for the batch.
    fn write_slots(&self, start_slot: usize, pages: &[Page]) -> DeviceResult<()> {
        for (i, p) in pages.iter().enumerate() {
            self.write_slot((start_slot + i) % self.capacity(), p)?;
        }
        Ok(())
    }

    /// Write an explicit (slot, page) batch as one sequential device
    /// operation — the destage pipeline's group write, whose slots were
    /// assigned consecutively at the queue rear (possibly wrapping).
    /// Latency-charging wrappers override this to bill the batch once
    /// instead of per page. Same torn-write caveat as
    /// [`FlashStore::write_slots`].
    fn write_batch(&self, writes: &[(usize, &Page)]) -> DeviceResult<()> {
        for (slot, page) in writes {
            self.write_slot(*slot, page)?;
        }
        Ok(())
    }

    /// Read the page stored in `slot`. `Ok(None)` means the slot is empty —
    /// distinct from `Err`, which means the slot (or device) failed to read.
    fn read_slot(&self, slot: usize) -> DeviceResult<Option<Page>>;

    /// The id and LSN of the page stored in `slot`, without the body. Used by
    /// recovery to rebuild metadata from page headers (paper §4.2). An
    /// unreadable slot reports `None` — recovery simply does not re-admit it.
    fn slot_header(&self, slot: usize) -> Option<(PageId, face_pagestore::Lsn)> {
        self.read_slot(slot)
            .ok()
            .flatten()
            .map(|p| (p.id(), p.lsn()))
    }

    /// Note which page (and pageLSN) now occupies `slot`. Data-carrying
    /// stores can ignore this (the header is inside the page); header-only
    /// stores use it so that recovery's page-header scan works without
    /// storing page bodies.
    fn note_slot_header(&self, _slot: usize, _page: PageId, _lsn: face_pagestore::Lsn) {}

    /// Whether this store keeps page data (false for the null store).
    fn carries_data(&self) -> bool;

    /// Drop every slot (used to model a brand-new cache device).
    fn clear(&self);

    /// Invalidate a single slot: its bytes and header become unreadable, as
    /// if the frame were trimmed. Recovery uses this when it discards a
    /// version that outran the durable log — leaving the bytes readable
    /// would let a *later* recovery's header scan resurrect the dead
    /// timeline once the (reused) LSN range becomes durable again.
    fn clear_slot(&self, _slot: usize) {}

    /// Lifetime count of page-program operations this device has absorbed —
    /// the flash-wear tally behind
    /// [`crate::types::CacheStats::flash_pages_written`]. Monotonic (a
    /// [`FlashStore::clear`] does not rewind it) and readable lock-free, so
    /// [`crate::ShardedFlashCache::stats`] can surface it without sweeping
    /// the shard locks. Header-only and null stores count their header notes
    /// (the metadata-granularity stand-in for the page program); wrappers
    /// must delegate.
    fn pages_written(&self) -> u64 {
        0
    }
}

/// An in-memory flash store: one optional page per slot.
///
/// This doubles as the "durable" flash device in crash-simulation tests: a
/// crash drops the DRAM buffer and the in-memory metadata directory but keeps
/// the `MemFlashStore` contents, exactly like a real non-volatile SSD.
pub struct MemFlashStore {
    slots: OrderedRwLock<Vec<Option<Box<Page>>>>,
    written: Counter,
}

impl MemFlashStore {
    /// A store with `capacity` empty slots.
    pub fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Self {
            slots: OrderedRwLock::new(FLASH_SLOTS, slots),
            written: Counter::default(),
        }
    }

    /// Number of occupied slots (diagnostic).
    pub fn occupied(&self) -> usize {
        self.slots.read().iter().filter(|s| s.is_some()).count()
    }
}

impl FlashStore for MemFlashStore {
    fn capacity(&self) -> usize {
        self.slots.read().len()
    }

    fn write_slot(&self, slot: usize, page: &Page) -> DeviceResult<()> {
        self.written.inc();
        let mut slots = self.slots.write();
        let len = slots.len();
        slots[slot % len] = Some(Box::new(page.clone()));
        Ok(())
    }

    fn read_slot(&self, slot: usize) -> DeviceResult<Option<Page>> {
        let slots = self.slots.read();
        Ok(slots
            .get(slot % slots.len().max(1))
            .and_then(|s| s.as_deref().cloned()))
    }

    fn carries_data(&self) -> bool {
        true
    }

    fn clear(&self) {
        let mut slots = self.slots.write();
        for s in slots.iter_mut() {
            *s = None;
        }
    }

    fn clear_slot(&self, slot: usize) {
        let mut slots = self.slots.write();
        let len = slots.len();
        if len > 0 {
            slots[slot % len] = None;
        }
    }

    fn pages_written(&self) -> u64 {
        self.written.get()
    }
}

/// A store that keeps only the page id and pageLSN of each slot — what a real
/// flash device's page headers would reveal to a recovery scan — but no page
/// bodies. The performance simulation uses this so that multi-gigabyte flash
/// caches cost only a few bytes per slot while recovery experiments still
/// exercise the paper's §4.2 header-scan path.
pub struct HeaderFlashStore {
    headers: OrderedRwLock<Vec<Option<(PageId, face_pagestore::Lsn)>>>,
    written: Counter,
}

impl HeaderFlashStore {
    /// A header-only store with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let mut headers = Vec::with_capacity(capacity);
        headers.resize_with(capacity, || None);
        Self {
            headers: OrderedRwLock::new(FLASH_SLOTS, headers),
            written: Counter::default(),
        }
    }
}

impl FlashStore for HeaderFlashStore {
    fn capacity(&self) -> usize {
        self.headers.read().len()
    }

    fn write_slot(&self, slot: usize, page: &Page) -> DeviceResult<()> {
        self.written.inc();
        let mut headers = self.headers.write();
        let len = headers.len();
        headers[slot % len] = Some((page.id(), page.lsn()));
        Ok(())
    }

    fn read_slot(&self, _slot: usize) -> DeviceResult<Option<Page>> {
        Ok(None)
    }

    fn slot_header(&self, slot: usize) -> Option<(PageId, face_pagestore::Lsn)> {
        let headers = self.headers.read();
        *headers.get(slot)?
    }

    fn note_slot_header(&self, slot: usize, page: PageId, lsn: face_pagestore::Lsn) {
        // In header-only mode the note *is* the page program — the policies
        // skip `write_slot` when the store carries no data.
        self.written.inc();
        let mut headers = self.headers.write();
        let len = headers.len();
        headers[slot % len] = Some((page, lsn));
    }

    fn carries_data(&self) -> bool {
        false
    }

    fn clear(&self) {
        for h in self.headers.write().iter_mut() {
            *h = None;
        }
    }

    fn clear_slot(&self, slot: usize) {
        let mut headers = self.headers.write();
        let len = headers.len();
        if len > 0 {
            headers[slot % len] = None;
        }
    }

    fn pages_written(&self) -> u64 {
        self.written.get()
    }
}

/// A boolean gate that parks callers until it opens. Poisoning is erased
/// (a panicking holder cannot corrupt a `bool`), so no path here can panic
/// a second thread.
struct Gate {
    open: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl Gate {
    fn new(open: bool) -> Self {
        Self {
            open: std::sync::Mutex::new(open),
            cv: std::sync::Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, bool> {
        self.open
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn release(&self) {
        *self.lock() = true;
        self.cv.notify_all();
    }

    fn hold(&self) {
        *self.lock() = false;
    }

    fn wait(&self) {
        let guard = self.lock();
        let _guard = self
            .cv
            .wait_while(guard, |open| !*open)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// A test instrument: a data-carrying flash store whose **writes block**
/// until [`GateFlashStore::release`] opens the write gate, and whose
/// **reads** can likewise be parked with [`GateFlashStore::hold_reads`] /
/// [`GateFlashStore::release_reads`] (the read gate starts open).
///
/// This is how the no-device-I/O-under-lock acceptance gates and the
/// in-pipeline crash-point tests park a device operation mid-flight: close a
/// gate, drive the system, observe that foreground operations proceed (or
/// that a lock-light reader parked inside a device read blocks nobody), then
/// release.
pub struct GateFlashStore {
    inner: MemFlashStore,
    writes: Gate,
    reads: Gate,
}

impl GateFlashStore {
    /// A gated store with `capacity` slots; the **write** gate starts
    /// closed, the read gate open.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: MemFlashStore::new(capacity),
            writes: Gate::new(false),
            reads: Gate::new(true),
        }
    }

    /// Open the write gate: blocked writers proceed, later writers never
    /// wait.
    pub fn release(&self) {
        self.writes.release();
    }

    /// Close the write gate again: subsequent slot writes park until
    /// [`GateFlashStore::release`].
    pub fn hold_writes(&self) {
        self.writes.hold();
    }

    /// Close the read gate: subsequent slot reads park until
    /// [`GateFlashStore::release_reads`].
    pub fn hold_reads(&self) {
        self.reads.hold();
    }

    /// Open the read gate: parked readers proceed.
    pub fn release_reads(&self) {
        self.reads.release();
    }
}

impl FlashStore for GateFlashStore {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn write_slot(&self, slot: usize, page: &Page) -> DeviceResult<()> {
        self.writes.wait();
        self.inner.write_slot(slot, page)
    }

    fn write_batch(&self, writes: &[(usize, &Page)]) -> DeviceResult<()> {
        self.writes.wait();
        self.inner.write_batch(writes)
    }

    fn read_slot(&self, slot: usize) -> DeviceResult<Option<Page>> {
        self.reads.wait();
        self.inner.read_slot(slot)
    }

    fn carries_data(&self) -> bool {
        true
    }

    fn clear(&self) {
        self.inner.clear();
    }

    fn clear_slot(&self, slot: usize) {
        self.inner.clear_slot(slot);
    }

    fn pages_written(&self) -> u64 {
        self.inner.pages_written()
    }
}

/// A flash store that keeps no data. Reads return `None`; writes are
/// accepted and dropped. Metadata-only simulation uses this so that caches of
/// millions of slots cost only their metadata.
#[derive(Debug, Clone)]
pub struct NullFlashStore {
    capacity: usize,
    /// Shared across clones: a clone models another handle to the same
    /// device, not a second device.
    written: Arc<Counter>,
}

impl NullFlashStore {
    /// A data-less store with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            written: Arc::new(Counter::default()),
        }
    }
}

impl FlashStore for NullFlashStore {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn write_slot(&self, _slot: usize, _page: &Page) -> DeviceResult<()> {
        self.written.inc();
        Ok(())
    }

    fn note_slot_header(&self, _slot: usize, _page: PageId, _lsn: face_pagestore::Lsn) {
        // Like the header store: the note is the metadata-granularity page
        // program in data-less simulation mode.
        self.written.inc();
    }

    fn read_slot(&self, _slot: usize) -> DeviceResult<Option<Page>> {
        Ok(None)
    }

    fn carries_data(&self) -> bool {
        false
    }

    fn clear(&self) {}

    fn pages_written(&self) -> u64 {
        self.written.get()
    }
}

/// A fault-injecting flash store: consults a seed-deterministic
/// [`FaultPlan`] on every data operation and fails, tears, or delays it —
/// the flash-side twin of `face_pagestore::FaultyPageStore`.
///
/// Install it through the engine's `flash_store_factory` knob:
///
/// ```ignore
/// let plan = Arc::new(FaultPlan::new(42).probability(0.01).transient());
/// config.flash_store_factory(move |shard| {
///     Arc::new(FaultyFlashStore::new(
///         Arc::new(MemFlashStore::new(4096)),
///         plan.clone(),
///     ))
/// });
/// ```
///
/// Header notes, clears and capacity are passed through unconditionally —
/// faults model failing *data* I/O, not failing bookkeeping.
pub struct FaultyFlashStore {
    inner: Arc<dyn FlashStore>,
    plan: Arc<FaultPlan>,
}

impl FaultyFlashStore {
    /// Wrap `inner`, consulting `plan` on every slot read and write.
    pub fn new(inner: Arc<dyn FlashStore>, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }

    /// The installed plan (for arming and fault counters).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn FlashStore> {
        &self.inner
    }

    fn gate(&self, op: DeviceOp, slot: Option<usize>) -> DeviceResult<()> {
        match self.plan.decide(op, slot) {
            Some(FaultAction::Fail(e)) | Some(FaultAction::Torn(e)) => Err(e),
            Some(FaultAction::Delay(d)) => {
                sleep_for(d);
                Ok(())
            }
            None => Ok(()),
        }
    }
}

impl FlashStore for FaultyFlashStore {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn write_slot(&self, slot: usize, page: &Page) -> DeviceResult<()> {
        self.gate(DeviceOp::Write, Some(slot))?;
        self.inner.write_slot(slot, page)
    }

    fn write_slots(&self, start_slot: usize, pages: &[Page]) -> DeviceResult<()> {
        match self.plan.decide(DeviceOp::Write, Some(start_slot)) {
            Some(FaultAction::Fail(e)) => Err(e),
            Some(FaultAction::Torn(e)) => {
                // Persist a prefix, then fail: the classic torn batch write.
                // The journal group must not seal, so recovery ignores it.
                let torn_at = pages.len() / 2;
                self.inner.write_slots(start_slot, &pages[..torn_at])?;
                Err(e)
            }
            Some(FaultAction::Delay(d)) => {
                sleep_for(d);
                self.inner.write_slots(start_slot, pages)
            }
            None => self.inner.write_slots(start_slot, pages),
        }
    }

    fn write_batch(&self, writes: &[(usize, &Page)]) -> DeviceResult<()> {
        let first_slot = writes.first().map(|(s, _)| *s);
        match self.plan.decide(DeviceOp::Write, first_slot) {
            Some(FaultAction::Fail(e)) => Err(e),
            Some(FaultAction::Torn(e)) => {
                let torn_at = writes.len() / 2;
                self.inner.write_batch(&writes[..torn_at])?;
                Err(e)
            }
            Some(FaultAction::Delay(d)) => {
                sleep_for(d);
                self.inner.write_batch(writes)
            }
            None => self.inner.write_batch(writes),
        }
    }

    fn read_slot(&self, slot: usize) -> DeviceResult<Option<Page>> {
        self.gate(DeviceOp::Read, Some(slot))?;
        self.inner.read_slot(slot)
    }

    fn slot_header(&self, slot: usize) -> Option<(PageId, face_pagestore::Lsn)> {
        // Recovery's header scan sees faults too: an unreadable slot simply
        // is not re-admitted.
        if self.gate(DeviceOp::Read, Some(slot)).is_err() {
            return None;
        }
        self.inner.slot_header(slot)
    }

    fn note_slot_header(&self, slot: usize, page: PageId, lsn: face_pagestore::Lsn) {
        self.inner.note_slot_header(slot, page, lsn);
    }

    fn carries_data(&self) -> bool {
        self.inner.carries_data()
    }

    fn clear(&self) {
        self.inner.clear();
    }

    fn clear_slot(&self, slot: usize) {
        self.inner.clear_slot(slot);
    }

    fn pages_written(&self) -> u64 {
        self.inner.pages_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use face_pagestore::{DeviceErrorKind, Lsn};

    #[test]
    fn mem_store_round_trips_pages() {
        let store = MemFlashStore::new(8);
        assert_eq!(store.capacity(), 8);
        assert!(store.carries_data());
        assert!(store.read_slot(3).unwrap().is_none());

        let mut page = Page::new(PageId::new(1, 7));
        page.set_lsn(Lsn(5));
        page.write_body(0, b"cached");
        store.write_slot(3, &page).unwrap();
        let out = store.read_slot(3).unwrap().unwrap();
        assert_eq!(out.id(), PageId::new(1, 7));
        assert_eq!(out.read_body(0, 6), b"cached");
        assert_eq!(store.slot_header(3), Some((PageId::new(1, 7), Lsn(5))));
        assert_eq!(store.occupied(), 1);

        store.clear();
        assert_eq!(store.occupied(), 0);
    }

    #[test]
    fn batch_write_wraps_around() {
        let store = MemFlashStore::new(4);
        let pages: Vec<Page> = (0..3).map(|i| Page::new(PageId::new(0, i))).collect();
        store.write_slots(3, &pages).unwrap();
        // Slots 3, 0, 1 are now occupied.
        assert_eq!(store.read_slot(3).unwrap().unwrap().id(), PageId::new(0, 0));
        assert_eq!(store.read_slot(0).unwrap().unwrap().id(), PageId::new(0, 1));
        assert_eq!(store.read_slot(1).unwrap().unwrap().id(), PageId::new(0, 2));
        assert!(store.read_slot(2).unwrap().is_none());
    }

    #[test]
    fn header_store_remembers_headers_only() {
        let store = HeaderFlashStore::new(16);
        assert_eq!(store.capacity(), 16);
        assert!(!store.carries_data());
        assert!(store.slot_header(3).is_none());

        let mut page = Page::new(PageId::new(2, 5));
        page.set_lsn(Lsn(77));
        store.write_slot(3, &page).unwrap();
        assert_eq!(store.slot_header(3), Some((PageId::new(2, 5), Lsn(77))));
        assert!(store.read_slot(3).unwrap().is_none(), "bodies are not kept");

        store.note_slot_header(4, PageId::new(9, 9), Lsn(1));
        assert_eq!(store.slot_header(4), Some((PageId::new(9, 9), Lsn(1))));
        store.clear();
        assert!(store.slot_header(3).is_none());
    }

    #[test]
    fn null_store_holds_nothing() {
        let store = NullFlashStore::new(1000);
        assert_eq!(store.capacity(), 1000);
        assert!(!store.carries_data());
        store.write_slot(5, &Page::new(PageId::new(0, 0))).unwrap();
        assert!(store.read_slot(5).unwrap().is_none());
        assert!(store.slot_header(5).is_none());
        store.clear();
    }

    #[test]
    fn pages_written_tallies_every_program_and_survives_clear() {
        let store = MemFlashStore::new(8);
        assert_eq!(store.pages_written(), 0);
        let page = Page::new(PageId::new(0, 1));
        store.write_slot(0, &page).unwrap();
        let pages: Vec<Page> = (0..3).map(|i| Page::new(PageId::new(0, i))).collect();
        store.write_slots(2, &pages).unwrap();
        store.write_batch(&[(6, &page), (7, &page)]).unwrap();
        assert_eq!(store.pages_written(), 6);
        store.clear();
        assert_eq!(store.pages_written(), 6, "wear tally is monotonic");

        // Header and null stores count their header notes — the page-program
        // stand-in when no bodies are kept.
        let header = HeaderFlashStore::new(4);
        header.note_slot_header(0, PageId::new(0, 1), Lsn(1));
        header.write_slot(1, &page).unwrap();
        assert_eq!(header.pages_written(), 2);

        let null = NullFlashStore::new(4);
        null.note_slot_header(0, PageId::new(0, 1), Lsn(1));
        let null2 = null.clone();
        null2.write_slot(1, &page).unwrap();
        assert_eq!(null.pages_written(), 2, "clones share the device tally");
    }

    #[test]
    fn faulty_store_injects_typed_errors_and_passes_through_otherwise() {
        let plan = Arc::new(FaultPlan::new(9).fail_nth(2).permanent());
        let store = FaultyFlashStore::new(Arc::new(MemFlashStore::new(8)), plan.clone());
        let mut page = Page::new(PageId::new(0, 1));
        page.set_lsn(Lsn(3));

        store.write_slot(1, &page).unwrap();
        let err = store.write_slot(2, &page).unwrap_err();
        assert_eq!(err.kind, DeviceErrorKind::Permanent);
        assert_eq!(err.slot(), Some(2));
        assert_eq!(plan.faults_injected(), 1);

        // Op 3 passes; the earlier successful write is readable.
        assert_eq!(store.read_slot(1).unwrap().unwrap().id(), PageId::new(0, 1));
        // The failed write never reached the inner store.
        assert!(store.read_slot(2).unwrap().is_none());
    }

    #[test]
    fn torn_batch_persists_a_prefix_then_fails() {
        use face_pagestore::FaultMode;

        let inner = Arc::new(MemFlashStore::new(8));
        let plan = Arc::new(
            FaultPlan::new(1)
                .fail_nth(1)
                .mode(FaultMode::TornWrite)
                .transient(),
        );
        let store = FaultyFlashStore::new(inner.clone(), plan);
        let pages: Vec<Page> = (0..4).map(|i| Page::new(PageId::new(0, i))).collect();
        let err = store.write_slots(0, &pages).unwrap_err();
        assert!(err.is_transient());
        // Half the batch landed; the rest did not.
        assert_eq!(inner.occupied(), 2);
        assert!(inner.read_slot(0).unwrap().is_some());
        assert!(inner.read_slot(3).unwrap().is_none());
    }

    #[test]
    fn faulty_header_scan_skips_unreadable_slots() {
        let inner = Arc::new(MemFlashStore::new(4));
        let mut page = Page::new(PageId::new(0, 1));
        page.set_lsn(Lsn(1));
        inner.write_slot(0, &page).unwrap();
        inner.write_slot(1, &page).unwrap();

        let plan = Arc::new(FaultPlan::new(2).fail_nth(1).permanent().reads_only());
        let store = FaultyFlashStore::new(inner, plan);
        // First header scan hits the injected read fault → slot skipped...
        assert_eq!(store.slot_header(0), None);
        // ...later slots still scan fine.
        assert!(store.slot_header(1).is_some());
    }
}
