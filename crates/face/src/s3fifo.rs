//! S3-FIFO replacement with ghost-queue admission — a wear-aware policy
//! behind the same [`FlashCache`] contract as the FaCE mvFIFO family.
//!
//! The flash device is split into two **static circular queues**: a small
//! probationary region (default 10 % of capacity) and a main region, plus a
//! RAM-only **ghost** FIFO of recently rejected/evicted page ids
//! ([`crate::admission::GhostQueue`]). The flow:
//!
//! * a **clean first touch** is recorded only in the ghost directory and is
//!   *not* admitted — no flash write for a potential one-hit wonder;
//! * a page whose id is live in the ghost (it came back) is admitted straight
//!   into the **main** queue — the re-reference earned the flash write;
//! * a **dirty** first touch must be absorbed (that is FaCE's write-economy
//!   bargain), so it enters the **small** queue on probation;
//! * eviction from *small* quickly demotes one-hit wonders: an unreferenced
//!   victim leaves the flash (dirty → disk, clean → dropped) and its id goes
//!   to the ghost; a referenced victim is promoted to *main*;
//! * eviction from *main* is group FIFO with second chance, exactly like
//!   FaCE+GSC's dequeue (forced progress when every victim is referenced).
//!
//! Everything around that — multi-version slots with a validity bit, deferred
//! group writes with [`S3FifoCache::complete_group`] sealing, the
//! `fetch_pin`/`fetch_validate` generation protocol, metadata-journal
//! durability with crash recovery — mirrors [`crate::mvfifo::MvFifoCache`].
//! Both regions share one pending batch and one journal; a journal group's
//! `front`/`size` pointers pack the two regions' pointers into the two u64s
//! (`pack_pointers`). The ghost directory is volatile by design: it is an
//! admission heuristic, and after a crash it restarts empty.
//!
//! ```
//! use std::sync::Arc;
//! use face_cache::{
//!     CacheConfig, FlashCache, FlashStore, IoLog, MemFlashStore, NoSupplier, S3FifoCache,
//!     StagedPage,
//! };
//! use face_pagestore::{Page, PageId};
//!
//! let store = Arc::new(MemFlashStore::new(16));
//! let config = CacheConfig { capacity_pages: 16, group_size: 2, ..CacheConfig::default() };
//! let mut cache = S3FifoCache::new(config, Arc::clone(&store) as Arc<dyn FlashStore>);
//! let mut io = IoLog::new();
//!
//! let mut page = Page::new(PageId::new(0, 1));
//! page.update_checksum();
//! // A clean one-touch page is ghosted, not cached: no flash write is paid.
//! let first = cache.insert(StagedPage::with_data(page.clone(), false, true), &mut NoSupplier, &mut io).unwrap();
//! assert!(!first.cached);
//! assert_eq!(cache.ghost_len(), 1);
//! // The re-reference earns admission (straight into the main queue).
//! let second = cache.insert(StagedPage::with_data(page, false, true), &mut NoSupplier, &mut io).unwrap();
//! assert!(second.cached);
//! assert!(cache.contains(PageId::new(0, 1)));
//! ```

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use face_pagestore::{DeviceResult, Lsn, Page, PageId};

use crate::admission::GhostQueue;
use crate::destage::{PendingGroupWrite, PendingSlotWrite};
use crate::io::IoLog;
use crate::meta::{JournalEntry, MetaJournal};
use crate::policy::{FlashCache, PageSupplier};
use crate::store::FlashStore;
use crate::types::{
    CacheConfig, CacheRecoveryInfo, CacheStatCounters, CacheStats, Evacuation, FetchPin,
    FlashFetch, InsertOutcome, QuarantineOutcome, SlotGenerations, StagedPage,
};

/// Metadata for one occupied flash slot (same shape as mvFIFO's).
#[derive(Debug, Clone)]
struct SlotMeta {
    page: PageId,
    lsn: Lsn,
    dirty: bool,
    /// This is the latest version of the page.
    valid: bool,
    /// Hit while cached — promotion (small) / second-chance (main) candidate.
    referenced: bool,
    /// The journal group epoch this version was enqueued under.
    epoch: u64,
}

/// A deferred group whose physical batch write is owed by the caller.
struct InflightGroup {
    write: PendingGroupWrite,
    completed: bool,
}

/// One of the two static queue regions of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    Small,
    Main,
}

/// A circular FIFO over the slot range `[base, base + cap)`.
#[derive(Debug, Clone, Copy)]
struct Region {
    base: usize,
    cap: usize,
    /// Offset (within the region) of the oldest occupied slot.
    front: usize,
    /// Occupied slots.
    size: usize,
}

impl Region {
    fn new(base: usize, cap: usize) -> Self {
        Self {
            base,
            cap,
            front: 0,
            size: 0,
        }
    }

    fn free(&self) -> usize {
        self.cap - self.size
    }

    /// Absolute slot index of the `i`-th occupied slot (queue order).
    fn slot_at(&self, i: usize) -> usize {
        self.base + (self.front + i) % self.cap
    }

    fn rear(&self) -> usize {
        self.base + (self.front + self.size) % self.cap
    }

    /// Whether the absolute slot index lies inside the occupied window.
    fn in_window(&self, slot: usize) -> bool {
        if slot < self.base || slot >= self.base + self.cap {
            return false;
        }
        let offset = (slot - self.base + self.cap - self.front) % self.cap;
        offset < self.size
    }
}

/// Pack the two regions' queue pointers into one u64 (small in the low half)
/// for the journal's single `front`/`size` pointer pair. Capacities are
/// asserted below `u32::MAX`, so the halves cannot collide.
fn pack_pointers(small: usize, main: usize) -> u64 {
    (small as u64) | ((main as u64) << 32)
}

/// Inverse of [`pack_pointers`].
fn unpack_pointers(packed: u64) -> (usize, usize) {
    ((packed & u32::MAX as u64) as usize, (packed >> 32) as usize)
}

/// The S3-FIFO flash cache.
pub struct S3FifoCache {
    config: CacheConfig,
    store: Arc<dyn FlashStore>,
    /// Slot metadata over the whole device; `None` = outside both queues.
    slots: Vec<Option<SlotMeta>>,
    small: Region,
    main: Region,
    /// Latest valid version of each cached page.
    dir: HashMap<PageId, usize>,
    /// RAM-only ghost directory (rejected first touches + small-queue
    /// evictions). Lost on crash — admission heuristic, not metadata.
    ghost: GhostQueue,
    /// Slots assigned but whose physical batch write has not happened yet.
    /// Shared by both regions: their entries seal under one journal group.
    pending_slots: Vec<usize>,
    pending_data: Vec<Option<Arc<Page>>>,
    /// Deferred groups awaiting their physical batch write, by epoch.
    inflight: BTreeMap<u64, InflightGroup>,
    /// `slot -> (epoch, frame)` for in-flight groups (RAM-served fetches).
    inflight_data: HashMap<usize, (u64, Arc<Page>)>,
    generations: SlotGenerations,
    journal: MetaJournal,
    stats: CacheStatCounters,
    /// RAM-only quarantine tombstones: these slots never host a page again
    /// (they circulate through their region's window as permanent holes).
    /// Lost at crash — safe, the bytes were never trimmed.
    quarantined: HashSet<usize>,
    /// Dirty pages rolled back from failed inline flash writes, awaiting
    /// the caller's disk failover ([`FlashCache::take_write_fallout`]).
    write_fallout: Vec<StagedPage>,
}

impl S3FifoCache {
    /// Split `capacity` into the small-queue share and the rest, both at
    /// least one slot.
    fn split_capacity(config: &CacheConfig) -> (usize, usize) {
        let capacity = config.capacity_pages;
        let fraction = if config.s3_small_fraction.is_finite() {
            config.s3_small_fraction.clamp(0.0, 1.0)
        } else {
            0.1
        };
        let small = ((capacity as f64 * fraction).round() as usize).clamp(1, capacity - 1);
        (small, capacity - small)
    }

    /// Create a cache with the given configuration over `store`.
    ///
    /// # Panics
    /// Panics if the capacity is below two pages (each region needs a slot),
    /// exceeds `u32::MAX` (queue pointers pack into journal u64 halves), or
    /// the store is smaller than the configured capacity.
    pub fn new(config: CacheConfig, store: Arc<dyn FlashStore>) -> Self {
        assert!(
            config.capacity_pages >= 2,
            "S3-FIFO needs at least two pages (one per region)"
        );
        assert!(
            config.capacity_pages < u32::MAX as usize,
            "region pointers pack into u32 halves"
        );
        assert!(
            store.capacity() >= config.capacity_pages,
            "flash store smaller than configured capacity"
        );
        assert!(config.group_size >= 1, "group size must be at least 1");
        let capacity = config.capacity_pages;
        let (small_cap, main_cap) = Self::split_capacity(&config);
        let journal = MetaJournal::new(config.meta_checkpoint_interval_groups);
        let ghost = GhostQueue::new(config.effective_ghost_capacity());
        Self {
            config,
            store,
            slots: (0..capacity).map(|_| None).collect(),
            small: Region::new(0, small_cap),
            main: Region::new(small_cap, main_cap),
            dir: HashMap::new(),
            ghost,
            pending_slots: Vec::new(),
            pending_data: Vec::new(),
            inflight: BTreeMap::new(),
            inflight_data: HashMap::new(),
            generations: SlotGenerations::new(capacity),
            journal,
            stats: CacheStatCounters::default(),
            quarantined: HashSet::new(),
            write_fallout: Vec::new(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The persistent mapping-metadata journal (for recovery experiments).
    pub fn journal(&self) -> &MetaJournal {
        &self.journal
    }

    /// (small, main) occupied sizes — queue-membership assertions in tests.
    pub fn region_sizes(&self) -> (usize, usize) {
        (self.small.size, self.main.size)
    }

    /// Live ghost entries (diagnostics).
    pub fn ghost_len(&self) -> usize {
        self.ghost.len()
    }

    /// The valid (served) page versions with LSN and dirty flag, small queue
    /// first, each region in queue (oldest-to-newest) order.
    pub fn valid_versions(&self) -> Vec<(PageId, Lsn, bool)> {
        self.directory_snapshot()
            .into_iter()
            .map(|e| (e.page, e.lsn, e.dirty))
            .collect()
    }

    fn region(&self, which: Queue) -> &Region {
        match which {
            Queue::Small => &self.small,
            Queue::Main => &self.main,
        }
    }

    fn region_mut(&mut self, which: Queue) -> &mut Region {
        match which {
            Queue::Small => &mut self.small,
            Queue::Main => &mut self.main,
        }
    }

    /// Which region an absolute slot index belongs to.
    fn queue_of(&self, slot: usize) -> Queue {
        if slot < self.small.cap {
            Queue::Small
        } else {
            Queue::Main
        }
    }

    fn packed_front(&self) -> u64 {
        pack_pointers(self.small.front, self.main.front)
    }

    fn packed_size(&self) -> u64 {
        pack_pointers(self.small.size, self.main.size)
    }

    fn snapshot_filtered(&self, below_epoch: u64) -> Vec<JournalEntry> {
        let mut out = Vec::new();
        for region in [&self.small, &self.main] {
            for i in 0..region.size {
                let slot = region.slot_at(i);
                if let Some(m) = &self.slots[slot] {
                    if m.valid && m.epoch < below_epoch {
                        out.push(JournalEntry {
                            epoch: m.epoch,
                            slot: slot as u32,
                            page: m.page,
                            lsn: m.lsn,
                            dirty: m.dirty,
                        });
                    }
                }
            }
        }
        out
    }

    /// The live directory (valid versions, small then main, queue order).
    fn directory_snapshot(&self) -> Vec<JournalEntry> {
        self.snapshot_filtered(u64::MAX)
    }

    /// Only entries whose journal group has sealed — see
    /// `MvFifoCache::durable_directory_snapshot` for why a checkpoint must
    /// never reference in-flight (unwritten) versions.
    fn durable_directory_snapshot(&self) -> Vec<JournalEntry> {
        let oldest_unsealed = self
            .inflight
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.journal.current_epoch());
        self.snapshot_filtered(oldest_unsealed)
    }

    /// Force a cache checkpoint: flush the pending batch and persist a
    /// directory snapshot, so a subsequent restart replays no journal. On
    /// `Err` a group was aborted (its dirty pages wait in the write-fallout
    /// buffer) and the checkpoint was not installed.
    pub fn checkpoint_metadata(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        self.flush_all_groups_inline(io)?;
        let pointers = (self.packed_front(), self.packed_size());
        let already_folded = self.journal.replay_entries() == 0
            && self.journal.checkpoint().map(|c| (c.front, c.size)) == Some(pointers);
        if already_folded {
            return Ok(());
        }
        let snapshot = self.durable_directory_snapshot();
        self.journal
            .install_checkpoint(pointers.0, pointers.1, snapshot, io);
        self.stats.metadata_flushes.inc();
        Ok(())
    }

    /// Slots of `which`'s region that can still host pages.
    fn usable_capacity(&self, which: Queue) -> usize {
        let r = *self.region(which);
        let dead = self
            .quarantined
            .iter()
            .filter(|&&s| s >= r.base && s < r.base + r.cap)
            .count();
        r.cap - dead
    }

    /// Absorb quarantined slots sitting at `which`'s rear into the window as
    /// permanent holes, so the next enqueue lands on a usable slot. Holes
    /// are reclaimed as no-op dequeues when the front reaches them.
    fn absorb_quarantined_rear(&mut self, which: Queue) {
        while self.region(which).free() > 0 && self.quarantined.contains(&self.region(which).rear())
        {
            let slot = self.region(which).rear();
            debug_assert!(self.slots[slot].is_none(), "quarantined slot occupied");
            self.generations.bump(slot);
            self.region_mut(which).size += 1;
        }
    }

    /// The RAM-resident frame for `slot` (pending batch or in-flight group),
    /// if its batch write has not reached the device.
    fn ram_frame(&self, slot: usize) -> Option<Option<Arc<Page>>> {
        if let Some(pos) = self.pending_slots.iter().position(|&s| s == slot) {
            return Some(self.pending_data[pos].clone());
        }
        if let Some((_, frame)) = self.inflight_data.get(&slot) {
            return Some(Some(Arc::clone(frame)));
        }
        None
    }

    fn slot_frame(&self, slot: usize) -> DeviceResult<Option<Arc<Page>>> {
        match self.ram_frame(slot) {
            Some(frame) => Ok(frame),
            None => Ok(self.store.read_slot(slot)?.map(Arc::new)),
        }
    }

    /// Assign `which`'s rear slot to a page version and record its journal
    /// entry in the current group; the physical write is deferred to the
    /// pending batch.
    fn enqueue_assign(&mut self, which: Queue, staged: &StagedPage) -> usize {
        debug_assert!(self.region(which).free() > 0, "enqueue without free slot");
        let slot = self.region(which).rear();
        debug_assert!(
            !self.quarantined.contains(&slot),
            "enqueue onto a quarantined slot"
        );
        self.region_mut(which).size += 1;
        self.generations.bump(slot);
        self.slots[slot] = Some(SlotMeta {
            page: staged.page,
            lsn: staged.lsn,
            dirty: staged.dirty,
            valid: true,
            referenced: false,
            epoch: self.journal.current_epoch(),
        });
        self.dir.insert(staged.page, slot);
        self.journal
            .append(slot as u32, staged.page, staged.lsn, staged.dirty);
        self.pending_slots.push(slot);
        self.pending_data.push(staged.data.clone());
        slot
    }

    /// Physically write the pending batch and seal its journal group
    /// (inline path; deferred mode uses [`S3FifoCache::form_pending_group`]).
    /// The batch may span both regions: each region appends sequentially at
    /// its own rear, so the device sees (at most) two append streams.
    ///
    /// On a device error the whole batch is rolled back
    /// ([`S3FifoCache::rollback_pending`]): a prefix may persist on flash,
    /// but the journal group never seals, so recovery cannot see it —
    /// crash-equivalent.
    fn flush_pending(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        if self.pending_slots.is_empty() {
            return Ok(());
        }
        let n = self.pending_slots.len() as u32;
        for i in 0..self.pending_slots.len() {
            let slot = self.pending_slots[i];
            if self.store.carries_data() {
                if let Some(page) = self.pending_data[i].clone() {
                    if let Err(e) = self.store.write_slot(slot, &page) {
                        self.rollback_pending(io);
                        return Err(e);
                    }
                }
            }
            if let Some(meta) = &self.slots[slot] {
                self.store.note_slot_header(slot, meta.page, meta.lsn);
            }
        }
        io.flash_write_seq(n);
        self.pending_slots.clear();
        self.pending_data.clear();
        self.journal
            .seal_group(self.packed_front(), self.packed_size(), io);
        self.maybe_cadence_checkpoint(io);
        Ok(())
    }

    /// Undo the directory effects of a failed inline batch write: every
    /// pending slot becomes a window hole, its journal record is dropped
    /// with the aborted group, and dirty valid pages move to the
    /// write-fallout buffer for the caller's disk failover. Previously
    /// invalidated versions are *not* revalidated (they are stale).
    fn rollback_pending(&mut self, io: &mut IoLog) {
        let slots = std::mem::take(&mut self.pending_slots);
        let data = std::mem::take(&mut self.pending_data);
        for (slot, frame) in slots.into_iter().zip(data) {
            self.generations.bump(slot);
            let Some(meta) = self.slots[slot].take() else {
                continue;
            };
            if self.dir.get(&meta.page) == Some(&slot) {
                self.dir.remove(&meta.page);
            }
            if meta.valid && meta.dirty {
                io.disk_write(meta.page);
                self.stats.staged_out_to_disk.inc();
                self.write_fallout.push(StagedPage {
                    page: meta.page,
                    lsn: meta.lsn,
                    dirty: true,
                    fdirty: false,
                    data: frame,
                });
            }
        }
        self.journal.abort_current_group();
    }

    fn maybe_cadence_checkpoint(&mut self, io: &mut IoLog) {
        if self.journal.checkpoint_due() {
            let snapshot = self.durable_directory_snapshot();
            self.journal
                .install_checkpoint(self.packed_front(), self.packed_size(), snapshot, io);
            self.stats.metadata_flushes.inc();
        }
    }

    /// Detach the filled pending batch as a [`PendingGroupWrite`] (deferred
    /// mode). No I/O happens here.
    fn form_pending_group(&mut self) -> Option<PendingGroupWrite> {
        if self.pending_slots.is_empty() {
            return None;
        }
        let (epoch, entries) = self
            .journal
            .begin_deferred_group()
            .expect("pending slots imply unsealed journal entries");
        let slots = std::mem::take(&mut self.pending_slots);
        let data = std::mem::take(&mut self.pending_data);
        let mut pages = Vec::with_capacity(slots.len());
        for (slot, frame) in slots.into_iter().zip(data) {
            let meta = self.slots[slot]
                .as_ref()
                .expect("pending slot has metadata");
            if let Some(frame) = &frame {
                self.inflight_data.insert(slot, (epoch, Arc::clone(frame)));
            }
            pages.push(PendingSlotWrite {
                slot,
                page: meta.page,
                lsn: meta.lsn,
                data: frame,
            });
        }
        let write = PendingGroupWrite {
            shard: 0,
            epoch,
            pages,
            meta_records: entries,
        };
        self.inflight.insert(
            epoch,
            InflightGroup {
                write: write.clone(),
                completed: false,
            },
        );
        Some(write)
    }

    /// Inline fallback for sync/checkpoint/evacuation: apply and seal every
    /// in-flight group (oldest first), then flush the current batch. On a
    /// device error exactly one group is aborted (its dirty pages land in
    /// the write-fallout buffer) and the error returns; the remaining
    /// groups are untouched.
    fn flush_all_groups_inline(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        let epochs: Vec<u64> = self.inflight.keys().copied().collect();
        for epoch in epochs {
            let write = match self.inflight.get(&epoch) {
                Some(g) if !g.completed => Some(g.write.clone()),
                _ => None,
            };
            if let Some(write) = write {
                if let Err(e) = write.apply(&*self.store, io) {
                    let fallout = self.abort_group(epoch, io);
                    self.write_fallout.extend(fallout);
                    return Err(e);
                }
            }
            self.complete_group(epoch, io);
        }
        if self.config.defer_group_writes {
            if let Some(write) = self.form_pending_group() {
                if let Err(e) = write.apply(&*self.store, io) {
                    let fallout = self.abort_group(write.epoch, io);
                    self.write_fallout.extend(fallout);
                    return Err(e);
                }
                self.complete_group(write.epoch, io);
            }
            Ok(())
        } else {
            self.flush_pending(io)
        }
    }

    /// Dequeue up to `group_size` victims from `which`'s front.
    ///
    /// * **Small**: an unreferenced valid victim leaves the flash — its id is
    ///   recorded in the ghost, dirty contents go to `to_disk`; a referenced
    ///   valid victim is returned in `survivors` for promotion to main.
    /// * **Main**: a referenced valid victim is returned in `survivors` for
    ///   re-enqueue at the main rear (second chance), with forced progress
    ///   when the whole group was referenced; unreferenced dirty victims go
    ///   to `to_disk`.
    ///
    /// Every dequeued slot leaves its region unconditionally (unlike mvFIFO's
    /// single queue, promotion moves pages *between* regions, so a small-
    /// queue dequeue always makes progress).
    fn group_dequeue(
        &mut self,
        which: Queue,
        io: &mut IoLog,
    ) -> DeviceResult<(Vec<StagedPage>, Vec<StagedPage>)> {
        let n = self.config.group_size.min(self.region(which).size);
        if n == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        // Pass 1 (read-only): prefetch the bytes of every victim whose
        // contents are needed (stage-out to disk, promotion, or second
        // chance), so a device read error aborts before any mutation.
        let mut prefetched: HashMap<usize, Option<Arc<Page>>> = HashMap::new();
        let mut needs_read = false;
        for i in 0..n {
            let slot = self.region(which).slot_at(i);
            let Some(m) = &self.slots[slot] else {
                continue;
            };
            if m.valid && (m.dirty || m.referenced) {
                needs_read = true;
                let frame = match self.ram_frame(slot) {
                    Some(frame) => frame,
                    None => {
                        // Residual under-lock flash read, same as the
                        // mvFIFO dequeue: the victim's bytes are no
                        // longer RAM-resident. Acknowledged and rare.
                        let _allow = face_analysis::witness::allow_device_io(
                            "s3fifo: dequeue reads a non-resident victim's slot",
                        );
                        self.store.read_slot(slot)?.map(Arc::new)
                    }
                };
                prefetched.insert(slot, frame);
            }
        }
        if needs_read {
            io.flash_read_seq(n as u32);
        }

        let mut to_disk = Vec::new();
        let mut survivors = Vec::new();
        for i in 0..n {
            let slot = self.region(which).slot_at(i);
            self.generations.bump(slot);
            let Some(meta) = self.slots[slot].take() else {
                continue;
            };
            if let Some(pos) = self.pending_slots.iter().position(|&s| s == slot) {
                self.pending_slots.remove(pos);
                self.pending_data.remove(pos);
            }
            self.stats.staged_out.inc();
            if meta.valid {
                if self.dir.get(&meta.page) == Some(&slot) {
                    self.dir.remove(&meta.page);
                }
                if meta.referenced {
                    // Promotion (small) / second chance (main): the page
                    // proved itself while cached.
                    let data = prefetched.remove(&slot).flatten();
                    self.stats.second_chances.inc();
                    survivors.push(StagedPage {
                        page: meta.page,
                        lsn: meta.lsn,
                        dirty: meta.dirty,
                        fdirty: true, // force unconditional re-enqueue
                        data,
                    });
                } else {
                    if which == Queue::Small {
                        // Quick demotion: remember the id so a comeback is
                        // admitted straight to main.
                        self.ghost.record(meta.page);
                    }
                    if meta.dirty {
                        let data = prefetched.remove(&slot).flatten();
                        self.stats.staged_out_to_disk.inc();
                        io.disk_write(meta.page);
                        to_disk.push(StagedPage {
                            page: meta.page,
                            lsn: meta.lsn,
                            dirty: true,
                            fdirty: false,
                            data,
                        });
                    }
                    // Clean, unreferenced valid pages are simply discarded.
                }
            }
            // Invalid (superseded) versions are discarded with no I/O.
        }
        {
            let region = self.region_mut(which);
            region.front = (region.front + n) % region.cap;
            region.size -= n;
        }

        // Forced progress in main (paper §3.3): if every victim was
        // referenced, a full re-enqueue would replace nothing — force the
        // oldest out. Small needs no forcing: promotion always vacates it.
        if which == Queue::Main && !survivors.is_empty() && survivors.len() == n {
            let forced = survivors.remove(0);
            self.stats.second_chances.sub(1);
            if forced.dirty {
                self.stats.staged_out_to_disk.inc();
                io.disk_write(forced.page);
                to_disk.push(forced);
            }
        }
        Ok((to_disk, survivors))
    }

    /// Invalidate the previous version of `page`, if cached.
    fn invalidate_previous(&mut self, page: PageId) {
        if let Some(slot) = self.dir.remove(&page) {
            if let Some(meta) = &mut self.slots[slot] {
                meta.valid = false;
                self.stats.invalidations.inc();
            }
        }
    }

    /// Divert a page that cannot be cached (its region is fully
    /// quarantined, or an eviction error displaced it): dirty pages go to
    /// disk, clean pages are simply dropped (the disk copy is current).
    fn serve_through(&mut self, staged: StagedPage, sink: &mut Vec<StagedPage>, io: &mut IoLog) {
        if staged.dirty {
            io.disk_write(staged.page);
            self.stats.staged_out_to_disk.inc();
            sink.push(staged);
        }
    }

    /// Admit one version into the main queue: make space (second-chance
    /// survivors re-enqueue inside the loop, like mvFIFO's `admit`), then
    /// assign a slot. On a dequeue device error the displaced pages —
    /// including `staged` itself if dirty — land in the write-fallout
    /// buffer for the caller's disk failover.
    fn admit_main(
        &mut self,
        staged: StagedPage,
        outcome: &mut InsertOutcome,
        io: &mut IoLog,
    ) -> DeviceResult<()> {
        if self.usable_capacity(Queue::Main) == 0 {
            // Every main slot is quarantined: serve through to disk.
            outcome.cached = false;
            let mut diverted = Vec::new();
            self.serve_through(staged, &mut diverted, io);
            outcome.staged_out.extend(diverted);
            return Ok(());
        }
        loop {
            self.absorb_quarantined_rear(Queue::Main);
            if self.main.free() > 0 {
                break;
            }
            let (to_disk, survivors) = match self.group_dequeue(Queue::Main, io) {
                Ok(batch) => batch,
                Err(e) => {
                    let mut fallout = std::mem::take(&mut self.write_fallout);
                    self.serve_through(staged, &mut fallout, io);
                    self.write_fallout = fallout;
                    return Err(e);
                }
            };
            outcome.staged_out.extend(to_disk);
            for sc in survivors {
                // Space is normally guaranteed (the dequeue freed `n` slots
                // and at most `n - 1` survivors remain), but quarantine
                // holes absorbed at the rear can eat the freed space — a
                // survivor that loses its slot is diverted instead.
                self.absorb_quarantined_rear(Queue::Main);
                if self.main.free() == 0 {
                    let mut diverted = Vec::new();
                    self.serve_through(sc, &mut diverted, io);
                    outcome.staged_out.extend(diverted);
                    continue;
                }
                self.invalidate_previous(sc.page);
                self.enqueue_assign(Queue::Main, &sc);
            }
        }
        self.invalidate_previous(staged.page);
        self.enqueue_assign(Queue::Main, &staged);
        self.stats.cached_inserts.inc();
        Ok(())
    }

    /// Admit one version into the small (probationary) queue, promoting
    /// referenced victims into main as a side effect.
    fn admit_small(
        &mut self,
        staged: StagedPage,
        outcome: &mut InsertOutcome,
        io: &mut IoLog,
    ) -> DeviceResult<()> {
        if self.usable_capacity(Queue::Small) == 0 {
            outcome.cached = false;
            let mut diverted = Vec::new();
            self.serve_through(staged, &mut diverted, io);
            outcome.staged_out.extend(diverted);
            return Ok(());
        }
        loop {
            self.absorb_quarantined_rear(Queue::Small);
            if self.small.free() > 0 {
                break;
            }
            let (to_disk, promotions) = match self.group_dequeue(Queue::Small, io) {
                Ok(batch) => batch,
                Err(e) => {
                    let mut fallout = std::mem::take(&mut self.write_fallout);
                    self.serve_through(staged, &mut fallout, io);
                    self.write_fallout = fallout;
                    return Err(e);
                }
            };
            outcome.staged_out.extend(to_disk);
            for p in promotions {
                if let Err(e) = self.admit_main(p, outcome, io) {
                    let mut fallout = std::mem::take(&mut self.write_fallout);
                    self.serve_through(staged, &mut fallout, io);
                    self.write_fallout = fallout;
                    return Err(e);
                }
            }
        }
        self.invalidate_previous(staged.page);
        self.enqueue_assign(Queue::Small, &staged);
        self.stats.cached_inserts.inc();
        Ok(())
    }

    /// Restore a cache from its surviving flash-resident state after a
    /// crash. Identical reconciliation rules to `MvFifoCache::recover`
    /// (versions beyond `durable_lsn` are discarded and their slots
    /// physically invalidated; a bounded newest-first header scan re-admits
    /// uncovered window slots); the only structural difference is that the
    /// journal's packed pointers rebuild *two* queue windows, and the ghost
    /// directory restarts empty (it is RAM-only by design).
    pub fn recover(
        config: CacheConfig,
        store: Arc<dyn FlashStore>,
        survived: &MetaJournal,
        durable_lsn: Lsn,
        io: &mut IoLog,
    ) -> (Self, CacheRecoveryInfo) {
        let recovered = survived.recover(io);
        let group_size = config.group_size;

        let mut cache = Self::new(config, Arc::clone(&store));
        let (small_front, main_front) = unpack_pointers(recovered.front);
        let (small_size, main_size) = unpack_pointers(recovered.size);
        cache.small.front = small_front % cache.small.cap.max(1);
        cache.small.size = small_size.min(cache.small.cap);
        cache.main.front = main_front % cache.main.cap.max(1);
        cache.main.size = main_size.min(cache.main.cap);
        let mut info = CacheRecoveryInfo {
            survived: true,
            metadata_segments_loaded: u64::from(recovered.checkpoint_loaded)
                + survived.sealed_groups() as u64,
            checkpoint_loaded: recovered.checkpoint_loaded,
            checkpoint_entries_loaded: recovered.checkpoint_entries,
            journal_records_replayed: recovered.journal_records_replayed,
            ..CacheRecoveryInfo::default()
        };

        // Replay in journal order; later entries supersede earlier ones for
        // their page and their slot alike.
        let mut doomed_slots: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for e in &recovered.entries {
            let slot = e.slot as usize;
            if slot >= cache.slots.len() {
                continue;
            }
            let live = match cache.queue_of(slot) {
                Queue::Small => cache.small.in_window(slot),
                Queue::Main => cache.main.in_window(slot),
            };
            if !live {
                continue;
            }
            if e.lsn > durable_lsn {
                // Rule 1: the version outran the durable log. Its bytes own
                // the slot (data and metadata seal together), so any earlier
                // entry replayed onto the slot goes too.
                info.entries_discarded_beyond_wal += 1;
                doomed_slots.insert(slot);
                if let Some(old) = cache.slots[slot].take() {
                    if cache.dir.get(&old.page) == Some(&slot) {
                        cache.dir.remove(&old.page);
                    }
                }
                continue;
            }
            doomed_slots.remove(&slot);
            if let Some(old) = &cache.slots[slot] {
                if old.page != e.page && cache.dir.get(&old.page) == Some(&slot) {
                    cache.dir.remove(&old.page);
                }
            }
            if let Some(prev) = cache.dir.insert(e.page, slot) {
                if prev != slot {
                    if let Some(m) = &mut cache.slots[prev] {
                        m.valid = false;
                    }
                }
            }
            cache.slots[slot] = Some(SlotMeta {
                page: e.page,
                lsn: e.lsn,
                dirty: e.dirty,
                valid: true,
                referenced: false,
                epoch: e.epoch,
            });
        }

        for slot in &doomed_slots {
            store.clear_slot(*slot);
        }

        // Bounded tail scan (§4.2), shared budget across both regions,
        // newest-first within each: window slots the journal left uncovered
        // are probed through their page headers under the same rules.
        let mut scanned = 0u64;
        let scan_cap = (2 * group_size.max(1)) as u64;
        let windows = [cache.main, cache.small];
        for region in windows {
            for i in (0..region.size).rev() {
                if scanned >= scan_cap {
                    break;
                }
                let slot = region.slot_at(i);
                if cache.slots[slot].is_some() {
                    continue;
                }
                scanned += 1;
                info.pages_scanned += 1;
                if let Some((page, lsn)) = store.slot_header(slot) {
                    if lsn > durable_lsn || cache.dir.contains_key(&page) {
                        continue;
                    }
                    cache.dir.insert(page, slot);
                    cache.slots[slot] = Some(SlotMeta {
                        page,
                        lsn,
                        // The dirty flag is not in the page header; assume
                        // dirty (safe: at worst an extra disk write).
                        dirty: true,
                        valid: true,
                        referenced: false,
                        epoch: 0,
                    });
                }
            }
        }
        if scanned > 0 {
            io.flash_read_seq(scanned as u32);
        }

        info.entries_restored = cache.dir.len() as u64;
        cache.journal = survived.clone();
        // Reconciliation discarded versions the survivor's durable metadata
        // still describes: rewrite the snapshot from the reconciled
        // directory so a later recovery cannot resurrect the dead timeline.
        if info.entries_discarded_beyond_wal > 0 {
            let snapshot = cache.directory_snapshot();
            cache.journal.install_checkpoint(
                cache.packed_front(),
                cache.packed_size(),
                snapshot,
                io,
            );
        }
        (cache, info)
    }
}

impl FlashCache for S3FifoCache {
    fn policy_name(&self) -> &'static str {
        "S3-FIFO"
    }

    fn contains(&self, page: PageId) -> bool {
        self.dir.contains_key(&page)
    }

    fn fetch(&mut self, page: PageId, io: &mut IoLog) -> DeviceResult<Option<FlashFetch>> {
        self.stats.lookups.inc();
        let Some(&slot) = self.dir.get(&page) else {
            return Ok(None);
        };
        let Some(meta) = self.slots[slot].as_mut() else {
            return Ok(None);
        };
        debug_assert!(meta.valid, "directory points at an invalid version");
        self.stats.hits.inc();
        meta.referenced = true;
        let dirty = meta.dirty;
        let lsn = meta.lsn;
        io.flash_read_rand(1);
        Ok(Some(FlashFetch {
            data: self.slot_frame(slot)?.map(|f| f.as_ref().clone()),
            dirty,
            lsn,
        }))
    }

    fn fetch_pin(&mut self, page: PageId, retry: bool, io: &mut IoLog) -> Option<FetchPin> {
        if retry {
            self.stats.fetch_retries.inc();
        } else {
            self.stats.lookups.inc();
        }
        let slot = *self.dir.get(&page)?;
        let meta = self.slots[slot].as_mut()?;
        debug_assert!(meta.valid, "directory points at an invalid version");
        if !retry {
            self.stats.hits.inc();
        }
        meta.referenced = true;
        let lsn = meta.lsn;
        let dirty = meta.dirty;
        io.flash_read_rand(1);
        let (frame, data_expected) = match self.ram_frame(slot) {
            Some(frame) => {
                let expected = frame.is_some();
                (frame, expected)
            }
            None => (None, true),
        };
        Some(FetchPin {
            slot,
            lsn,
            dirty,
            generation: self.generations.current(slot),
            frame,
            data_expected,
        })
    }

    fn fetch_validate(&self, slot: usize, generation: u64) -> bool {
        self.generations.check(slot, generation)
    }

    fn insert(
        &mut self,
        staged: StagedPage,
        _supplier: &mut dyn PageSupplier,
        io: &mut IoLog,
    ) -> DeviceResult<InsertOutcome> {
        self.stats.inserts.inc();
        if staged.dirty {
            self.stats.dirty_inserts.inc();
        }
        let mut outcome = InsertOutcome {
            cached: true,
            ..Default::default()
        };

        // Conditional enqueue (shared with Algorithm 1): a clean page whose
        // identical copy is already cached is not enqueued again.
        if !staged.fdirty && self.dir.contains_key(&staged.page) {
            self.stats.skipped_inserts.inc();
            return Ok(outcome);
        }

        let admitted = if self.dir.contains_key(&staged.page) {
            // A newer version of a cached page: it is demonstrably no
            // one-hit wonder — the fresh version goes to main.
            self.admit_main(staged, &mut outcome, io)
        } else if self.ghost.take(staged.page) {
            // The id came back while its ghost entry was live: the
            // re-reference earns the flash write, straight into main.
            self.stats.admission_ghost_hits.inc();
            self.admit_main(staged, &mut outcome, io)
        } else if staged.dirty {
            // A dirty first touch must be absorbed (write economy is bought
            // with exactly these writes) — probation in the small queue.
            self.admit_small(staged, &mut outcome, io)
        } else {
            // Clean first touch: ghost only. No flash write for a potential
            // one-hit wonder; the disk copy is current, so rejecting is safe.
            self.ghost.record(staged.page);
            self.stats.admission_filtered.inc();
            outcome.cached = false;
            return Ok(outcome);
        };
        if let Err(e) = admitted {
            // Already-dequeued pages would be lost with the Err (it carries
            // no outcome): move them to the fallout buffer the caller
            // drains alongside the error.
            self.write_fallout.append(&mut outcome.staged_out);
            return Err(e);
        }

        if self.pending_slots.len() >= self.config.group_size {
            if self.config.defer_group_writes {
                outcome.pending_group = self.form_pending_group();
            } else if let Err(e) = self.flush_pending(io) {
                self.write_fallout.append(&mut outcome.staged_out);
                return Err(e);
            }
        }
        Ok(outcome)
    }

    fn group_write_pending(&self, epoch: u64) -> bool {
        self.inflight.get(&epoch).is_some_and(|g| !g.completed)
    }

    fn complete_group(&mut self, epoch: u64, io: &mut IoLog) {
        let Some(group) = self.inflight.get_mut(&epoch) else {
            return;
        };
        group.completed = true;
        while let Some((&oldest, group)) = self.inflight.iter().next() {
            if !group.completed {
                break;
            }
            let group = self.inflight.remove(&oldest).expect("key just observed");
            for w in &group.write.pages {
                if self
                    .inflight_data
                    .get(&w.slot)
                    .is_some_and(|(e, _)| *e == oldest)
                {
                    self.inflight_data.remove(&w.slot);
                }
            }
            self.journal.seal_detached_group(
                group.write.meta_records,
                self.packed_front(),
                self.packed_size(),
                io,
            );
        }
        self.maybe_cadence_checkpoint(io);
    }

    fn sync(&mut self, io: &mut IoLog) -> DeviceResult<()> {
        self.checkpoint_metadata(io)
    }

    fn take_write_fallout(&mut self) -> Vec<StagedPage> {
        std::mem::take(&mut self.write_fallout)
    }

    fn evacuate_dirty(&mut self, io: &mut IoLog) -> Evacuation {
        // Same contract as mvFIFO: dirty flash pages are the only persistent
        // copy; flags are left set so a failed disk write can be retried.
        // Each flush error aborts exactly one group (its dirty pages land
        // in the fallout buffer), so this loop is bounded.
        while self.flush_all_groups_inline(io).is_err() {}
        let mut ev = Evacuation::default();
        ev.pages.append(&mut self.write_fallout);
        let mut scanned = 0u32;
        for region in [self.small, self.main] {
            for i in 0..region.size {
                let slot = region.slot_at(i);
                let Some(meta) = self.slots[slot].as_ref() else {
                    continue;
                };
                if !meta.valid || !meta.dirty {
                    continue;
                }
                scanned += 1;
                let data = if self.store.carries_data() {
                    match self.store.read_slot(slot) {
                        Ok(Some(p)) => Some(Arc::new(p)),
                        // Unreadable dirty resident on a failing device:
                        // counted, and a data-less marker emitted so the
                        // caller can block stale disk serves of the page
                        // until WAL redo rebuilds it.
                        Ok(None) | Err(_) => {
                            ev.unread_dirty += 1;
                            ev.pages.push(StagedPage {
                                page: meta.page,
                                lsn: meta.lsn,
                                dirty: true,
                                fdirty: false,
                                data: None,
                            });
                            continue;
                        }
                    }
                } else {
                    None
                };
                io.disk_write(meta.page);
                ev.pages.push(StagedPage {
                    page: meta.page,
                    lsn: meta.lsn,
                    dirty: true,
                    fdirty: false,
                    data,
                });
            }
        }
        if scanned > 0 {
            io.flash_read_seq(scanned);
        }
        ev
    }

    fn quarantine_slot(&mut self, slot: usize, io: &mut IoLog) -> QuarantineOutcome {
        let mut out = QuarantineOutcome::default();
        if slot >= self.config.capacity_pages || self.quarantined.contains(&slot) {
            return out;
        }
        out.quarantined = true;
        self.quarantined.insert(slot);
        self.generations.bump(slot);
        // Pull the slot out of the not-yet-written pending batch; its
        // journal record goes with it, so data and metadata leave together.
        let pending = self
            .pending_slots
            .iter()
            .position(|&s| s == slot)
            .and_then(|pos| {
                self.pending_slots.remove(pos);
                self.journal.remove_current_records_for_slot(slot as u32);
                self.pending_data.remove(pos)
            });
        let inflight = self.inflight_data.get(&slot).map(|(_, f)| Arc::clone(f));
        let Some(meta) = self.slots[slot].take() else {
            return out;
        };
        if !meta.valid {
            return out;
        }
        if self.dir.get(&meta.page) == Some(&slot) {
            self.dir.remove(&meta.page);
        }
        out.removed = Some(meta.page);
        if !meta.dirty {
            return out;
        }
        // Dirty resident: RAM copies first; the failing device only as a
        // last resort (an unreadable dirty resident is counted and
        // recovered through WAL redo).
        let data = match pending.or(inflight) {
            Some(frame) => Some(frame),
            None if self.store.carries_data() => match self.store.read_slot(slot) {
                Ok(Some(p)) => Some(Arc::new(p)),
                Ok(None) | Err(_) => {
                    // Bytes lost: hand back a data-less evacuee so the
                    // caller can block stale disk serves until WAL redo
                    // rebuilds the page.
                    out.dirty_unread = true;
                    out.evacuee = Some(StagedPage {
                        page: meta.page,
                        lsn: meta.lsn,
                        dirty: true,
                        fdirty: false,
                        data: None,
                    });
                    return out;
                }
            },
            None => None,
        };
        io.disk_write(meta.page);
        out.evacuee = Some(StagedPage {
            page: meta.page,
            lsn: meta.lsn,
            dirty: true,
            fdirty: false,
            data,
        });
        out
    }

    fn abort_group(&mut self, epoch: u64, io: &mut IoLog) -> Vec<StagedPage> {
        let Some(group) = self.inflight.remove(&epoch) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for w in &group.write.pages {
            if self
                .inflight_data
                .get(&w.slot)
                .is_some_and(|(e, _)| *e == epoch)
            {
                self.inflight_data.remove(&w.slot);
            }
            let occupant_matches = self.slots[w.slot]
                .as_ref()
                .is_some_and(|m| m.epoch == epoch && m.page == w.page);
            if !occupant_matches {
                // The slot was dequeued or reassigned since; whatever lives
                // there now belongs to a different (younger) group.
                continue;
            }
            self.generations.bump(w.slot);
            let meta = self.slots[w.slot].take().expect("occupant just observed");
            if self.dir.get(&meta.page) == Some(&w.slot) {
                self.dir.remove(&meta.page);
            }
            if meta.valid && meta.dirty {
                io.disk_write(meta.page);
                self.stats.staged_out_to_disk.inc();
                out.push(StagedPage {
                    page: meta.page,
                    lsn: meta.lsn,
                    dirty: true,
                    fdirty: false,
                    data: w.data.clone(),
                });
            }
        }
        out
    }

    fn persists_dirty_pages(&self) -> bool {
        true
    }

    fn crash_and_recover(&mut self, durable_lsn: Lsn, io: &mut IoLog) -> CacheRecoveryInfo {
        // RAM-resident state — directory, slot metadata, pending batch, the
        // unsealed journal group AND the ghost directory — is lost; the
        // flash contents, cache checkpoint and sealed groups survive.
        let mut survivor = self.journal.clone();
        survivor.crash();
        let config = self.config.clone();
        let store = Arc::clone(&self.store);
        let stats = self.stats.snapshot();
        let (mut rebuilt, info) = Self::recover(config, store, &survivor, durable_lsn, io);
        rebuilt.stats = CacheStatCounters::from(stats);
        *self = rebuilt;
        info
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn capacity(&self) -> usize {
        self.config.capacity_pages
    }

    fn len(&self) -> usize {
        self.small.size + self.main.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoSupplier;
    use crate::store::MemFlashStore;

    fn pid(n: u32) -> PageId {
        PageId::new(0, n)
    }

    fn cfg(capacity: usize, group: usize) -> CacheConfig {
        CacheConfig {
            capacity_pages: capacity,
            group_size: group,
            meta_checkpoint_interval_groups: 4,
            ..CacheConfig::default()
        }
    }

    fn staged(n: u32, lsn: u64, dirty: bool) -> StagedPage {
        let mut page = Page::new(pid(n));
        page.set_lsn(Lsn(lsn));
        page.update_checksum();
        StagedPage::with_data(page, dirty, true)
    }

    fn cache(capacity: usize, group: usize) -> (S3FifoCache, Arc<MemFlashStore>) {
        let store = Arc::new(MemFlashStore::new(capacity));
        (
            S3FifoCache::new(
                cfg(capacity, group),
                Arc::clone(&store) as Arc<dyn FlashStore>,
            ),
            store,
        )
    }

    #[test]
    fn clean_first_touch_is_ghosted_not_cached() {
        let (mut c, store) = cache(16, 2);
        let mut io = IoLog::new();
        let outcome = c
            .insert(staged(1, 1, false), &mut NoSupplier, &mut io)
            .unwrap();
        assert!(!outcome.cached, "one-touch clean page is rejected");
        assert!(!c.contains(pid(1)));
        assert_eq!(c.ghost_len(), 1);
        assert_eq!(c.stats().admission_filtered, 1);
        c.sync(&mut io).unwrap();
        assert_eq!(store.pages_written(), 0, "no flash write was paid");
    }

    #[test]
    fn ghost_re_reference_is_admitted_to_main() {
        let (mut c, store) = cache(16, 1);
        let mut io = IoLog::new();
        assert!(
            !c.insert(staged(1, 1, false), &mut NoSupplier, &mut io)
                .unwrap()
                .cached
        );
        let outcome = c
            .insert(staged(1, 2, false), &mut NoSupplier, &mut io)
            .unwrap();
        assert!(outcome.cached, "re-referenced ghost entry is admitted");
        assert!(c.contains(pid(1)));
        let (small, main) = c.region_sizes();
        assert_eq!((small, main), (0, 1), "ghost hits go straight to main");
        assert_eq!(c.stats().admission_ghost_hits, 1);
        c.sync(&mut io).unwrap();
        assert!(store.pages_written() >= 1, "the comeback paid its write");
    }

    #[test]
    fn dirty_first_touch_enters_small_queue() {
        let (mut c, _) = cache(16, 1);
        let mut io = IoLog::new();
        assert!(
            c.insert(staged(1, 1, true), &mut NoSupplier, &mut io)
                .unwrap()
                .cached
        );
        let (small, main) = c.region_sizes();
        assert_eq!((small, main), (1, 0));
        assert!(c.contains(pid(1)));
    }

    #[test]
    fn unreferenced_small_victims_demote_to_ghost_dirty_ones_reach_disk() {
        // capacity 20 → small cap 2. Fill small with dirty pages and keep
        // inserting: victims are unreferenced, so they demote.
        let (mut c, _) = cache(20, 1);
        let mut io = IoLog::new();
        for n in 0..5 {
            assert!(
                c.insert(staged(n, n as u64 + 1, true), &mut NoSupplier, &mut io)
                    .unwrap()
                    .cached
            );
        }
        let (small, main) = c.region_sizes();
        assert_eq!(small, 2, "small queue stays at its capacity");
        assert_eq!(main, 0, "no victim was referenced, nothing promoted");
        let stats = c.stats();
        assert_eq!(stats.staged_out_to_disk, 3, "dirty demotions reached disk");
        assert!(c.ghost_len() >= 3, "demoted ids are remembered as ghosts");
    }

    #[test]
    fn referenced_small_victims_promote_to_main() {
        let (mut c, _) = cache(20, 1);
        let mut io = IoLog::new();
        c.insert(staged(1, 1, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert!(
            c.fetch(pid(1), &mut io).unwrap().is_some(),
            "touch it while cached"
        );
        // Force small evictions by pushing more dirty first-touches.
        c.insert(staged(2, 2, true), &mut NoSupplier, &mut io)
            .unwrap();
        c.insert(staged(3, 3, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert!(c.contains(pid(1)), "referenced victim survived");
        let slot = *c.dir.get(&pid(1)).unwrap();
        assert!(slot >= c.small.cap, "page 1 now lives in the main region");
        assert!(c.stats().second_chances >= 1);
    }

    #[test]
    fn main_eviction_gives_second_chances_with_forced_progress() {
        let (mut c, _) = cache(20, 2);
        let mut io = IoLog::new();
        // Fill main via ghost re-references (reject once, insert again).
        for n in 0..30u32 {
            c.insert(
                staged(n, u64::from(n) * 2 + 1, false),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
            c.insert(
                staged(n, u64::from(n) * 2 + 2, false),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        }
        let (_, main) = c.region_sizes();
        assert_eq!(main, 18, "main region is full");
        // Reference everything cached, then keep inserting: forced progress
        // must still evict.
        let cached: Vec<PageId> = c.dir.keys().copied().collect();
        for p in &cached {
            assert!(c.fetch(*p, &mut io).unwrap().is_some());
        }
        for n in 100..110u32 {
            c.insert(
                staged(n, 1000 + u64::from(n), false),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
            c.insert(
                staged(n, 2000 + u64::from(n), false),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        }
        assert!(c.len() <= c.capacity());
        assert!(c.stats().second_chances > 0);
    }

    #[test]
    fn updates_of_cached_pages_invalidate_previous_versions() {
        let (mut c, _) = cache(20, 1);
        let mut io = IoLog::new();
        c.insert(staged(1, 1, true), &mut NoSupplier, &mut io)
            .unwrap();
        c.insert(staged(1, 2, true), &mut NoSupplier, &mut io)
            .unwrap();
        assert_eq!(c.stats().invalidations, 1);
        let f = c.fetch(pid(1), &mut io).unwrap().unwrap();
        assert_eq!(f.lsn, Lsn(2), "latest version is served");
        // The update of a cached page goes to main (proven re-reference).
        let slot = *c.dir.get(&pid(1)).unwrap();
        assert!(slot >= c.small.cap);
    }

    #[test]
    fn clean_identical_copy_is_skipped() {
        let (mut c, _) = cache(16, 1);
        let mut io = IoLog::new();
        c.insert(staged(1, 1, true), &mut NoSupplier, &mut io)
            .unwrap();
        let mut page = Page::new(pid(1));
        page.set_lsn(Lsn(1));
        let dup = StagedPage::with_data(page, false, false);
        let outcome = c.insert(dup, &mut NoSupplier, &mut io).unwrap();
        assert!(outcome.cached);
        assert_eq!(c.stats().skipped_inserts, 1);
    }

    #[test]
    fn fetch_serves_data_and_lock_light_pins_validate() {
        let (mut c, _) = cache(16, 1);
        let mut io = IoLog::new();
        c.insert(staged(7, 3, true), &mut NoSupplier, &mut io)
            .unwrap();
        let f = c.fetch(pid(7), &mut io).unwrap().unwrap();
        assert!(f.dirty);
        assert_eq!(f.lsn, Lsn(3));
        assert!(f.data.is_some());

        let pin = c.fetch_pin(pid(7), false, &mut io).unwrap();
        assert!(c.fetch_validate(pin.slot, pin.generation));
        // Evicting the slot invalidates the pin.
        let mut io2 = IoLog::new();
        for n in 100..140u32 {
            c.insert(
                staged(n, 100 + u64::from(n), true),
                &mut NoSupplier,
                &mut io2,
            )
            .unwrap();
            c.insert(
                staged(n, 200 + u64::from(n), true),
                &mut NoSupplier,
                &mut io2,
            )
            .unwrap();
        }
        let still_valid = c.fetch_validate(pin.slot, pin.generation);
        if !c.contains(pid(7)) {
            assert!(!still_valid, "a pin on an evicted slot must not validate");
        }
    }

    #[test]
    fn deferred_groups_seal_in_epoch_order() {
        let store = Arc::new(MemFlashStore::new(20));
        let config = CacheConfig {
            defer_group_writes: true,
            // Keep the checkpoint cadence out of the way: a checkpoint folds
            // (prunes) sealed groups, which would hide the seals under test.
            meta_checkpoint_interval_groups: 1000,
            ..cfg(20, 2)
        };
        let mut c = S3FifoCache::new(config, store);
        let mut io = IoLog::new();
        let mut pending = Vec::new();
        for n in 0..8u32 {
            let out = c
                .insert(staged(n, u64::from(n) + 1, true), &mut NoSupplier, &mut io)
                .unwrap();
            if let Some(w) = out.pending_group {
                pending.push(w);
            }
        }
        assert!(!pending.is_empty(), "deferred mode hands groups back");
        // Complete out of order: seals must still be contiguous.
        let sealed_before = c.journal().sealed_groups();
        for w in pending.iter().rev() {
            assert!(c.group_write_pending(w.epoch));
            w.apply(&*c.store, &mut io).unwrap();
            c.complete_group(w.epoch, &mut io);
        }
        assert!(c.journal().sealed_groups() > sealed_before);
        for w in &pending {
            assert!(!c.group_write_pending(w.epoch));
        }
    }

    #[test]
    fn crash_and_recover_preserves_queue_membership() {
        let (mut c, _) = cache(24, 2);
        let mut io = IoLog::new();
        // Mixed population: dirty first-touches (small), ghost comebacks
        // (main), promotions.
        for n in 0..6u32 {
            c.insert(staged(n, u64::from(n) + 1, true), &mut NoSupplier, &mut io)
                .unwrap();
        }
        for n in 10..14u32 {
            c.insert(staged(n, u64::from(n) + 1, false), &mut NoSupplier, &mut io)
                .unwrap();
            c.insert(
                staged(n, u64::from(n) + 20, false),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        }
        c.sync(&mut io).unwrap();
        let before = c.valid_versions();
        let sizes_before = c.region_sizes();
        let info = c.crash_and_recover(Lsn(u64::MAX), &mut io);
        assert!(info.survived);
        assert_eq!(c.valid_versions(), before, "directory survives the crash");
        assert_eq!(c.region_sizes(), sizes_before, "queue membership survives");
        assert_eq!(c.ghost_len(), 0, "the ghost directory is volatile");
        // Served versions still fetch.
        for (page, lsn, _) in before {
            let f = c
                .fetch(page, &mut io)
                .unwrap()
                .expect("recovered page fetches");
            assert_eq!(f.lsn, lsn);
        }
    }

    #[test]
    fn recovery_never_resurrects_beyond_durable_versions() {
        let (mut c, _) = cache(24, 2);
        let mut io = IoLog::new();
        // Admit via ghost comebacks so all six land in main (the small queue
        // holds only two pages at this capacity and would demote the rest).
        for n in 0..6u32 {
            c.insert(staged(n, 1, false), &mut NoSupplier, &mut io)
                .unwrap();
            c.insert(
                staged(n, 10 + u64::from(n), false),
                &mut NoSupplier,
                &mut io,
            )
            .unwrap();
        }
        c.sync(&mut io).unwrap();
        // durable_lsn 12: versions with LSN 13..15 outran the log.
        let info = c.crash_and_recover(Lsn(12), &mut io);
        assert!(
            info.entries_discarded_beyond_wal >= 3,
            "discarded {}",
            info.entries_discarded_beyond_wal
        );
        for n in 0..6u32 {
            if let Some(f) = c.fetch(pid(n), &mut io).unwrap() {
                assert!(f.lsn <= Lsn(12), "resurrected beyond-durable version");
            }
        }
        // A second crash/recovery stays consistent (doomed slots were
        // physically invalidated and the checkpoint rewritten).
        let before = c.valid_versions();
        c.crash_and_recover(Lsn(u64::MAX), &mut io);
        assert_eq!(c.valid_versions(), before);
    }

    #[test]
    fn capacity_splits_give_both_regions_at_least_one_slot() {
        for capacity in [2usize, 3, 10, 100] {
            let config = cfg(capacity, 1);
            let (small, main) = S3FifoCache::split_capacity(&config);
            assert!(small >= 1 && main >= 1);
            assert_eq!(small + main, capacity);
        }
        let extreme = CacheConfig {
            s3_small_fraction: 1.0,
            ..cfg(8, 1)
        };
        let (small, main) = S3FifoCache::split_capacity(&extreme);
        assert_eq!((small, main), (7, 1));
    }

    #[test]
    fn pointer_packing_round_trips() {
        for (s, m) in [(0usize, 0usize), (3, 7), (u32::MAX as usize - 1, 12)] {
            assert_eq!(unpack_pointers(pack_pointers(s, m)), (s, m));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn check_structure(cache: &S3FifoCache) {
            assert!(cache.len() <= cache.capacity());
            let (small, main) = cache.region_sizes();
            assert!(small <= cache.small.cap, "small region within its cap");
            assert!(main <= cache.main.cap, "main region within its cap");
            for (p, s) in cache.dir.iter() {
                let m = cache.slots[*s]
                    .as_ref()
                    .expect("directory points at a slot");
                assert!(m.valid, "directory must reference valid versions only");
                assert_eq!(m.page, *p);
                assert!(
                    cache.small.in_window(*s) || cache.main.in_window(*s),
                    "slot {s} outside both queue windows"
                );
            }
            // At most one valid version per page.
            let mut valid_pages = std::collections::HashSet::new();
            for m in cache.slots.iter().flatten() {
                if m.valid {
                    assert!(valid_pages.insert(m.page), "duplicate valid version");
                }
            }
        }

        /// An arbitrary interleaving of inserts and fetches against any
        /// geometry preserves the structural invariants of S3-FIFO (bounded
        /// regions, a directory that only points at valid in-window slots),
        /// and — the admission property — a clean page the workload touches
        /// once never costs a flash write.
        fn check(ops: Vec<(u8, u32, bool)>, capacity: usize, group: usize) {
            let store = Arc::new(MemFlashStore::new(capacity));
            let mut cache = S3FifoCache::new(
                cfg(capacity, group),
                Arc::clone(&store) as Arc<dyn FlashStore>,
            );
            let mut io = IoLog::new();
            let mut touched: std::collections::HashMap<PageId, u32> =
                std::collections::HashMap::new();
            let mut any_dirty_or_repeat = false;
            for (i, (op, page, dirty)) in ops.iter().enumerate() {
                let page_id = pid(page % 64);
                if op % 3 == 0 {
                    cache.fetch(page_id, &mut io).unwrap();
                } else {
                    cache
                        .insert(
                            staged(page % 64, i as u64 + 1, *dirty),
                            &mut NoSupplier,
                            &mut io,
                        )
                        .unwrap();
                    let n = touched.entry(page_id).or_insert(0);
                    *n += 1;
                    if *dirty || *n > 1 {
                        any_dirty_or_repeat = true;
                    }
                }
                check_structure(&cache);
            }
            cache.sync(&mut io).unwrap();
            if !any_dirty_or_repeat {
                assert_eq!(
                    store.pages_written(),
                    0,
                    "a stream of clean one-touch pages must not cost flash writes"
                );
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn invariants_hold_under_arbitrary_interleavings(
                ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<bool>()), 1..200),
                group in 1usize..8,
            ) {
                check(ops, 24, group);
            }

            /// Distinct clean pages only (one touch each, forced clean): the
            /// write-economy promise holds for any such stream.
            #[test]
            fn one_touch_clean_streams_never_pay_flash_writes(
                raw in prop::collection::vec(0u32..512, 1..100),
            ) {
                let mut seen = std::collections::HashSet::new();
                let ops = raw
                    .into_iter()
                    .filter(|p| seen.insert(*p))
                    .map(|p| (1u8, p, false))
                    .collect::<Vec<_>>();
                let store = Arc::new(MemFlashStore::new(16));
                let mut cache = S3FifoCache::new(
                    cfg(16, 2),
                    Arc::clone(&store) as Arc<dyn FlashStore>,
                );
                let mut io = IoLog::new();
                for (i, (_, p, _)) in ops.iter().enumerate() {
                    let out = cache.insert(
                        staged(*p, i as u64 + 1, false),
                        &mut NoSupplier,
                        &mut io,
                    )
                    .unwrap();
                    prop_assert!(!out.cached);
                }
                cache.sync(&mut io).unwrap();
                prop_assert_eq!(store.pages_written(), 0);
            }
        }

        /// Crash-point recovery property, mirroring mvFIFO's: run a recorded
        /// history (with the deferred destage pipeline in every intermediate
        /// state), crash after `crash_at` operations, recover with an
        /// arbitrary durable LSN, and check the recovered directory is a
        /// prefix-consistent subset of what the history enqueued.
        fn check_crash_recovery(
            ops: Vec<(u8, u32, bool)>,
            crash_at: usize,
            durable_pick: u8,
            capacity: usize,
            group: usize,
            defer: bool,
        ) {
            use std::collections::HashMap as Map;
            let store = Arc::new(MemFlashStore::new(capacity));
            let config = CacheConfig {
                defer_group_writes: defer,
                ..cfg(capacity, group)
            };
            let mut cache = S3FifoCache::new(config, Arc::clone(&store) as Arc<dyn FlashStore>);
            let mut io = IoLog::new();
            let mut enqueued: std::collections::HashSet<(PageId, Lsn)> =
                std::collections::HashSet::new();
            let mut latest: Map<PageId, Lsn> = Map::new();
            let crash_at = crash_at % (ops.len() + 1);
            let mut max_lsn = 0u64;
            for (i, (op, page, dirty)) in ops.iter().take(crash_at).enumerate() {
                let lsn = Lsn(i as u64 + 1);
                let page_id = pid(page % 48);
                match op % 4 {
                    0 => {
                        cache.fetch(page_id, &mut io).unwrap();
                    }
                    1 => cache.sync(&mut io).unwrap(),
                    _ => {
                        let out = cache
                            .insert(staged(page % 48, lsn.0, *dirty), &mut NoSupplier, &mut io)
                            .unwrap();
                        if let Some(write) = out.pending_group {
                            match op % 3 {
                                0 => {} // enqueued, never written
                                1 => write.apply(&*store, &mut io).unwrap(),
                                _ => {
                                    write.apply(&*store, &mut io).unwrap();
                                    cache.complete_group(write.epoch, &mut io);
                                }
                            }
                        }
                        if out.cached {
                            enqueued.insert((page_id, lsn));
                            latest.insert(page_id, lsn);
                        }
                        max_lsn = lsn.0;
                    }
                }
            }
            let durable = Lsn((durable_pick as u64) % (max_lsn + 2));
            let info = cache.crash_and_recover(durable, &mut io);
            assert!(info.survived);
            for (page, lsn, _dirty) in cache.valid_versions() {
                assert!(
                    lsn <= durable,
                    "{page}: recovered lsn {lsn:?} beyond durable {durable:?}"
                );
                assert!(
                    enqueued.contains(&(page, lsn)),
                    "{page}: recovered version {lsn:?} was never enqueued"
                );
                let newest = latest.get(&page).copied().expect("page was enqueued");
                assert!(
                    lsn <= newest,
                    "{page}: recovered {lsn:?} newer than pre-crash latest {newest:?}"
                );
            }
            check_structure(&cache);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn any_crash_point_recovers_a_prefix_consistent_subset(
                ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<bool>()), 1..250),
                crash_at in any::<u16>(),
                durable in any::<u8>(),
                group in 1usize..8,
            ) {
                check_crash_recovery(ops, crash_at as usize, durable, 32, group, false);
            }

            #[test]
            fn any_destage_crash_point_recovers_a_prefix_consistent_subset(
                ops in prop::collection::vec((any::<u8>(), any::<u32>(), any::<bool>()), 1..250),
                crash_at in any::<u16>(),
                durable in any::<u8>(),
                group in 1usize..8,
            ) {
                check_crash_recovery(ops, crash_at as usize, durable, 32, group, true);
            }
        }
    }
}
