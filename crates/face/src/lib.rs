//! # face-cache — the FaCE flash cache extension
//!
//! The paper's primary contribution: managing a flash SSD as a second-level
//! cache between the DRAM buffer pool and the disk array, optimised for the
//! write asymmetry of flash memory, and extending the persistent database to
//! include the cached pages so that checkpointing and restart become cheaper.
//!
//! ## Policies
//!
//! | Policy | When cached | Sync | Replacement | Module |
//! |---|---|---|---|---|
//! | FaCE (mvFIFO) | on exit from DRAM | write-back | multi-version FIFO | [`mvfifo`] |
//! | FaCE + GR | on exit | write-back | mvFIFO, batched group I/O | [`mvfifo`] |
//! | FaCE + GSC | on exit | write-back | mvFIFO, group second chance | [`mvfifo`] |
//! | S3-FIFO | on exit, ghost-gated | write-back | small/main/ghost FIFO | [`s3fifo`] |
//! | LC (lazy cleaning) | on exit | write-back | LRU-2, in-place overwrite | [`lc`] |
//! | TAC (temperature-aware) | on entry | write-through | temperature buckets | [`tac`] |
//!
//! All policies implement the [`FlashCache`] trait, record the physical I/O
//! they cause in an [`IoLog`] (so the simulation driver can charge calibrated
//! device times), and optionally carry real page data through a [`FlashStore`]
//! (so the functional engine, the recovery tests and the examples move real
//! bytes).
//!
//! ## Recovery
//!
//! [`meta::MetaJournal`] implements the paper's §4 mapping-metadata
//! persistence for the functional engine: every enqueue appends a compact
//! journal record (page id, slot, pageLSN, dirty bit, group epoch) that is
//! flushed *with its group's batch write*, and a periodic
//! [`meta::CacheCheckpoint`] snapshots the directory so restart replays a
//! bounded amount of journal. Recovery reconciles the rebuilt directory
//! against the WAL's durable end: versions newer than the durable log are
//! discarded; dirty versions at or below it substitute for disk reads during
//! redo. The older [`directory::MetadataDirectory`] (fixed-size segments plus
//! a header scan of recently enqueued pages) is kept as a standalone model of
//! the paper's original segment scheme — every cache, simulated or
//! functional, recovers through the journal; the directory's remaining
//! consumer is the `recovery` micro-bench.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod concurrent;
pub mod cost_model;
pub mod degrade;
pub mod destage;
pub mod directory;
pub mod io;
pub mod lc;
pub mod meta;
pub mod mvfifo;
pub mod policy;
pub mod s3fifo;
pub mod store;
pub mod tac;
pub mod types;

pub use admission::{GhostQueue, SharedGhost};
pub use concurrent::ShardedFlashCache;
pub use cost_model::{AccessMix, CostModel};
pub use degrade::{BreakerState, DegradeAction, DegradeConfig, DegradeController, DegradeStats};
pub use destage::{
    DestageConfig, DestageJob, DestageSink, DestageStats, Destager, PendingGroupWrite,
    PendingSlotWrite,
};
pub use directory::{DirEntry, MetadataDirectory, RecoveredDirectory};
pub use io::{FlashIoEvent, IoLog, StripedIoLog};
pub use lc::LcCache;
pub use meta::{CacheCheckpoint, JournalEntry, JournalStats, MetaJournal, RecoveredJournal};
pub use mvfifo::MvFifoCache;
pub use policy::{build_cache, CachePolicyKind, FlashCache, NoSupplier, PageSupplier};
pub use s3fifo::S3FifoCache;
pub use store::{
    FaultyFlashStore, FlashStore, GateFlashStore, HeaderFlashStore, MemFlashStore, NullFlashStore,
};
pub use tac::TacCache;
pub use types::{
    CacheConfig, CacheRecoveryInfo, CacheStatCounters, CacheStats, Counter, Evacuation, FetchPin,
    FlashFetch, InsertOutcome, QuarantineOutcome, StagedPage,
};
