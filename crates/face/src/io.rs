//! Physical I/O event log.
//!
//! Every cache operation appends the physical I/O it causes to an [`IoLog`].
//! The functional engine mostly ignores the log (its stores already moved the
//! bytes); the simulation driver replays each event against the calibrated
//! devices of `face-iosim` to charge virtual time. Keeping the description of
//! *what I/O a policy causes* inside the policy is what makes the comparison
//! between FaCE, LC and TAC meaningful: the policies differ precisely in the
//! amount and the pattern (random vs sequential) of flash and disk I/O.

use face_pagestore::PageId;
use serde::{Deserialize, Serialize};

/// One physical I/O caused by a flash-cache operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlashIoEvent {
    /// A write of `pages` consecutive pages to the flash device.
    FlashWrite {
        /// Number of 4 KiB pages.
        pages: u32,
        /// Whether the write is sequential (append-only queue writes and
        /// metadata segment flushes) or random (in-place overwrites).
        sequential: bool,
    },
    /// A read of `pages` consecutive pages from the flash device.
    FlashRead {
        /// Number of 4 KiB pages.
        pages: u32,
        /// Whether the read is sequential (group dequeues, recovery scans) or
        /// random (flash hits).
        sequential: bool,
    },
    /// A single-page write to the disk array (stage-out of a dirty page or a
    /// write-through).
    DiskWrite {
        /// The page written.
        page: PageId,
    },
    /// A single-page read from the disk array (only recovery uses this from
    /// within the cache layer).
    DiskRead {
        /// The page read.
        page: PageId,
    },
}

impl FlashIoEvent {
    /// The number of 4 KiB pages this event transfers.
    pub fn pages(&self) -> u32 {
        match self {
            FlashIoEvent::FlashWrite { pages, .. } | FlashIoEvent::FlashRead { pages, .. } => {
                *pages
            }
            FlashIoEvent::DiskWrite { .. } | FlashIoEvent::DiskRead { .. } => 1,
        }
    }

    /// Whether this event touches the flash device.
    pub fn is_flash(&self) -> bool {
        matches!(
            self,
            FlashIoEvent::FlashWrite { .. } | FlashIoEvent::FlashRead { .. }
        )
    }

    /// Whether this event is a write.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            FlashIoEvent::FlashWrite { .. } | FlashIoEvent::DiskWrite { .. }
        )
    }
}

/// An append-only list of [`FlashIoEvent`]s produced by one or more cache
/// operations.
#[derive(Debug, Clone, Default)]
pub struct IoLog {
    events: Vec<FlashIoEvent>,
}

impl IoLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: FlashIoEvent) {
        self.events.push(event);
    }

    /// Record a sequential flash write of `pages` pages.
    pub fn flash_write_seq(&mut self, pages: u32) {
        self.push(FlashIoEvent::FlashWrite {
            pages,
            sequential: true,
        });
    }

    /// Record a random flash write of `pages` pages.
    pub fn flash_write_rand(&mut self, pages: u32) {
        self.push(FlashIoEvent::FlashWrite {
            pages,
            sequential: false,
        });
    }

    /// Record a sequential flash read of `pages` pages.
    pub fn flash_read_seq(&mut self, pages: u32) {
        self.push(FlashIoEvent::FlashRead {
            pages,
            sequential: true,
        });
    }

    /// Record a random flash read of `pages` pages.
    pub fn flash_read_rand(&mut self, pages: u32) {
        self.push(FlashIoEvent::FlashRead {
            pages,
            sequential: false,
        });
    }

    /// Record a disk write of one page.
    pub fn disk_write(&mut self, page: PageId) {
        self.push(FlashIoEvent::DiskWrite { page });
    }

    /// Record a disk read of one page.
    pub fn disk_read(&mut self, page: PageId) {
        self.push(FlashIoEvent::DiskRead { page });
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[FlashIoEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Remove and return all events (the simulation driver drains the log
    /// after each engine operation).
    pub fn drain(&mut self) -> Vec<FlashIoEvent> {
        std::mem::take(&mut self.events)
    }

    /// Append every event of `other` (merging a per-operation local log into
    /// a shared one).
    pub fn merge(&mut self, mut other: IoLog) {
        self.events.append(&mut other.events);
    }

    /// Clear without returning.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Total flash pages written (any pattern).
    pub fn flash_pages_written(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.is_flash() && e.is_write())
            .map(|e| e.pages() as u64)
            .sum()
    }

    /// Total flash pages written randomly.
    pub fn flash_pages_written_random(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                FlashIoEvent::FlashWrite {
                    pages,
                    sequential: false,
                } => Some(*pages as u64),
                _ => None,
            })
            .sum()
    }

    /// Total disk page writes.
    pub fn disk_writes(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, FlashIoEvent::DiskWrite { .. }))
            .count() as u64
    }

    /// Total disk page reads.
    pub fn disk_reads(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, FlashIoEvent::DiskRead { .. }))
            .count() as u64
    }
}

/// A lock-striped shared I/O event log.
///
/// The engine tier used to funnel every operation's local [`IoLog`] through
/// one global mutex — a serialization point on the hottest path once many
/// threads insert and destage concurrently. Merges now hash the calling
/// thread over `N` independent stripes; [`StripedIoLog::drain`] collects all
/// stripes. Event order is preserved *within* a thread's stream but not
/// across threads — which is all the simulation drivers (the only ordered
/// consumers) ever relied on, since concurrent operations were never ordered
/// to begin with.
#[derive(Debug)]
pub struct StripedIoLog {
    stripes: Vec<face_analysis::OrderedMutex<IoLog>>,
}

impl StripedIoLog {
    /// A log striped `n` ways (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        Self {
            stripes: (0..n.max(1))
                .map(|_| {
                    face_analysis::OrderedMutex::new(
                        face_analysis::classes::IO_STRIPE,
                        IoLog::new(),
                    )
                })
                .collect(),
        }
    }

    fn stripe(&self) -> &face_analysis::OrderedMutex<IoLog> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    /// Merge a per-operation local log into the calling thread's stripe.
    pub fn merge(&self, local: IoLog) {
        if !local.is_empty() {
            self.stripe().lock().merge(local);
        }
    }

    /// Remove and return every recorded event across all stripes.
    pub fn drain(&self) -> Vec<FlashIoEvent> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            out.append(&mut stripe.lock().drain());
        }
        out
    }

    /// Whether every stripe is empty.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().is_empty())
    }
}

impl Default for StripedIoLog {
    fn default() -> Self {
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_properties() {
        let w = FlashIoEvent::FlashWrite {
            pages: 64,
            sequential: true,
        };
        assert_eq!(w.pages(), 64);
        assert!(w.is_flash());
        assert!(w.is_write());

        let r = FlashIoEvent::FlashRead {
            pages: 1,
            sequential: false,
        };
        assert!(!r.is_write());

        let d = FlashIoEvent::DiskWrite {
            page: PageId::new(0, 1),
        };
        assert_eq!(d.pages(), 1);
        assert!(!d.is_flash());
        assert!(d.is_write());
    }

    #[test]
    fn log_accumulates_and_summarises() {
        let mut log = IoLog::new();
        assert!(log.is_empty());
        log.flash_write_seq(64);
        log.flash_write_rand(1);
        log.flash_read_rand(1);
        log.flash_read_seq(128);
        log.disk_write(PageId::new(0, 9));
        log.disk_read(PageId::new(0, 10));
        assert_eq!(log.len(), 6);
        assert_eq!(log.flash_pages_written(), 65);
        assert_eq!(log.flash_pages_written_random(), 1);
        assert_eq!(log.disk_writes(), 1);
        assert_eq!(log.disk_reads(), 1);
        assert_eq!(log.events().len(), 6);
    }

    #[test]
    fn drain_empties_the_log() {
        let mut log = IoLog::new();
        log.flash_write_seq(1);
        let events = log.drain();
        assert_eq!(events.len(), 1);
        assert!(log.is_empty());
        log.flash_read_rand(1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn striped_log_merges_and_drains_across_threads() {
        let striped = std::sync::Arc::new(StripedIoLog::new(4));
        assert!(striped.is_empty());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let striped = std::sync::Arc::clone(&striped);
                s.spawn(move || {
                    for _ in 0..10 {
                        let mut local = IoLog::new();
                        local.flash_write_seq(2);
                        striped.merge(local);
                        striped.merge(IoLog::new()); // empty merge is free
                    }
                });
            }
        });
        assert!(!striped.is_empty());
        let events = striped.drain();
        assert_eq!(events.len(), 8 * 10);
        assert!(striped.is_empty());
        assert!(striped.drain().is_empty());
    }
}
