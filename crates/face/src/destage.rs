//! The asynchronous group-write & destage pipeline.
//!
//! PR 2 sharded the flash cache so concurrent callers rarely meet; this
//! module takes the next step the paper's host systems take (PostgreSQL's
//! bgwriter, Oracle's DBWR): the *foreground* thread no longer pays for the
//! group's device I/O at all. An insert that fills a replacement group only
//! mutates the shard's directory and hands back a [`PendingGroupWrite`]; the
//! physical batch write, the journal-group seal and the dequeued-dirty-page
//! disk writes all happen on a small pool of background destager threads.
//!
//! ## Ordering and durability
//!
//! * Jobs are routed to workers by **cache shard** (`shard % threads`), so
//!   one shard's group writes and disk destages execute in FIFO order on one
//!   worker. Two versions of the same page can therefore never reach the
//!   disk (or the same flash slot) out of order — a page always routes to
//!   the same shard, and a shard always routes to the same worker.
//! * A group's journal records are sealed (made crash-durable) by
//!   [`crate::policy::FlashCache::complete_group`] strictly **after** its
//!   batch write is applied, preserving PR 3's invariant that metadata never
//!   outlives data it describes. Between enqueue and completion the records
//!   are RAM-resident inside the policy and die with a crash — exactly like
//!   the unsealed current group always has.
//! * The write-ahead guard runs in the foreground **before** a page enters
//!   the pipeline, so every queued page already has durable log records.
//!
//! ## Crash semantics
//!
//! [`Destager::abort_pending`] models a crash: queued jobs are dropped (their
//! writes never reached the device) and the generation counter is bumped so a
//! worker that is mid-write finishes its device operation but *discards* the
//! completion — the bytes may land on flash, but the group is never sealed.
//! Those are precisely the two in-pipeline crash points recovery must
//! tolerate: work enqueued but unwritten (data and metadata both lost —
//! consistent), and data written but metadata unsealed (the journal does not
//! reference the slots; the bounded tail scan re-admits them only under the
//! WAL reconciliation rules).
//!
//! ## Backpressure
//!
//! Each worker owns a bounded queue ([`DestageConfig::queue_depth`] jobs).
//! A foreground thread that enqueues into a full queue blocks — without
//! holding any cache lock — until the worker drains; the stall is counted in
//! [`DestageStats::backpressure_stalls`]. Fetches of pages whose group write
//! has not completed are served from the policy's in-flight frame map, so
//! the foreground never waits for a *specific* group to finish.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use face_analysis::classes::{DESTAGE_QUEUE, DIAG};
use face_analysis::{OrderedCondvar, OrderedMutex};
use face_pagestore::{backoff_sleep, DeviceError, DeviceResult, Lsn, PageId};

use crate::degrade::{DegradeAction, DegradeConfig, DegradeController};
use crate::io::IoLog;
use crate::meta::JournalEntry;
use crate::store::FlashStore;
use crate::types::{Counter, StagedPage};

/// One slot of a pending group write: where the version goes and, in
/// data-carrying mode, the shared frame to write there.
#[derive(Debug, Clone)]
pub struct PendingSlotWrite {
    /// The flash slot the version was assigned.
    pub slot: usize,
    /// The cached page.
    pub page: PageId,
    /// The pageLSN of the cached version.
    pub lsn: Lsn,
    /// The page contents (`None` with header-only or null stores).
    pub data: Option<Arc<face_pagestore::Page>>,
}

/// A filled replacement group whose physical batch write was deferred by
/// [`crate::types::CacheConfig::defer_group_writes`]. Produced under the
/// shard lock (directory mutation only); applied and completed off-lock.
#[derive(Debug, Clone)]
pub struct PendingGroupWrite {
    /// The cache shard that formed the group (stamped by
    /// [`crate::concurrent::ShardedFlashCache`]; 0 for direct policy use).
    pub shard: usize,
    /// The journal group epoch these slots seal under.
    pub epoch: u64,
    /// The slots to write, in rear-assignment (queue) order.
    pub pages: Vec<PendingSlotWrite>,
    /// The group's journal records (diagnostic copy — the policy retains the
    /// authoritative ones in its in-flight table until the seal).
    pub meta_records: Vec<JournalEntry>,
}

impl PendingGroupWrite {
    /// Perform the group's physical flash I/O against `store`: one
    /// batch-sized sequential write of the data pages (the slots were
    /// assigned consecutively at the queue rear) plus the slot-header notes
    /// recovery's tail scan relies on. Holds **no** cache lock — that is the
    /// point of deferring it.
    ///
    /// On `Err` a prefix of the batch may have reached flash, but the
    /// group's journal records are never sealed, so recovery cannot see the
    /// partial group (crash-equivalent). Retrying the whole batch is safe —
    /// it rewrites the same slots with the same bytes.
    pub fn apply(&self, store: &dyn FlashStore, io: &mut IoLog) -> DeviceResult<()> {
        if self.pages.is_empty() {
            return Ok(());
        }
        if store.carries_data() {
            let batch: Vec<(usize, &face_pagestore::Page)> = self
                .pages
                .iter()
                .filter_map(|w| w.data.as_ref().map(|d| (w.slot, &**d)))
                .collect();
            store.write_batch(&batch)?;
        }
        io.flash_write_seq(self.pages.len() as u32);
        for w in &self.pages {
            store.note_slot_header(w.slot, w.page, w.lsn);
        }
        Ok(())
    }
}

/// Configuration of a [`Destager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestageConfig {
    /// Worker threads. Must be at least 1 (a zero-thread "destager" is no
    /// destager — callers apply writes inline instead).
    pub threads: usize,
    /// Maximum queued jobs per worker before enqueue blocks (backpressure).
    pub queue_depth: usize,
}

impl Default for DestageConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            queue_depth: 64,
        }
    }
}

/// Work accepted by the destager.
#[derive(Debug, Clone)]
pub enum DestageJob {
    /// A deferred flash group write: apply the batch, then seal its journal
    /// group.
    Group(PendingGroupWrite),
    /// Dirty pages dequeued from the cache, bound for the disk array. The
    /// shard is carried explicitly so same-page writes stay ordered.
    Disk {
        /// The cache shard that dequeued the pages (routing key).
        shard: usize,
        /// The pages to write, each already WAL-covered.
        pages: Vec<StagedPage>,
    },
}

impl DestageJob {
    fn shard(&self) -> usize {
        match self {
            DestageJob::Group(w) => w.shard,
            DestageJob::Disk { shard, .. } => *shard,
        }
    }
}

/// Where the destager sends its work. Implemented by the engine tier, which
/// knows the flash stores, the cache front for group completion, the disk
/// store and the shared I/O accounting.
pub trait DestageSink: Send + Sync {
    /// Apply a group's physical flash batch write (no cache lock held).
    fn apply_group(&self, write: &PendingGroupWrite, io: &mut IoLog) -> DeviceResult<()>;
    /// Seal the group's journal records now that its data is on flash
    /// (briefly takes the shard lock).
    fn complete_group(&self, shard: usize, epoch: u64, io: &mut IoLog);
    /// Abandon a group whose batch write failed for good: drop its journal
    /// records, free its slots and return the dirty pages that now need
    /// disk failover (each still WAL-covered). Default: nothing to abort.
    fn abort_group(&self, shard: usize, epoch: u64, io: &mut IoLog) -> Vec<StagedPage> {
        let _ = (shard, epoch, io);
        Vec::new()
    }
    /// Take a condemned slot out of rotation, returning the dirty evacuee
    /// (if any) that needs disk failover. Default: nothing to quarantine.
    fn quarantine_slot(&self, shard: usize, slot: usize, io: &mut IoLog) -> Vec<StagedPage> {
        let _ = (shard, slot, io);
        Vec::new()
    }
    /// Write dequeued dirty pages to the disk array.
    fn write_pages_to_disk(&self, pages: &[StagedPage], io: &mut IoLog) -> Result<(), DeviceError>;
    /// Merge a worker's local I/O log into the shared accounting.
    fn publish_io(&self, io: IoLog);
}

/// Counters describing pipeline activity — the queued-versus-completed split
/// the accounting contract promises (a queued write is *not yet* physical
/// I/O; only completion moves it into the I/O log and the completed tallies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DestageStats {
    /// Group writes accepted into the pipeline.
    pub groups_enqueued: u64,
    /// Group writes applied and sealed.
    pub groups_completed: u64,
    /// Group writes dropped by a crash ([`Destager::abort_pending`]).
    pub groups_dropped: u64,
    /// Dirty pages accepted for disk destaging.
    pub disk_pages_enqueued: u64,
    /// Dirty pages written to disk.
    pub disk_pages_completed: u64,
    /// Dirty pages dropped by a crash.
    pub disk_pages_dropped: u64,
    /// Enqueue attempts that blocked on a full worker queue.
    pub backpressure_stalls: u64,
    /// Transient device errors retried with backoff.
    pub retries: u64,
    /// Device errors that exhausted their retries (or were never worth
    /// retrying) with `kind == Transient`.
    pub transient_errors: u64,
    /// Device errors with `kind == Permanent`.
    pub permanent_errors: u64,
    /// Group writes abandoned after a final device error (slots freed,
    /// dirty pages failed over to disk).
    pub groups_aborted: u64,
}

#[derive(Debug, Default)]
struct DestageStatCounters {
    groups_enqueued: Counter,
    groups_completed: Counter,
    groups_dropped: Counter,
    disk_pages_enqueued: Counter,
    disk_pages_completed: Counter,
    disk_pages_dropped: Counter,
    backpressure_stalls: Counter,
    retries: Counter,
    transient_errors: Counter,
    permanent_errors: Counter,
    groups_aborted: Counter,
}

impl DestageStatCounters {
    fn snapshot(&self) -> DestageStats {
        DestageStats {
            groups_enqueued: self.groups_enqueued.get(),
            groups_completed: self.groups_completed.get(),
            groups_dropped: self.groups_dropped.get(),
            disk_pages_enqueued: self.disk_pages_enqueued.get(),
            disk_pages_completed: self.disk_pages_completed.get(),
            disk_pages_dropped: self.disk_pages_dropped.get(),
            backpressure_stalls: self.backpressure_stalls.get(),
            retries: self.retries.get(),
            transient_errors: self.transient_errors.get(),
            permanent_errors: self.permanent_errors.get(),
            groups_aborted: self.groups_aborted.get(),
        }
    }

    fn note_final_error(&self, err: &DeviceError) {
        if err.is_transient() {
            self.transient_errors.inc();
        } else {
            self.permanent_errors.inc();
        }
    }
}

struct QueueState {
    jobs: VecDeque<(u64, DestageJob)>,
    /// The worker is executing a popped job right now.
    busy: bool,
}

struct WorkerQueue {
    state: OrderedMutex<QueueState>,
    /// Signalled when a job is pushed or shutdown is requested.
    work_ready: OrderedCondvar,
    /// Signalled when the queue shrinks or goes idle.
    space_ready: OrderedCondvar,
}

struct Shared {
    queues: Vec<WorkerQueue>,
    queue_depth: usize,
    sink: Arc<dyn DestageSink>,
    stats: DestageStatCounters,
    /// Bumped by [`Destager::abort_pending`]; a worker mid-job compares its
    /// job's generation before sealing/counting, so completions of a
    /// pre-crash job are discarded.
    generation: AtomicU64,
    shutdown: AtomicBool,
    last_error: OrderedMutex<Option<DeviceError>>,
    /// Degraded-mode brain; absent in direct policy tests. Retry budget
    /// falls back to [`DegradeConfig::default`] without one.
    controller: Option<Arc<DegradeController>>,
    max_retries: u32,
}

/// A fixed pool of background destager threads with bounded per-worker
/// queues, shard-affine routing and crash-abort support. See the module docs
/// for the ordering and durability contract.
pub struct Destager {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Destager {
    /// Spawn `config.threads` workers draining into `sink`. Pass a
    /// [`DegradeController`] to report final device errors (and take its
    /// retry budget); without one a default budget still bounds retries.
    pub fn new(
        config: DestageConfig,
        sink: Arc<dyn DestageSink>,
        controller: Option<Arc<DegradeController>>,
    ) -> Self {
        let threads = config.threads.max(1);
        let max_retries = controller
            .as_ref()
            .map(|c| c.config().max_retries)
            .unwrap_or_else(|| DegradeConfig::default().max_retries);
        let shared = Arc::new(Shared {
            queues: (0..threads)
                .map(|_| WorkerQueue {
                    state: OrderedMutex::new(
                        DESTAGE_QUEUE,
                        QueueState {
                            jobs: VecDeque::new(),
                            busy: false,
                        },
                    ),
                    work_ready: OrderedCondvar::new(),
                    space_ready: OrderedCondvar::new(),
                })
                .collect(),
            queue_depth: config.queue_depth.max(1),
            sink,
            stats: DestageStatCounters::default(),
            generation: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            last_error: OrderedMutex::new(DIAG, None),
            controller,
            max_retries,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("face-destage-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    // Thread-spawn failure is an OS resource error at pool
                    // construction, not device I/O: panicking is right.
                    .expect("spawn destager worker") // face-lint: allow(unwrap-device)
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job, blocking (without any cache lock) while the target
    /// worker's queue is full.
    pub fn enqueue(&self, job: DestageJob) {
        match &job {
            DestageJob::Group(_) => self.shared.stats.groups_enqueued.inc(),
            DestageJob::Disk { pages, .. } => {
                self.shared
                    .stats
                    .disk_pages_enqueued
                    .add(pages.len() as u64);
            }
        }
        let generation = self.shared.generation.load(Ordering::Acquire);
        let queue = &self.shared.queues[job.shard() % self.shared.queues.len()];
        let mut state = queue.state.lock();
        // One logical stall per blocking enqueue, however many wakeups the
        // wait loop takes (notify_all wakes every sleeper on each completed
        // job, often with the queue still full).
        let mut stalled = false;
        while state.jobs.len() >= self.shared.queue_depth
            && !self.shared.shutdown.load(Ordering::Acquire)
        {
            if !stalled {
                stalled = true;
                self.shared.stats.backpressure_stalls.inc();
            }
            state = queue.space_ready.wait(state);
        }
        state.jobs.push_back((generation, job));
        drop(state);
        queue.work_ready.notify_one();
    }

    /// Wait until every queue is empty and every worker idle, then surface
    /// any background write error exactly once.
    pub fn drain(&self) -> Result<(), DeviceError> {
        for queue in &self.shared.queues {
            let mut state = queue.state.lock();
            while !state.jobs.is_empty() || state.busy {
                state = queue.space_ready.wait(state);
            }
        }
        self.shared.last_error.lock().take().map_or(Ok(()), Err)
    }

    /// Crash semantics: drop every queued job and invalidate in-flight
    /// completions (a worker mid-write finishes the device operation but
    /// never seals or counts it). Returns immediately; callers that need the
    /// in-flight writes finished (restart does) follow up with
    /// [`Destager::drain`].
    pub fn abort_pending(&self) {
        self.shared.generation.fetch_add(1, Ordering::AcqRel);
        for queue in &self.shared.queues {
            let dropped: Vec<(u64, DestageJob)> = {
                let mut state = queue.state.lock();
                state.jobs.drain(..).collect()
            };
            for (_, job) in dropped {
                match job {
                    DestageJob::Group(_) => self.shared.stats.groups_dropped.inc(),
                    DestageJob::Disk { pages, .. } => {
                        self.shared.stats.disk_pages_dropped.add(pages.len() as u64)
                    }
                }
            }
            queue.space_ready.notify_all();
        }
    }

    /// Pipeline activity counters.
    pub fn stats(&self) -> DestageStats {
        self.shared.stats.snapshot()
    }
}

impl Drop for Destager {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for queue in &self.shared.queues {
            queue.work_ready.notify_all();
            queue.space_ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let queue = &shared.queues[index];
    loop {
        let (generation, job) = {
            let mut state = queue.state.lock();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.busy = true;
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                state = queue.work_ready.wait(state);
            }
        };
        execute(shared, generation, job);
        let mut state = queue.state.lock();
        state.busy = false;
        drop(state);
        // Wake both backpressured producers and drain()ers.
        queue.space_ready.notify_all();
    }
}

fn execute(shared: &Shared, generation: u64, job: DestageJob) {
    let mut io = IoLog::new();
    let current = |s: &Shared| s.generation.load(Ordering::Acquire) == generation;
    match job {
        DestageJob::Group(write) => {
            if !current(shared) {
                shared.stats.groups_dropped.inc();
                return;
            }
            let mut attempt: u32 = 0;
            loop {
                match shared.sink.apply_group(&write, &mut io) {
                    Ok(()) => {
                        // Crash point: the batch hit the device but the crash
                        // raced the seal — the journal must never reference it.
                        if current(shared) {
                            shared
                                .sink
                                .complete_group(write.shard, write.epoch, &mut io);
                            shared.stats.groups_completed.inc();
                            shared.sink.publish_io(io);
                        } else {
                            shared.stats.groups_dropped.inc();
                        }
                        return;
                    }
                    Err(e) => {
                        if e.is_transient()
                            && attempt < shared.max_retries
                            && current(shared)
                            && !shared.shutdown.load(Ordering::Acquire)
                        {
                            attempt += 1;
                            shared.stats.retries.inc();
                            if let Some(c) = &shared.controller {
                                c.note_retry();
                            }
                            backoff_sleep(attempt);
                            continue;
                        }
                        fail_group(shared, &write, &e, &mut io);
                        shared.sink.publish_io(io);
                        return;
                    }
                }
            }
        }
        DestageJob::Disk { pages, .. } => {
            if !current(shared) {
                shared.stats.disk_pages_dropped.add(pages.len() as u64);
                return;
            }
            // Disk is the backstop, not the breaker's subject: transient
            // failures are retried here but never reported to the degrade
            // controller (tripping would not help — there is no tier below
            // disk to fail over to; recovery's WAL redo is the last resort).
            let mut attempt: u32 = 0;
            loop {
                match shared.sink.write_pages_to_disk(&pages, &mut io) {
                    Ok(()) => {
                        shared.stats.disk_pages_completed.add(pages.len() as u64);
                        shared.sink.publish_io(io);
                        return;
                    }
                    Err(e) => {
                        if e.is_transient()
                            && attempt < shared.max_retries
                            && !shared.shutdown.load(Ordering::Acquire)
                        {
                            attempt += 1;
                            shared.stats.retries.inc();
                            backoff_sleep(attempt);
                            continue;
                        }
                        shared.stats.note_final_error(&e);
                        shared.stats.disk_pages_dropped.add(pages.len() as u64);
                        *shared.last_error.lock() = Some(e);
                        return;
                    }
                }
            }
        }
    }
}

/// A group write failed for good: abandon the group (its journal records
/// drop with it, its slots free up), fail its dirty pages over to disk, and
/// let the degrade controller decide whether the offending slot leaves the
/// rotation or the breaker trips.
fn fail_group(shared: &Shared, write: &PendingGroupWrite, err: &DeviceError, io: &mut IoLog) {
    shared.stats.note_final_error(err);
    shared.stats.groups_aborted.inc();
    let mut fallout = shared.sink.abort_group(write.shard, write.epoch, io);
    if let Some(controller) = &shared.controller {
        if let DegradeAction::Quarantine { shard, slot } = controller.note_error(write.shard, err) {
            let evacuees = shared.sink.quarantine_slot(shard, slot, io);
            controller.note_quarantined();
            controller.note_evacuated(evacuees.len() as u64);
            fallout.extend(evacuees);
        }
        // `DegradeAction::Trip` already moved the breaker to TripRequested
        // inside note_error; the next foreground operation claims the
        // evacuation (workers have no WAL access). `Continue` needs nothing.
    }
    // A successfully absorbed abort (slots freed, dirty pages safe on disk)
    // is visible in the abort/error counters, not as a drain() error — only
    // a failover that itself failed leaves data in jeopardy.
    if !fallout.is_empty() {
        match shared.sink.write_pages_to_disk(&fallout, io) {
            Ok(()) => shared.stats.disk_pages_completed.add(fallout.len() as u64),
            Err(e) => {
                shared.stats.disk_pages_dropped.add(fallout.len() as u64);
                *shared.last_error.lock() = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    use face_pagestore::DeviceOp;

    #[derive(Default)]
    struct RecordingSink {
        groups: AtomicUsize,
        completions: AtomicUsize,
        disk_pages: AtomicUsize,
        aborts: AtomicUsize,
        quarantines: AtomicUsize,
        delay: Option<Duration>,
        fail_disk: AtomicBool,
        /// Fail the next N apply_group calls with a transient slot error.
        fail_group_transient: AtomicUsize,
        /// Fail every apply_group call with a permanent slot error.
        fail_group_permanent: AtomicBool,
        /// Pages abort_group hands back for disk failover.
        abort_fallout: usize,
    }

    impl DestageSink for RecordingSink {
        fn apply_group(&self, _write: &PendingGroupWrite, _io: &mut IoLog) -> DeviceResult<()> {
            if let Some(d) = self.delay {
                std::thread::sleep(d);
            }
            if self.fail_group_permanent.load(Ordering::SeqCst) {
                return Err(DeviceError::permanent_slot(DeviceOp::Write, 0, "injected"));
            }
            if self
                .fail_group_transient
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(DeviceError::transient_slot(DeviceOp::Write, 0, "injected"));
            }
            self.groups.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn complete_group(&self, _shard: usize, _epoch: u64, _io: &mut IoLog) {
            self.completions.fetch_add(1, Ordering::SeqCst);
        }
        fn abort_group(&self, _shard: usize, _epoch: u64, _io: &mut IoLog) -> Vec<StagedPage> {
            self.aborts.fetch_add(1, Ordering::SeqCst);
            (0..self.abort_fallout)
                .map(|i| StagedPage::meta_only(PageId::new(0, i as u32), Lsn(1), true, false))
                .collect()
        }
        fn quarantine_slot(&self, _shard: usize, _slot: usize, _io: &mut IoLog) -> Vec<StagedPage> {
            self.quarantines.fetch_add(1, Ordering::SeqCst);
            Vec::new()
        }
        fn write_pages_to_disk(
            &self,
            pages: &[StagedPage],
            _io: &mut IoLog,
        ) -> Result<(), DeviceError> {
            if self.fail_disk.load(Ordering::SeqCst) {
                return Err(DeviceError::permanent_device(
                    DeviceOp::Write,
                    "injected disk failure",
                ));
            }
            self.disk_pages.fetch_add(pages.len(), Ordering::SeqCst);
            Ok(())
        }
        fn publish_io(&self, _io: IoLog) {}
    }

    fn group(shard: usize, epoch: u64) -> PendingGroupWrite {
        PendingGroupWrite {
            shard,
            epoch,
            pages: vec![PendingSlotWrite {
                slot: 0,
                page: PageId::new(0, epoch as u32),
                lsn: Lsn(epoch),
                data: None,
            }],
            meta_records: Vec::new(),
        }
    }

    #[test]
    fn drains_groups_and_disk_jobs() {
        let sink = Arc::new(RecordingSink::default());
        let d = Destager::new(
            DestageConfig {
                threads: 2,
                queue_depth: 4,
            },
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            None,
        );
        for e in 0..10 {
            d.enqueue(DestageJob::Group(group(e as usize % 3, e)));
        }
        d.enqueue(DestageJob::Disk {
            shard: 1,
            pages: vec![StagedPage::meta_only(
                PageId::new(0, 9),
                Lsn(1),
                true,
                false,
            )],
        });
        d.drain().unwrap();
        assert_eq!(sink.groups.load(Ordering::SeqCst), 10);
        assert_eq!(sink.completions.load(Ordering::SeqCst), 10);
        assert_eq!(sink.disk_pages.load(Ordering::SeqCst), 1);
        let stats = d.stats();
        assert_eq!(stats.groups_enqueued, 10);
        assert_eq!(stats.groups_completed, 10);
        assert_eq!(stats.disk_pages_completed, 1);
    }

    #[test]
    fn backpressure_blocks_until_the_worker_catches_up() {
        let sink = Arc::new(RecordingSink {
            delay: Some(Duration::from_millis(2)),
            ..RecordingSink::default()
        });
        let d = Destager::new(
            DestageConfig {
                threads: 1,
                queue_depth: 2,
            },
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            None,
        );
        for e in 0..8 {
            d.enqueue(DestageJob::Group(group(0, e)));
        }
        d.drain().unwrap();
        assert_eq!(sink.completions.load(Ordering::SeqCst), 8);
        assert!(
            d.stats().backpressure_stalls > 0,
            "queue depth 2 must stall"
        );
    }

    #[test]
    fn abort_drops_queued_work_and_in_flight_completions() {
        let sink = Arc::new(RecordingSink {
            delay: Some(Duration::from_millis(20)),
            ..RecordingSink::default()
        });
        let d = Destager::new(
            DestageConfig {
                threads: 1,
                queue_depth: 16,
            },
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            None,
        );
        for e in 0..5 {
            d.enqueue(DestageJob::Group(group(0, e)));
        }
        // Give the worker time to start job 0, then crash.
        std::thread::sleep(Duration::from_millis(5));
        d.abort_pending();
        d.drain().unwrap();
        let stats = d.stats();
        // The in-flight job may have applied its device write, but nothing
        // from this generation was ever *completed* (sealed).
        assert_eq!(stats.groups_completed, 0, "no pre-crash group sealed");
        assert_eq!(stats.groups_enqueued, 5);
        assert_eq!(stats.groups_dropped, 5);
        assert_eq!(sink.completions.load(Ordering::SeqCst), 0);
        // The pipeline still accepts and completes post-crash work.
        d.enqueue(DestageJob::Group(group(0, 99)));
        d.drain().unwrap();
        assert_eq!(d.stats().groups_completed, 1);
    }

    #[test]
    fn disk_write_failure_surfaces_on_drain_once() {
        let sink = Arc::new(RecordingSink::default());
        sink.fail_disk.store(true, Ordering::SeqCst);
        let d = Destager::new(
            DestageConfig::default(),
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            None,
        );
        d.enqueue(DestageJob::Disk {
            shard: 0,
            pages: vec![StagedPage::meta_only(
                PageId::new(0, 1),
                Lsn(1),
                true,
                false,
            )],
        });
        let err = d.drain().unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(d.drain().is_ok(), "error reported exactly once");
        assert_eq!(d.stats().disk_pages_dropped, 1);
        assert_eq!(d.stats().permanent_errors, 1);
    }

    #[test]
    fn transient_group_failure_is_retried_until_it_succeeds() {
        let sink = Arc::new(RecordingSink {
            fail_group_transient: AtomicUsize::new(2),
            ..RecordingSink::default()
        });
        let d = Destager::new(
            DestageConfig {
                threads: 1,
                queue_depth: 4,
            },
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            None,
        );
        d.enqueue(DestageJob::Group(group(0, 1)));
        d.drain().unwrap();
        let stats = d.stats();
        assert_eq!(stats.groups_completed, 1, "third attempt succeeds");
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.groups_aborted, 0);
        assert_eq!(sink.completions.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn permanent_group_failure_aborts_quarantines_and_fails_over() {
        let sink = Arc::new(RecordingSink {
            fail_group_permanent: AtomicBool::new(true),
            abort_fallout: 3,
            ..RecordingSink::default()
        });
        let controller = Arc::new(DegradeController::default());
        let d = Destager::new(
            DestageConfig {
                threads: 1,
                queue_depth: 4,
            },
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            Some(Arc::clone(&controller)),
        );
        d.enqueue(DestageJob::Group(group(0, 1)));
        // A permanent error never retries and the failover absorbed the
        // dirty pages, so the drain is clean.
        d.drain().unwrap();
        let stats = d.stats();
        assert_eq!(stats.groups_aborted, 1);
        assert_eq!(stats.permanent_errors, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.groups_completed, 0);
        assert_eq!(stats.disk_pages_completed, 3, "fallout failed over");
        assert_eq!(sink.aborts.load(Ordering::SeqCst), 1);
        assert_eq!(
            sink.quarantines.load(Ordering::SeqCst),
            1,
            "permanent slot error condemns the slot on first strike"
        );
        assert_eq!(controller.snapshot().quarantined_slots, 1);
    }

    #[test]
    fn transient_group_failure_that_exhausts_retries_aborts() {
        let sink = Arc::new(RecordingSink {
            fail_group_transient: AtomicUsize::new(usize::MAX),
            ..RecordingSink::default()
        });
        let controller = Arc::new(DegradeController::new(DegradeConfig {
            max_retries: 2,
            slot_failure_threshold: 100,
            trip_threshold: 100,
        }));
        let d = Destager::new(
            DestageConfig {
                threads: 1,
                queue_depth: 4,
            },
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            Some(Arc::clone(&controller)),
        );
        d.enqueue(DestageJob::Group(group(0, 1)));
        d.drain().unwrap();
        let stats = d.stats();
        assert_eq!(stats.retries, 2, "budget from the controller config");
        assert_eq!(stats.transient_errors, 1);
        assert_eq!(stats.groups_aborted, 1);
        assert_eq!(sink.aborts.load(Ordering::SeqCst), 1);
        assert_eq!(controller.snapshot().transient_errors, 1);
    }

    #[test]
    fn same_shard_jobs_execute_in_fifo_order() {
        struct OrderSink {
            seen: OrderedMutex<Vec<u64>>,
        }
        impl DestageSink for OrderSink {
            fn apply_group(&self, write: &PendingGroupWrite, _io: &mut IoLog) -> DeviceResult<()> {
                self.seen.lock().push(write.epoch);
                Ok(())
            }
            fn complete_group(&self, _s: usize, _e: u64, _io: &mut IoLog) {}
            fn write_pages_to_disk(
                &self,
                _p: &[StagedPage],
                _io: &mut IoLog,
            ) -> Result<(), DeviceError> {
                Ok(())
            }
            fn publish_io(&self, _io: IoLog) {}
        }
        let sink = Arc::new(OrderSink {
            seen: OrderedMutex::new(DIAG, Vec::new()),
        });
        let d = Destager::new(
            DestageConfig {
                threads: 3,
                queue_depth: 64,
            },
            Arc::clone(&sink) as Arc<dyn DestageSink>,
            None,
        );
        for e in 0..50 {
            d.enqueue(DestageJob::Group(group(4, e))); // one shard -> one worker
        }
        d.drain().unwrap();
        let seen = sink.seen.lock();
        assert_eq!(*seen, (0..50).collect::<Vec<u64>>(), "FIFO per shard");
    }
}
