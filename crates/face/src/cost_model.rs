//! The cost-effectiveness analysis of §2.2 of the paper.
//!
//! The paper models the buffer hit rate as `α·log(BufferSize)` (after Tsuei et
//! al.) and asks how much flash cache (`θ·B`) is needed to save as much I/O
//! time as a DRAM increment (`δ·B`). The break-even point is
//!
//! ```text
//! 1 + θ = (1 + δ)^( C_disk / (C_disk − C_flash) )
//! ```
//!
//! Because `C_disk / (C_disk − C_flash)` is barely above 1 for current
//! devices, a flash cache is almost exactly as effective per byte as DRAM
//! while being roughly ten times cheaper per byte — the economic argument for
//! FaCE, revisited empirically in Table 5.

use serde::{Deserialize, Serialize};

use face_iosim::{DeviceProfile, OpClass};

/// Inputs to the break-even analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Time to access one page on disk, seconds.
    pub c_disk: f64,
    /// Time to access one page on flash, seconds.
    pub c_flash: f64,
    /// Disk price per gigabyte.
    pub disk_price_per_gb: f64,
    /// Flash price per gigabyte.
    pub flash_price_per_gb: f64,
    /// DRAM price per gigabyte.
    pub dram_price_per_gb: f64,
}

/// The workload mix assumed when deriving per-page access costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMix {
    /// Only random reads (the paper's "read-only workload" case, ratio ≈ 1.006).
    ReadOnly,
    /// Only random writes (ratio ≈ 1.025).
    WriteOnly,
    /// A 50/50 mix.
    Mixed,
}

impl CostModel {
    /// Build the model from two device profiles and 2012 price assumptions
    /// (DRAM ≈ 10x the price of MLC flash per gigabyte, §5.4.1).
    pub fn from_profiles(disk: &DeviceProfile, flash: &DeviceProfile, mix: AccessMix) -> Self {
        let cost = |p: &DeviceProfile| match mix {
            AccessMix::ReadOnly => 1.0 / p.random_read_iops,
            AccessMix::WriteOnly => 1.0 / p.random_write_iops,
            AccessMix::Mixed => p.avg_random_page_access_secs(),
        };
        Self {
            c_disk: cost(disk),
            c_flash: cost(flash),
            disk_price_per_gb: disk.price_per_gb(),
            flash_price_per_gb: flash.price_per_gb(),
            dram_price_per_gb: flash.price_per_gb() * 10.0,
        }
    }

    /// The exponent `C_disk / (C_disk − C_flash)`.
    pub fn exponent(&self) -> f64 {
        self.c_disk / (self.c_disk - self.c_flash)
    }

    /// The flash fraction θ that matches the I/O-time saving of a DRAM
    /// increment δ (both relative to the DRAM buffer size B).
    pub fn break_even_theta(&self, delta: f64) -> f64 {
        (1.0 + delta).powf(self.exponent()) - 1.0
    }

    /// Ratio of the *cost* of the break-even flash increment to the cost of
    /// the DRAM increment: below 1 means flash is the better investment.
    pub fn cost_ratio(&self, delta: f64) -> f64 {
        let theta = self.break_even_theta(delta);
        (theta * self.flash_price_per_gb) / (delta * self.dram_price_per_gb)
    }

    /// Reduction in I/O time (seconds saved per logical access, relative to
    /// an all-miss baseline) when adding a flash cache with hit-rate gain
    /// `flash_hit_gain` — used by the Table 5 style comparison.
    pub fn io_time_saved_by_flash(&self, flash_hit_gain: f64) -> f64 {
        flash_hit_gain * (self.c_disk - self.c_flash)
    }

    /// Reduction in I/O time when a DRAM increment raises the DRAM hit rate
    /// by `dram_hit_gain`.
    pub fn io_time_saved_by_dram(&self, dram_hit_gain: f64) -> f64 {
        dram_hit_gain * self.c_disk
    }
}

/// Convenience: the paper's reference pairing (Seagate 15K.6 + Samsung 470).
pub fn paper_reference_model(mix: AccessMix) -> CostModel {
    CostModel::from_profiles(
        &DeviceProfile::seagate_15k(),
        &DeviceProfile::samsung470_mlc(),
        mix,
    )
}

/// The service-time entries of Table 1 that the model is derived from, for
/// reporting alongside experiment output.
pub fn table1_service_times() -> Vec<(String, f64, f64, f64, f64)> {
    [
        DeviceProfile::samsung470_mlc(),
        DeviceProfile::intel_x25m_mlc(),
        DeviceProfile::intel_x25e_slc(),
        DeviceProfile::seagate_15k(),
        DeviceProfile::raid0_8disk_measured(),
    ]
    .iter()
    .map(|p| {
        (
            p.name.clone(),
            p.service_time(OpClass::RandomRead, 4096) as f64 / 1e9,
            p.service_time(OpClass::RandomWrite, 4096) as f64 / 1e9,
            p.seq_read_mbps,
            p.seq_write_mbps,
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_is_barely_above_one() {
        // Paper §2.2 reports ~1.006 (read-only) and ~1.025 (write-only) with
        // its own device measurements; with the Table 1 IOPS figures the
        // derived values are ~1.015 and ~1.06. The claim being reproduced is
        // that the exponent is very close to 1, so flash caching is nearly as
        // effective per byte as extra DRAM.
        let read = paper_reference_model(AccessMix::ReadOnly);
        assert!(
            read.exponent() > 1.0 && read.exponent() < 1.03,
            "{}",
            read.exponent()
        );
        let write = paper_reference_model(AccessMix::WriteOnly);
        assert!(
            write.exponent() > 1.0 && write.exponent() < 1.08,
            "{}",
            write.exponent()
        );
        let mixed = paper_reference_model(AccessMix::Mixed);
        assert!(mixed.exponent() > read.exponent());
        assert!(mixed.exponent() < write.exponent());
    }

    #[test]
    fn break_even_theta_is_close_to_delta() {
        let m = paper_reference_model(AccessMix::Mixed);
        for delta in [0.1, 0.5, 1.0, 2.0] {
            let theta = m.break_even_theta(delta);
            // Flash needs to be only slightly larger than the DRAM increment.
            assert!(theta > delta);
            assert!(theta < delta * 1.2, "delta={delta} theta={theta}");
        }
    }

    #[test]
    fn flash_is_cheaper_than_dram_at_break_even() {
        let m = paper_reference_model(AccessMix::Mixed);
        for delta in [0.1, 0.5, 1.0] {
            assert!(m.cost_ratio(delta) < 0.2, "flash should be >5x cheaper");
        }
    }

    #[test]
    fn io_time_savings_ordering() {
        let m = paper_reference_model(AccessMix::Mixed);
        // The same hit-rate gain saves slightly more when it comes from DRAM
        // (no flash access at all) than from flash.
        let dram = m.io_time_saved_by_dram(0.1);
        let flash = m.io_time_saved_by_flash(0.1);
        assert!(dram > flash);
        assert!(flash > 0.9 * dram, "flash saving is nearly as good");
    }

    #[test]
    fn table1_report_has_all_devices() {
        let rows = table1_service_times();
        assert_eq!(rows.len(), 5);
        // Disk random read ~2.4ms, SSD ~35us.
        let disk = rows.iter().find(|r| r.0.contains("Seagate")).unwrap();
        assert!(disk.1 > 0.002);
        let ssd = rows.iter().find(|r| r.0.contains("Samsung")).unwrap();
        assert!(ssd.1 < 0.0001);
    }
}
