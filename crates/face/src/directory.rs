//! The persistent metadata directory of the flash cache (paper §4.1–4.2).
//!
//! Every page entering the flash cache gets a directory entry (page id,
//! pageLSN, dirty flag, slot). Because mvFIFO enqueues pages strictly in slot
//! order, entries can be collected in an in-memory *current segment* and
//! flushed to flash as one large sequential write ("flash cache
//! checkpointing") — unlike LRU-based schemes (TAC), which must update entries
//! in place with random writes for every replacement.
//!
//! After a crash, the directory is restored from:
//! 1. the persisted segments (sequential flash read), and
//! 2. a bounded scan of the data pages enqueued since the last segment flush
//!    (at most two segments' worth), whose headers carry the page id and
//!    pageLSN needed to rebuild the lost entries.

use std::collections::HashMap;

use face_pagestore::{Lsn, PageId};
use serde::{Deserialize, Serialize};

use crate::io::IoLog;

/// Size of one serialised entry in bytes (the paper's 24-byte entries).
pub const ENTRY_BYTES: usize = 24;

/// One metadata entry describing a page version in the flash cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// The flash slot holding the page version.
    pub slot: u32,
    /// The cached page.
    pub page: PageId,
    /// The pageLSN of the cached version.
    pub lsn: Lsn,
    /// Whether the cached version is newer than the disk copy.
    pub dirty: bool,
}

impl DirEntry {
    /// Serialise to the fixed 24-byte representation.
    pub fn to_bytes(&self) -> [u8; ENTRY_BYTES] {
        let mut out = [0u8; ENTRY_BYTES];
        out[0..8].copy_from_slice(&self.page.to_u64().to_le_bytes());
        out[8..16].copy_from_slice(&self.lsn.0.to_le_bytes());
        out[16..20].copy_from_slice(&self.slot.to_le_bytes());
        out[20] = self.dirty as u8;
        out
    }

    /// Deserialise from the 24-byte representation.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < ENTRY_BYTES {
            return None;
        }
        Some(Self {
            page: PageId::from_u64(u64::from_le_bytes(bytes[0..8].try_into().ok()?)),
            lsn: Lsn(u64::from_le_bytes(bytes[8..16].try_into().ok()?)),
            slot: u32::from_le_bytes(bytes[16..20].try_into().ok()?),
            dirty: bytes[20] != 0,
        })
    }
}

/// Queue pointers persisted alongside the segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PersistedPointers {
    /// Index of the oldest occupied slot.
    pub front: u64,
    /// Number of occupied slots.
    pub size: u64,
    /// Global enqueue sequence number covered by the persisted segments.
    pub persisted_seq: u64,
    /// Global enqueue sequence number at the last pointer update.
    pub total_seq: u64,
}

/// Statistics for the metadata directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryStats {
    /// Entries appended to the current segment.
    pub entries_appended: u64,
    /// Segments flushed to flash.
    pub segments_flushed: u64,
    /// Bytes written by segment flushes.
    pub bytes_flushed: u64,
}

/// The outcome of restoring the directory after a crash.
#[derive(Debug, Clone, Default)]
pub struct RecoveredDirectory {
    /// Entries restored, keyed by slot.
    pub entries: HashMap<u32, DirEntry>,
    /// The persisted queue pointers.
    pub pointers: PersistedPointers,
    /// Number of persisted segments loaded.
    pub segments_loaded: u64,
    /// Number of data pages scanned to rebuild the lost tail.
    pub pages_scanned: u64,
    /// Entries rebuilt from data-page headers (the lost tail).
    pub entries_rebuilt_from_pages: u64,
}

/// The metadata directory: a RAM-resident current segment plus the persisted
/// segments (which survive a crash, like any other flash-resident data).
#[derive(Debug, Clone)]
pub struct MetadataDirectory {
    segment_entries: usize,
    current: Vec<DirEntry>,
    /// Persisted ("flash-resident") segments. Survive [`MetadataDirectory::crash`].
    persisted: Vec<Vec<DirEntry>>,
    pointers: PersistedPointers,
    stats: DirectoryStats,
}

impl MetadataDirectory {
    /// A directory flushing segments of `segment_entries` entries.
    pub fn new(segment_entries: usize) -> Self {
        assert!(segment_entries > 0, "segment must hold at least one entry");
        Self {
            segment_entries,
            current: Vec::with_capacity(segment_entries),
            persisted: Vec::new(),
            pointers: PersistedPointers::default(),
            stats: DirectoryStats::default(),
        }
    }

    /// Entries per segment.
    pub fn segment_entries(&self) -> usize {
        self.segment_entries
    }

    /// Activity counters.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Number of persisted segments.
    pub fn persisted_segments(&self) -> usize {
        self.persisted.len()
    }

    /// Entries waiting in the RAM-resident current segment.
    pub fn pending_entries(&self) -> usize {
        self.current.len()
    }

    /// Append an entry for a page that just entered the flash cache. If the
    /// current segment becomes full it is flushed (one sequential flash
    /// write, recorded in `io`).
    pub fn append(&mut self, entry: DirEntry, io: &mut IoLog) {
        self.current.push(entry);
        self.stats.entries_appended += 1;
        self.pointers.total_seq += 1;
        if self.current.len() >= self.segment_entries {
            self.flush_segment(io);
        }
    }

    /// Record the queue pointers (front, size). Pointer updates are folded
    /// into the segment mechanism and charged no extra I/O.
    pub fn update_pointers(&mut self, front: u64, size: u64) {
        self.pointers.front = front;
        self.pointers.size = size;
    }

    /// Force the current segment out (flash cache checkpointing). A no-op if
    /// the current segment is empty.
    pub fn flush_segment(&mut self, io: &mut IoLog) {
        if self.current.is_empty() {
            return;
        }
        let seg = std::mem::replace(&mut self.current, Vec::with_capacity(self.segment_entries));
        let bytes = seg.len() * ENTRY_BYTES;
        let pages = bytes.div_ceil(face_pagestore::PAGE_SIZE).max(1) as u32;
        io.flash_write_seq(pages);
        self.pointers.persisted_seq += seg.len() as u64;
        self.persisted.push(seg);
        self.stats.segments_flushed += 1;
        self.stats.bytes_flushed += bytes as u64;
    }

    /// Simulate a crash: the RAM-resident current segment is lost, the
    /// persisted segments and pointers survive.
    pub fn crash(&mut self) {
        self.current.clear();
    }

    /// The persisted pointers (what recovery will see).
    pub fn pointers(&self) -> PersistedPointers {
        self.pointers
    }

    /// Number of enqueues whose entries are *not* covered by persisted
    /// segments (the tail that recovery must rebuild by scanning data pages).
    pub fn unpersisted_entries(&self) -> u64 {
        self.pointers.total_seq - self.pointers.persisted_seq
    }

    /// Restore the directory after a crash.
    ///
    /// * Persisted segments are read back (one sequential flash read each).
    /// * The lost tail — enqueues after the last persisted segment, bounded to
    ///   two segments' worth as in the paper — is rebuilt by scanning data
    ///   page headers via `read_slot_header` (one sequential flash read of
    ///   the scanned region).
    ///
    /// Later entries supersede earlier ones for the same slot.
    pub fn recover(
        &self,
        capacity_slots: u64,
        read_slot_header: &mut dyn FnMut(u32) -> Option<(PageId, Lsn)>,
        io: &mut IoLog,
    ) -> RecoveredDirectory {
        let mut out = RecoveredDirectory {
            pointers: self.pointers,
            ..Default::default()
        };

        // 1. Replay persisted segments in order.
        for seg in &self.persisted {
            let bytes = seg.len() * ENTRY_BYTES;
            let pages = bytes.div_ceil(face_pagestore::PAGE_SIZE).max(1) as u32;
            io.flash_read_seq(pages);
            out.segments_loaded += 1;
            for e in seg {
                out.entries.insert(e.slot, *e);
            }
        }

        // 2. Rebuild the lost tail from data page headers. The tail is the
        //    last `unpersisted` enqueued slots before the rear, capped at two
        //    segments (the paper scans the two most recent segments to cover
        //    a flush that was in progress at the crash).
        let unpersisted = self.unpersisted_entries();
        let scan = unpersisted
            .min(2 * self.segment_entries as u64)
            .min(capacity_slots);
        if scan > 0 && capacity_slots > 0 {
            let rear = (self.pointers.front + self.pointers.size) % capacity_slots;
            io.flash_read_seq(scan as u32);
            for i in 0..scan {
                // Slots counted backwards from the rear (modular, avoiding
                // underflow when the scan wraps past slot zero).
                let slot =
                    ((rear as i128 - 1 - i as i128).rem_euclid(capacity_slots as i128)) as u32;
                out.pages_scanned += 1;
                if let Some((page, lsn)) = read_slot_header(slot) {
                    // The dirty flag is not in the page header; assume dirty
                    // (safe: at worst an extra disk write at stage-out).
                    out.entries.insert(
                        slot,
                        DirEntry {
                            slot,
                            page,
                            lsn,
                            dirty: true,
                        },
                    );
                    out.entries_rebuilt_from_pages += 1;
                }
            }
        }
        out
    }

    /// Persistent directory size in bytes (what recovery must read).
    pub fn persisted_bytes(&self) -> u64 {
        self.persisted
            .iter()
            .map(|s| (s.len() * ENTRY_BYTES) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(slot: u32, page: u32, lsn: u64, dirty: bool) -> DirEntry {
        DirEntry {
            slot,
            page: PageId::new(0, page),
            lsn: Lsn(lsn),
            dirty,
        }
    }

    #[test]
    fn entry_serialisation_round_trips() {
        let e = entry(7, 1234, 999, true);
        let bytes = e.to_bytes();
        assert_eq!(bytes.len(), ENTRY_BYTES);
        assert_eq!(DirEntry::from_bytes(&bytes), Some(e));
        assert_eq!(DirEntry::from_bytes(&bytes[..10]), None);
    }

    #[test]
    fn segment_flushes_when_full() {
        let mut dir = MetadataDirectory::new(4);
        let mut io = IoLog::new();
        for i in 0..3 {
            dir.append(entry(i, i, i as u64, false), &mut io);
        }
        assert_eq!(dir.persisted_segments(), 0);
        assert_eq!(dir.pending_entries(), 3);
        assert!(io.is_empty());

        dir.append(entry(3, 3, 3, false), &mut io);
        assert_eq!(dir.persisted_segments(), 1);
        assert_eq!(dir.pending_entries(), 0);
        // The flush is one sequential flash write.
        assert_eq!(io.flash_pages_written(), 1);
        assert_eq!(io.flash_pages_written_random(), 0);
        assert_eq!(dir.stats().segments_flushed, 1);
        assert_eq!(dir.stats().bytes_flushed, 4 * ENTRY_BYTES as u64);
    }

    #[test]
    fn paper_segment_size_is_about_1_5_mb() {
        let bytes = 64_000 * ENTRY_BYTES;
        assert!(bytes > 1_400_000 && bytes < 1_600_000);
    }

    #[test]
    fn crash_loses_only_current_segment() {
        let mut dir = MetadataDirectory::new(2);
        let mut io = IoLog::new();
        dir.append(entry(0, 10, 1, true), &mut io);
        dir.append(entry(1, 11, 2, true), &mut io); // flush
        dir.append(entry(2, 12, 3, true), &mut io); // pending
        assert_eq!(dir.unpersisted_entries(), 1);
        dir.crash();
        assert_eq!(dir.pending_entries(), 0);
        assert_eq!(dir.persisted_segments(), 1);
        // Pointers and persisted seq survive.
        assert_eq!(dir.pointers().total_seq, 3);
        assert_eq!(dir.pointers().persisted_seq, 2);
    }

    #[test]
    fn recovery_merges_segments_and_scanned_tail() {
        let mut dir = MetadataDirectory::new(2);
        let mut io = IoLog::new();
        dir.append(entry(0, 10, 1, true), &mut io);
        dir.append(entry(1, 11, 2, false), &mut io); // segment flushed
        dir.append(entry(2, 12, 3, true), &mut io); // lost at crash
        dir.update_pointers(0, 3);
        dir.crash();

        let mut recov_io = IoLog::new();
        let restored = dir.recover(
            8,
            &mut |slot| {
                // The flash store still holds page 12 at slot 2.
                if slot == 2 {
                    Some((PageId::new(0, 12), Lsn(3)))
                } else {
                    None
                }
            },
            &mut recov_io,
        );
        assert_eq!(restored.segments_loaded, 1);
        assert_eq!(restored.entries_rebuilt_from_pages, 1);
        assert_eq!(restored.pages_scanned, 1);
        assert_eq!(restored.entries.len(), 3);
        assert_eq!(restored.entries[&0].page, PageId::new(0, 10));
        assert_eq!(restored.entries[&2].page, PageId::new(0, 12));
        // Rebuilt-from-header entries are conservatively dirty.
        assert!(restored.entries[&2].dirty);
        // Recovery performed sequential flash reads only.
        assert!(recov_io.flash_pages_written() == 0);
        assert!(recov_io
            .events()
            .iter()
            .all(|e| !e.is_write() && e.is_flash()));
    }

    #[test]
    fn recovery_scan_is_bounded_to_two_segments() {
        let mut dir = MetadataDirectory::new(10);
        let mut io = IoLog::new();
        // 35 entries, none flushed manually -> 3 segments persisted (30
        // entries), 5 pending lost.
        for i in 0..35u32 {
            dir.append(entry(i, i, i as u64, false), &mut io);
        }
        dir.update_pointers(0, 35);
        dir.crash();
        let restored = dir.recover(100, &mut |_| None, &mut IoLog::new());
        assert_eq!(restored.segments_loaded, 3);
        assert_eq!(restored.pages_scanned, 5); // only the lost tail
        assert_eq!(restored.entries.len(), 30);

        // If nothing was ever flushed, the scan caps at 2 segments.
        let mut dir = MetadataDirectory::new(10);
        for i in 0..50u32 {
            dir.append(entry(i, i, 0, false), &mut io);
        }
        // Pretend none persisted by building a fresh directory with only
        // pointer state: simulate by crashing a directory whose segment size
        // is huge.
        let mut big = MetadataDirectory::new(1_000_000);
        for i in 0..50u32 {
            big.append(entry(i, i, 0, false), &mut io);
        }
        big.update_pointers(0, 50);
        big.crash();
        let restored = big.recover(1000, &mut |_| None, &mut IoLog::new());
        assert_eq!(restored.pages_scanned, 50);
    }

    #[test]
    fn forced_flush_and_persisted_bytes() {
        let mut dir = MetadataDirectory::new(100);
        let mut io = IoLog::new();
        dir.flush_segment(&mut io); // empty: no-op
        assert_eq!(dir.persisted_segments(), 0);
        dir.append(entry(0, 1, 1, true), &mut io);
        dir.flush_segment(&mut io);
        assert_eq!(dir.persisted_segments(), 1);
        assert_eq!(dir.persisted_bytes(), ENTRY_BYTES as u64);
        assert_eq!(dir.unpersisted_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_segment_size_rejected() {
        let _ = MetadataDirectory::new(0);
    }
}
