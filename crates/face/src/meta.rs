//! The per-shard mapping-metadata journal and cache checkpoint (paper §4.3).
//!
//! Every page version enqueued into the flash cache gets a compact
//! [`JournalEntry`] — page id, flash slot, pageLSN, dirty bit and the **group
//! epoch** of the batch that carries it. Entries are buffered in RAM and
//! flushed *with their group*: when mvFIFO writes a batch of data pages as one
//! sequential flash I/O, the batch's metadata records ride along as a small
//! sequential append ([`MetaJournal::seal_group`]). A crash therefore loses
//! metadata and data together — a sealed group is fully recoverable, an
//! unsealed group is fully gone — which is exactly the paper's invariant that
//! the in-flash directory never references pages whose bytes did not reach
//! flash.
//!
//! A [`CacheCheckpoint`] bounds how much journal a restart must replay: every
//! `checkpoint_interval_groups` sealed groups, the cache snapshots its live
//! directory (queue pointers plus the valid entries in queue order) into one
//! sequential flash write and prunes the sealed groups it covers. Recovery is
//! then `checkpoint + at most checkpoint_interval_groups × group_size journal
//! records`, independent of how long the cache has been running — unlike a
//! segment log that only ever grows.
//!
//! Reconciliation against the WAL happens one level up
//! ([`crate::mvfifo::MvFifoCache::recover`]): a journaled version whose
//! pageLSN exceeds the durable log end must be discarded (its log records are
//! lost, so serving it would diverge from redo), while dirty versions at or
//! below it substitute for disk reads during redo.

use face_pagestore::{Lsn, PageId};
use serde::{Deserialize, Serialize};

use crate::io::IoLog;

/// Serialised size of one journal entry in bytes (the paper's 24-byte entries
/// plus the 8-byte group epoch).
pub const JOURNAL_ENTRY_BYTES: usize = 32;

/// One mapping-metadata record: which page version occupies which flash slot,
/// stamped with the group epoch whose batch write made it durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The group epoch that sealed (flushed) this entry. Entries of the same
    /// epoch became durable in the same sequential batch write.
    pub epoch: u64,
    /// The flash slot holding the page version.
    pub slot: u32,
    /// The cached page.
    pub page: PageId,
    /// The pageLSN of the cached version.
    pub lsn: Lsn,
    /// Whether the cached version is newer than the disk copy.
    pub dirty: bool,
}

impl JournalEntry {
    /// Serialise to the fixed 32-byte on-flash representation.
    pub fn to_bytes(&self) -> [u8; JOURNAL_ENTRY_BYTES] {
        let mut out = [0u8; JOURNAL_ENTRY_BYTES];
        out[0..8].copy_from_slice(&self.epoch.to_le_bytes());
        out[8..16].copy_from_slice(&self.page.to_u64().to_le_bytes());
        out[16..24].copy_from_slice(&self.lsn.0.to_le_bytes());
        out[24..28].copy_from_slice(&self.slot.to_le_bytes());
        out[28] = self.dirty as u8;
        out
    }

    /// Deserialise from the 32-byte representation.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < JOURNAL_ENTRY_BYTES {
            return None;
        }
        Some(Self {
            epoch: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            page: PageId::from_u64(u64::from_le_bytes(bytes[8..16].try_into().ok()?)),
            lsn: Lsn(u64::from_le_bytes(bytes[16..24].try_into().ok()?)),
            slot: u32::from_le_bytes(bytes[24..28].try_into().ok()?),
            dirty: bytes[28] != 0,
        })
    }
}

/// A point-in-time snapshot of a shard's directory, persisted to flash so
/// that restart replays at most `checkpoint_interval_groups` of journal.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheCheckpoint {
    /// Every sealed group with epoch at or below this is folded into the
    /// snapshot; recovery replays only groups with a higher epoch.
    pub epoch: u64,
    /// Index of the oldest occupied queue slot at snapshot time.
    pub front: u64,
    /// Number of occupied queue slots at snapshot time.
    pub size: u64,
    /// The valid page versions, in queue (oldest-to-newest) order.
    pub entries: Vec<JournalEntry>,
}

impl CacheCheckpoint {
    /// Persistent size in bytes (a small fixed header plus the entries).
    pub fn bytes(&self) -> u64 {
        (JOURNAL_ENTRY_BYTES + self.entries.len() * JOURNAL_ENTRY_BYTES) as u64
    }
}

/// Activity counters of the journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalStats {
    /// Entries appended (one per enqueue).
    pub entries_appended: u64,
    /// Groups sealed (metadata flushed with a batch write).
    pub groups_sealed: u64,
    /// Cache checkpoints written.
    pub checkpoints_written: u64,
    /// Bytes written by seals and checkpoints.
    pub bytes_flushed: u64,
    /// Journal entries pruned by checkpoints (replay they no longer cost).
    pub entries_pruned: u64,
}

/// What [`MetaJournal::recover`] restored, in replay order.
#[derive(Debug, Clone, Default)]
pub struct RecoveredJournal {
    /// Checkpoint entries first (queue order), then sealed groups in epoch
    /// order. Later entries supersede earlier ones for the same page.
    pub entries: Vec<JournalEntry>,
    /// The durable queue front pointer.
    pub front: u64,
    /// The durable queue size.
    pub size: u64,
    /// Whether a cache checkpoint was found and loaded.
    pub checkpoint_loaded: bool,
    /// Entries loaded from the checkpoint snapshot.
    pub checkpoint_entries: u64,
    /// Journal records replayed from sealed groups past the checkpoint.
    pub journal_records_replayed: u64,
}

/// The mapping-metadata journal of one cache shard: a RAM-resident current
/// group (lost at crash), the sealed groups since the last checkpoint and the
/// most recent [`CacheCheckpoint`] (both "flash-resident": they survive
/// [`MetaJournal::crash`]).
#[derive(Debug, Clone)]
pub struct MetaJournal {
    checkpoint_interval_groups: usize,
    /// Entries of the group currently being assembled. RAM-resident: lost at
    /// a crash, together with the group's pending data pages.
    current: Vec<JournalEntry>,
    /// Sealed groups newer than the checkpoint, oldest first.
    sealed: Vec<Vec<JournalEntry>>,
    /// The most recent directory snapshot.
    checkpoint: Option<CacheCheckpoint>,
    /// Epoch the current group will carry when sealed.
    next_epoch: u64,
    /// Queue pointers as of the last seal or checkpoint. Like the paper's
    /// directory header, pointer updates ride along with metadata writes and
    /// are charged no extra I/O.
    durable_front: u64,
    durable_size: u64,
    stats: JournalStats,
}

impl MetaJournal {
    /// A journal that writes a [`CacheCheckpoint`] every
    /// `checkpoint_interval_groups` sealed groups.
    pub fn new(checkpoint_interval_groups: usize) -> Self {
        Self {
            checkpoint_interval_groups: checkpoint_interval_groups.max(1),
            current: Vec::new(),
            sealed: Vec::new(),
            checkpoint: None,
            next_epoch: 1,
            durable_front: 0,
            durable_size: 0,
            stats: JournalStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// The epoch the next sealed group will carry.
    pub fn current_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Entries buffered in the RAM-resident current group.
    pub fn unsealed_entries(&self) -> usize {
        self.current.len()
    }

    /// Sealed groups not yet folded into a checkpoint — what recovery must
    /// replay beyond the checkpoint.
    pub fn sealed_groups(&self) -> usize {
        self.sealed.len()
    }

    /// The most recent cache checkpoint, if one was written.
    pub fn checkpoint(&self) -> Option<&CacheCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Configured checkpoint cadence in sealed groups.
    pub fn checkpoint_interval_groups(&self) -> usize {
        self.checkpoint_interval_groups
    }

    /// Record a page version entering the cache. The entry stays RAM-resident
    /// until [`MetaJournal::seal_group`] flushes it with the group's batch
    /// write.
    pub fn append(&mut self, slot: u32, page: PageId, lsn: Lsn, dirty: bool) {
        self.current.push(JournalEntry {
            epoch: self.next_epoch,
            slot,
            page,
            lsn,
            dirty,
        });
        self.stats.entries_appended += 1;
    }

    /// Seal the current group: its entries become durable together with the
    /// group's data pages (one small sequential append charged to `io`), and
    /// the queue pointers `front`/`size` are persisted alongside. A no-op
    /// apart from the pointer update when no entries are buffered.
    pub fn seal_group(&mut self, front: u64, size: u64, io: &mut IoLog) {
        self.durable_front = front;
        self.durable_size = size;
        if self.current.is_empty() {
            return;
        }
        let group = std::mem::take(&mut self.current);
        self.next_epoch += 1;
        self.seal_entries(group, io);
    }

    /// Drop the RAM-resident current group without sealing it — the
    /// response to an inline batch write that failed on the device. The
    /// effect is exactly a crash landing between the appends and the seal:
    /// the group's data and metadata are lost *together*, so the directory
    /// invariant (no sealed metadata for unwritten bytes) holds. Returns
    /// how many entries were discarded.
    pub fn abort_current_group(&mut self) -> usize {
        let n = self.current.len();
        self.current.clear();
        n
    }

    /// Drop the current group's record(s) for one slot without touching the
    /// rest of the group — used when a single pending slot is quarantined
    /// before its batch write: the slot's data never reaches the device, so
    /// its metadata must not seal either. Returns how many records were
    /// removed.
    pub fn remove_current_records_for_slot(&mut self, slot: u32) -> usize {
        let before = self.current.len();
        self.current.retain(|e| e.slot != slot);
        before - self.current.len()
    }

    /// Detach the current group for a *deferred* batch write: its entries
    /// leave the journal's current buffer (they stay RAM-resident in the
    /// caller — still lost by a crash, exactly like the current group) and
    /// the epoch counter advances so subsequent appends open the next group.
    /// Nothing becomes durable here; the caller seals the detached entries
    /// with [`MetaJournal::seal_detached_group`] once the group's data pages
    /// have physically reached flash. Returns the detached group's epoch and
    /// entries; `None` when the current group is empty.
    pub fn begin_deferred_group(&mut self) -> Option<(u64, Vec<JournalEntry>)> {
        if self.current.is_empty() {
            return None;
        }
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        Some((epoch, std::mem::take(&mut self.current)))
    }

    /// Seal a group detached by [`MetaJournal::begin_deferred_group`], now
    /// that its batch write completed: the entries become durable (the small
    /// sequential append charged to `io`) together with the current queue
    /// pointers. Callers must seal detached groups in epoch order — the
    /// destage pipeline's per-shard FIFO guarantees it, and the policy's
    /// completion ordering enforces it.
    pub fn seal_detached_group(
        &mut self,
        entries: Vec<JournalEntry>,
        front: u64,
        size: u64,
        io: &mut IoLog,
    ) {
        self.durable_front = front;
        self.durable_size = size;
        if entries.is_empty() {
            return;
        }
        debug_assert!(
            self.sealed
                .last()
                .and_then(|g| g.first())
                .is_none_or(|prev| prev.epoch < entries[0].epoch),
            "detached groups must seal in epoch order"
        );
        self.seal_entries(entries, io);
    }

    fn seal_entries(&mut self, group: Vec<JournalEntry>, io: &mut IoLog) {
        let bytes = group.len() * JOURNAL_ENTRY_BYTES;
        let pages = bytes.div_ceil(face_pagestore::PAGE_SIZE).max(1) as u32;
        io.flash_write_seq(pages);
        self.sealed.push(group);
        self.stats.groups_sealed += 1;
        self.stats.bytes_flushed += bytes as u64;
    }

    /// Whether enough groups have sealed since the last checkpoint that the
    /// owner should snapshot its directory now.
    pub fn checkpoint_due(&self) -> bool {
        self.sealed.len() >= self.checkpoint_interval_groups
    }

    /// Install a directory snapshot: `live` must be the owner's valid entries
    /// in queue order. Covers every sealed group (they are pruned), so replay
    /// after this point starts from the snapshot.
    pub fn install_checkpoint(
        &mut self,
        front: u64,
        size: u64,
        live: Vec<JournalEntry>,
        io: &mut IoLog,
    ) {
        let ckpt = CacheCheckpoint {
            // Everything sealed so far is covered by the snapshot.
            epoch: self.next_epoch - 1,
            front,
            size,
            entries: live,
        };
        let pages = ckpt
            .bytes()
            .div_ceil(face_pagestore::PAGE_SIZE as u64)
            .max(1) as u32;
        io.flash_write_seq(pages);
        self.stats.bytes_flushed += ckpt.bytes();
        self.stats.checkpoints_written += 1;
        self.stats.entries_pruned += self.sealed.iter().map(|g| g.len() as u64).sum::<u64>();
        self.sealed.clear();
        self.durable_front = front;
        self.durable_size = size;
        self.checkpoint = Some(ckpt);
    }

    /// Simulate a crash: the RAM-resident current group is lost; the sealed
    /// groups, the checkpoint and the durable pointers survive.
    pub fn crash(&mut self) {
        self.current.clear();
    }

    /// Durable replay length in entries: what a restart reads beyond loading
    /// the checkpoint. Bounded by the checkpoint cadence.
    pub fn replay_entries(&self) -> u64 {
        self.sealed.iter().map(|g| g.len() as u64).sum()
    }

    /// Restore the durable state after a crash: read the checkpoint (one
    /// sequential flash read) and every sealed group past it (one sequential
    /// read each), returning entries in replay order plus the durable queue
    /// pointers.
    pub fn recover(&self, io: &mut IoLog) -> RecoveredJournal {
        let mut out = RecoveredJournal {
            front: self.durable_front,
            size: self.durable_size,
            ..Default::default()
        };
        if let Some(ckpt) = &self.checkpoint {
            let pages = ckpt
                .bytes()
                .div_ceil(face_pagestore::PAGE_SIZE as u64)
                .max(1) as u32;
            io.flash_read_seq(pages);
            out.checkpoint_loaded = true;
            out.checkpoint_entries = ckpt.entries.len() as u64;
            out.entries.extend(ckpt.entries.iter().copied());
        }
        for group in &self.sealed {
            let bytes = group.len() * JOURNAL_ENTRY_BYTES;
            io.flash_read_seq(bytes.div_ceil(face_pagestore::PAGE_SIZE).max(1) as u32);
            out.journal_records_replayed += group.len() as u64;
            out.entries.extend(group.iter().copied());
        }
        out
    }

    /// Persistent metadata size in bytes (checkpoint plus sealed groups) —
    /// what recovery must read.
    pub fn persisted_bytes(&self) -> u64 {
        let ckpt = self.checkpoint.as_ref().map(|c| c.bytes()).unwrap_or(0);
        ckpt + self.replay_entries() * JOURNAL_ENTRY_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(slot: u32, page: u32, lsn: u64, dirty: bool) -> JournalEntry {
        JournalEntry {
            epoch: 0,
            slot,
            page: PageId::new(0, page),
            lsn: Lsn(lsn),
            dirty,
        }
    }

    #[test]
    fn entry_serialisation_round_trips() {
        let e = JournalEntry {
            epoch: 7,
            slot: 12,
            page: PageId::new(3, 99),
            lsn: Lsn(1234),
            dirty: true,
        };
        let bytes = e.to_bytes();
        assert_eq!(bytes.len(), JOURNAL_ENTRY_BYTES);
        assert_eq!(JournalEntry::from_bytes(&bytes), Some(e));
        assert_eq!(JournalEntry::from_bytes(&bytes[..16]), None);
    }

    #[test]
    fn entries_ride_with_their_group_epoch() {
        let mut j = MetaJournal::new(4);
        let mut io = IoLog::new();
        j.append(0, PageId::new(0, 1), Lsn(1), true);
        j.append(1, PageId::new(0, 2), Lsn(2), true);
        assert_eq!(j.unsealed_entries(), 2);
        assert_eq!(j.sealed_groups(), 0);
        assert!(io.is_empty());

        j.seal_group(0, 2, &mut io);
        assert_eq!(j.unsealed_entries(), 0);
        assert_eq!(j.sealed_groups(), 1);
        // The seal is one small sequential flash write.
        assert_eq!(io.flash_pages_written(), 1);
        assert_eq!(io.flash_pages_written_random(), 0);
        assert_eq!(j.stats().groups_sealed, 1);
        assert_eq!(j.stats().bytes_flushed, 2 * JOURNAL_ENTRY_BYTES as u64);

        // Both entries carry the epoch of the group that sealed them.
        let rec = j.recover(&mut IoLog::new());
        assert!(rec.entries.iter().all(|e| e.epoch == 1));
        assert_eq!(j.current_epoch(), 2);
    }

    #[test]
    fn crash_loses_only_the_unsealed_group() {
        let mut j = MetaJournal::new(4);
        let mut io = IoLog::new();
        j.append(0, PageId::new(0, 1), Lsn(1), true);
        j.seal_group(0, 1, &mut io);
        j.append(1, PageId::new(0, 2), Lsn(2), true);
        j.crash();
        assert_eq!(j.unsealed_entries(), 0);
        let rec = j.recover(&mut io);
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].page, PageId::new(0, 1));
        assert_eq!((rec.front, rec.size), (0, 1));
    }

    #[test]
    fn pointers_persist_at_seal_time_only() {
        let mut j = MetaJournal::new(4);
        let mut io = IoLog::new();
        j.append(0, PageId::new(0, 1), Lsn(1), false);
        j.seal_group(3, 9, &mut io);
        // A later pointer move without a seal is volatile...
        j.append(1, PageId::new(0, 2), Lsn(2), false);
        j.crash();
        let rec = j.recover(&mut io);
        assert_eq!((rec.front, rec.size), (3, 9));
        // ...but an empty seal still persists pointers (dequeue-only
        // progress recorded by the next batch boundary).
        j.seal_group(5, 7, &mut io);
        let rec = j.recover(&mut io);
        assert_eq!((rec.front, rec.size), (5, 7));
    }

    #[test]
    fn checkpoint_bounds_replay_and_prunes_groups() {
        let mut j = MetaJournal::new(2);
        let mut io = IoLog::new();
        for g in 0..2u32 {
            for i in 0..3u32 {
                j.append(
                    g * 3 + i,
                    PageId::new(0, g * 3 + i),
                    Lsn((g * 3 + i) as u64),
                    true,
                );
            }
            j.seal_group(0, ((g + 1) * 3) as u64, &mut io);
        }
        assert!(j.checkpoint_due());
        assert_eq!(j.replay_entries(), 6);

        // The owner snapshots its live directory (here: 4 survivors).
        let live: Vec<JournalEntry> = (0..4u32).map(|i| entry(i, i, i as u64, true)).collect();
        j.install_checkpoint(0, 6, live, &mut io);
        assert!(!j.checkpoint_due());
        assert_eq!(j.sealed_groups(), 0);
        assert_eq!(j.replay_entries(), 0, "replay is bounded by the snapshot");
        assert_eq!(j.stats().entries_pruned, 6);
        assert_eq!(j.stats().checkpoints_written, 1);

        let rec = j.recover(&mut IoLog::new());
        assert!(rec.checkpoint_loaded);
        assert_eq!(rec.checkpoint_entries, 4);
        assert_eq!(rec.journal_records_replayed, 0);
        assert_eq!(rec.entries.len(), 4);

        // Groups sealed after the checkpoint replay on top of it.
        j.append(9, PageId::new(0, 9), Lsn(9), true);
        j.seal_group(1, 7, &mut io);
        let rec = j.recover(&mut IoLog::new());
        assert_eq!(rec.journal_records_replayed, 1);
        assert_eq!(rec.entries.len(), 5);
        // Replay order: checkpoint first, then the newer group.
        assert_eq!(rec.entries.last().unwrap().page, PageId::new(0, 9));
        assert_eq!((rec.front, rec.size), (1, 7));
    }

    #[test]
    fn recovery_io_is_sequential_reads_only() {
        let mut j = MetaJournal::new(2);
        let mut io = IoLog::new();
        for i in 0..5u32 {
            j.append(i, PageId::new(0, i), Lsn(i as u64), false);
        }
        j.seal_group(0, 5, &mut io);
        j.install_checkpoint(0, 5, vec![entry(0, 0, 0, false)], &mut io);
        let mut rio = IoLog::new();
        j.recover(&mut rio);
        assert!(!rio.is_empty());
        assert!(rio.events().iter().all(|e| e.is_flash() && !e.is_write()));
        assert!(j.persisted_bytes() > 0);
    }

    #[test]
    fn paper_entry_size_keeps_checkpoints_small() {
        // 64k entries at 32 bytes ≈ 2 MB per checkpoint — same order as the
        // paper's 1.5 MB segments.
        let bytes = 64_000 * JOURNAL_ENTRY_BYTES;
        assert!(bytes < 3 * 1024 * 1024);
    }
}
