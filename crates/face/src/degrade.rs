//! Degraded-mode policy: retry budgets, slot quarantine and the disk-only
//! trip breaker.
//!
//! FaCE's safety argument makes the flash cache *disposable* — committed
//! data is always reconstructible from WAL + disk — so the right response
//! to a failing flash device is never a panic: it is to stop depending on
//! the failing part and keep serving. The [`DegradeController`] centralises
//! that policy:
//!
//! * **Transient** errors earn a bounded retry with backoff, always off the
//!   foreground path (destager workers, or off-lock read retries) — never
//!   while a `no device I/O` lock class is held.
//! * **Permanent slot-scoped** errors (and transient ones that exhaust
//!   their retries) quarantine the slot: it leaves the replacement
//!   rotation, its resident version is invalidated (clean pages re-fetch
//!   from disk; dirty pages are WAL-guard-evacuated first).
//! * Repeated failures — or any **whole-device** permanent error — trip
//!   the breaker into disk-only degraded mode: flash inserts become
//!   no-ops, fetches miss to disk, dirty flash pages are evacuated, and
//!   the engine keeps serving. `Database::heal_flash()` later re-enables
//!   the tier cold.
//!
//! The breaker state machine (see README "Degraded mode"):
//!
//! ```text
//! Closed ──failure threshold──▶ TripRequested ──foreground claims──▶
//! Evacuating ──dirty pages on disk──▶ Tripped ──heal_flash()──▶ Closed
//! ```
//!
//! `TripRequested`/`Evacuating` still *serve* flash fetches (the data is
//! intact until evacuated) but stop admitting new pages; `Tripped` bypasses
//! the flash tier entirely. Every transition and counter is observable
//! through [`DegradeStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use face_analysis::classes::DIAG;
use face_analysis::OrderedMutex;
use face_pagestore::{DeviceError, DeviceErrorKind, DeviceOp, DeviceScope};
use serde::{Deserialize, Serialize};

/// The trip breaker's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the flash tier admits and serves pages.
    Closed,
    /// Failures passed the threshold; the next foreground operation will
    /// claim the evacuation. Inserts already bypass, fetches still serve.
    TripRequested,
    /// A thread is evacuating dirty flash pages to disk (WAL-guarded).
    /// Inserts bypass, fetches still serve.
    Evacuating,
    /// Disk-only degraded mode: inserts are no-ops, fetches miss to disk.
    Tripped,
}

impl BreakerState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => BreakerState::Closed,
            1 => BreakerState::TripRequested,
            2 => BreakerState::Evacuating,
            _ => BreakerState::Tripped,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::TripRequested => 1,
            BreakerState::Evacuating => 2,
            BreakerState::Tripped => 3,
        }
    }

    /// Stable lower-case name (bench JSON, logs).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::TripRequested => "trip-requested",
            BreakerState::Evacuating => "evacuating",
            BreakerState::Tripped => "tripped",
        }
    }
}

/// What the caller that observed a device error should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// Absorb the failure locally (miss to disk / drop the group) and move
    /// on.
    Continue,
    /// Quarantine this slot of this shard: take it out of rotation and
    /// invalidate its resident version (evacuating a dirty one first).
    Quarantine {
        /// The cache shard owning the slot.
        shard: usize,
        /// The store-local slot index.
        slot: usize,
    },
    /// Failures passed the threshold: run the trip transition (evacuate
    /// dirty flash pages, then serve disk-only).
    Trip,
}

/// Thresholds and budgets for the degraded-mode policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeConfig {
    /// Bounded retries for a transient error before it is treated as a
    /// failure (per operation, with capped-exponential backoff between
    /// attempts).
    pub max_retries: u32,
    /// Failures charged to one slot before it is quarantined.
    pub slot_failure_threshold: u32,
    /// Total device failures (across slots) before the breaker trips.
    /// A permanent whole-device error trips immediately regardless.
    pub trip_threshold: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            slot_failure_threshold: 2,
            trip_threshold: 8,
        }
    }
}

/// Observable counters of the degraded-mode machinery. Snapshot via
/// [`DegradeController::snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradeStats {
    /// Breaker state name: `closed`, `trip-requested`, `evacuating`,
    /// `tripped`.
    pub breaker: String,
    /// Transient-error retries attempted.
    pub retries: u64,
    /// Transient device errors observed (after retries were exhausted, for
    /// retried paths).
    pub transient_errors: u64,
    /// Permanent device errors observed.
    pub permanent_errors: u64,
    /// Failed device reads.
    pub read_errors: u64,
    /// Failed device writes.
    pub write_errors: u64,
    /// Slots quarantined out of the replacement rotation.
    pub quarantined_slots: u64,
    /// Dirty pages evacuated to disk by quarantine or trip transitions.
    pub evacuated_pages: u64,
    /// Dirty flash pages whose bytes could not be read back during
    /// evacuation (recovered later from WAL redo, not from flash).
    pub dirty_pages_unread: u64,
    /// Breaker trips into disk-only mode.
    pub trips: u64,
    /// `heal_flash()` completions.
    pub heals: u64,
    /// Inserts bypassed because the breaker was not closed.
    pub bypassed_inserts: u64,
    /// Fetches bypassed straight to disk because the breaker was tripped.
    pub bypassed_fetches: u64,
}

/// The shared degraded-mode brain: one per engine, consulted by the
/// flash-cache front, the destager sink and the tier.
pub struct DegradeController {
    config: DegradeConfig,
    state: AtomicU8,
    /// Failure tally per (shard, slot); protected by a leaf diagnostic lock
    /// (no I/O, no nested acquisition).
    slot_failures: OrderedMutex<HashMap<(usize, usize), u32>>,
    device_failures: AtomicU64,
    retries: AtomicU64,
    transient_errors: AtomicU64,
    permanent_errors: AtomicU64,
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    quarantined: AtomicU64,
    evacuated: AtomicU64,
    dirty_unread: AtomicU64,
    trips: AtomicU64,
    heals: AtomicU64,
    bypassed_inserts: AtomicU64,
    bypassed_fetches: AtomicU64,
}

impl DegradeController {
    /// A closed breaker with the given thresholds.
    pub fn new(config: DegradeConfig) -> Self {
        Self {
            config,
            state: AtomicU8::new(BreakerState::Closed.as_u8()),
            slot_failures: OrderedMutex::new(DIAG, HashMap::new()),
            device_failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            permanent_errors: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evacuated: AtomicU64::new(0),
            dirty_unread: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            heals: AtomicU64::new(0),
            bypassed_inserts: AtomicU64::new(0),
            bypassed_fetches: AtomicU64::new(0),
        }
    }

    /// The configured thresholds and retry budget.
    pub fn config(&self) -> DegradeConfig {
        self.config
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        BreakerState::from_u8(self.state.load(Ordering::SeqCst))
    }

    /// Whether new pages should stop entering flash (any non-closed state).
    pub fn bypass_inserts(&self) -> bool {
        self.state() != BreakerState::Closed
    }

    /// Whether fetches should skip flash entirely (fully tripped only —
    /// until evacuation completes, resident data is still the freshest
    /// copy and must keep serving).
    pub fn bypass_fetches(&self) -> bool {
        self.state() == BreakerState::Tripped
    }

    /// Count one retry of a transient error.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one bypassed insert.
    pub fn note_bypassed_insert(&self) {
        self.bypassed_inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one bypassed fetch.
    pub fn note_bypassed_fetch(&self) {
        self.bypassed_fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Count dirty pages successfully evacuated to disk.
    pub fn note_evacuated(&self, pages: u64) {
        self.evacuated.fetch_add(pages, Ordering::Relaxed);
    }

    /// Count dirty pages whose flash bytes were unreadable at evacuation.
    pub fn note_dirty_unread(&self, pages: u64) {
        self.dirty_unread.fetch_add(pages, Ordering::Relaxed);
    }

    /// Record a *final* device failure (transient errors should be retried
    /// before reporting) and decide the recovery action. `shard` is the
    /// cache shard the operation targeted.
    pub fn note_error(&self, shard: usize, err: &DeviceError) -> DegradeAction {
        match err.kind {
            DeviceErrorKind::Transient => {
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
            }
            DeviceErrorKind::Permanent => {
                self.permanent_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        match err.op {
            DeviceOp::Read => self.read_errors.fetch_add(1, Ordering::Relaxed),
            DeviceOp::Write => self.write_errors.fetch_add(1, Ordering::Relaxed),
        };
        let total = self.device_failures.fetch_add(1, Ordering::SeqCst) + 1;

        // A permanent whole-device failure trips immediately.
        if err.kind == DeviceErrorKind::Permanent && err.scope == DeviceScope::Device {
            self.request_trip();
            return DegradeAction::Trip;
        }
        if total >= self.config.trip_threshold as u64 {
            self.request_trip();
            return DegradeAction::Trip;
        }

        if let DeviceScope::Slot(slot) = err.scope {
            let strikes = {
                let mut map = self.slot_failures.lock();
                let s = map.entry((shard, slot)).or_insert(0);
                *s += 1;
                *s
            };
            // Permanent slot errors condemn the slot on first strike.
            let threshold = match err.kind {
                DeviceErrorKind::Permanent => 1,
                DeviceErrorKind::Transient => self.config.slot_failure_threshold,
            };
            if strikes >= threshold {
                return DegradeAction::Quarantine { shard, slot };
            }
        }
        DegradeAction::Continue
    }

    /// Count a slot actually quarantined (the policy accepted the action).
    pub fn note_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Move `Closed → TripRequested`. Idempotent; later states win.
    pub fn request_trip(&self) {
        let _ = self.state.compare_exchange(
            BreakerState::Closed.as_u8(),
            BreakerState::TripRequested.as_u8(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Claim the evacuation work: `TripRequested → Evacuating`. Returns
    /// `true` for exactly one caller.
    pub fn begin_evacuation(&self) -> bool {
        self.state
            .compare_exchange(
                BreakerState::TripRequested.as_u8(),
                BreakerState::Evacuating.as_u8(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Evacuation finished: `Evacuating → Tripped`. The flash tier is now
    /// fully bypassed.
    pub fn complete_trip(&self) {
        let prev = self
            .state
            .swap(BreakerState::Tripped.as_u8(), Ordering::SeqCst);
        if prev != BreakerState::Tripped.as_u8() {
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Re-close the breaker after the tier was reset cold: failure tallies
    /// are forgiven, quarantine bookkeeping clears (the policies were
    /// rebuilt, so their tombstones are gone too).
    pub fn heal(&self) {
        self.slot_failures.lock().clear();
        self.device_failures.store(0, Ordering::SeqCst);
        let prev = self
            .state
            .swap(BreakerState::Closed.as_u8(), Ordering::SeqCst);
        if prev != BreakerState::Closed.as_u8() {
            self.heals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot every counter plus the breaker state.
    pub fn snapshot(&self) -> DegradeStats {
        DegradeStats {
            breaker: self.state().name().to_string(),
            retries: self.retries.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            permanent_errors: self.permanent_errors.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            quarantined_slots: self.quarantined.load(Ordering::Relaxed),
            evacuated_pages: self.evacuated.load(Ordering::Relaxed),
            dirty_pages_unread: self.dirty_unread.load(Ordering::Relaxed),
            trips: self.trips.load(Ordering::Relaxed),
            heals: self.heals.load(Ordering::Relaxed),
            bypassed_inserts: self.bypassed_inserts.load(Ordering::Relaxed),
            bypassed_fetches: self.bypassed_fetches.load(Ordering::Relaxed),
        }
    }
}

impl Default for DegradeController {
    fn default() -> Self {
        Self::new(DegradeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use face_pagestore::DeviceOp;

    fn transient_slot(slot: usize) -> DeviceError {
        DeviceError::transient_slot(DeviceOp::Write, slot, "t")
    }

    #[test]
    fn transient_slot_errors_quarantine_after_threshold() {
        let c = DegradeController::new(DegradeConfig {
            max_retries: 2,
            slot_failure_threshold: 2,
            trip_threshold: 100,
        });
        assert_eq!(c.note_error(0, &transient_slot(5)), DegradeAction::Continue);
        assert_eq!(
            c.note_error(0, &transient_slot(5)),
            DegradeAction::Quarantine { shard: 0, slot: 5 }
        );
        // A different shard's slot 5 is a different tally.
        assert_eq!(c.note_error(1, &transient_slot(5)), DegradeAction::Continue);
    }

    #[test]
    fn permanent_slot_errors_quarantine_immediately() {
        let c = DegradeController::default();
        let e = DeviceError::permanent_slot(DeviceOp::Read, 3, "dead block");
        assert_eq!(
            c.note_error(2, &e),
            DegradeAction::Quarantine { shard: 2, slot: 3 }
        );
        c.note_quarantined();
        assert_eq!(c.snapshot().quarantined_slots, 1);
        assert_eq!(c.snapshot().permanent_errors, 1);
        assert_eq!(c.snapshot().read_errors, 1);
    }

    #[test]
    fn device_scoped_permanent_error_trips_immediately() {
        let c = DegradeController::default();
        let e = DeviceError::permanent_device(DeviceOp::Write, "controller gone");
        assert_eq!(c.note_error(0, &e), DegradeAction::Trip);
        assert_eq!(c.state(), BreakerState::TripRequested);
        assert!(
            c.bypass_inserts(),
            "inserts stop as soon as a trip is requested"
        );
        assert!(!c.bypass_fetches(), "fetches keep serving until evacuated");
    }

    #[test]
    fn accumulated_failures_trip_at_threshold() {
        let c = DegradeController::new(DegradeConfig {
            max_retries: 1,
            slot_failure_threshold: 100,
            trip_threshold: 3,
        });
        assert_eq!(c.note_error(0, &transient_slot(1)), DegradeAction::Continue);
        assert_eq!(c.note_error(0, &transient_slot(2)), DegradeAction::Continue);
        assert_eq!(c.note_error(0, &transient_slot(3)), DegradeAction::Trip);
    }

    #[test]
    fn breaker_walks_the_full_state_machine_once() {
        let c = DegradeController::default();
        c.request_trip();
        assert_eq!(c.state(), BreakerState::TripRequested);
        assert!(c.begin_evacuation(), "first claimer wins");
        assert!(!c.begin_evacuation(), "second claimer loses");
        assert_eq!(c.state(), BreakerState::Evacuating);
        assert!(!c.bypass_fetches());
        c.complete_trip();
        assert_eq!(c.state(), BreakerState::Tripped);
        assert!(c.bypass_fetches());
        assert_eq!(c.snapshot().trips, 1);

        c.heal();
        assert_eq!(c.state(), BreakerState::Closed);
        assert!(!c.bypass_inserts());
        assert_eq!(c.snapshot().heals, 1);
        assert_eq!(c.snapshot().breaker, "closed");
    }

    #[test]
    fn heal_forgives_slot_strikes() {
        let c = DegradeController::new(DegradeConfig {
            max_retries: 1,
            slot_failure_threshold: 2,
            trip_threshold: 100,
        });
        let _ = c.note_error(0, &transient_slot(7));
        c.heal();
        // One strike was forgiven: the next failure starts the tally over.
        assert_eq!(c.note_error(0, &transient_slot(7)), DegradeAction::Continue);
    }
}
