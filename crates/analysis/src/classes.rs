//! The lock-class registry: every lock in the workspace belongs to one of
//! these named classes, and the class ranks define the global acquisition
//! order (outer → inner, ascending rank).
//!
//! This table is the single source of truth for the documented lock order.
//! The README "Lock order" section and the ROADMAP standing constraints carry
//! a generated rendering of it between `lock-order:begin`/`lock-order:end`
//! markers, and `face-lint --check-docs` fails the build when they drift.
//! `face-lint` parses this file textually (it has no dependencies, so it
//! cannot link against us); keep each entry on the one-field-per-line layout
//! below.

/// Static description of one lock class.
#[derive(Debug)]
pub struct LockClassSpec {
    /// Stable machine name, used in reports, DOT output and the docs block.
    pub name: &'static str,
    /// Position in the global acquisition order (outer → inner, ascending).
    /// Classes may share a rank when no order between them is documented;
    /// the acquisition graph then learns their relative order dynamically.
    pub rank: u32,
    /// Whether several locks of this class may be held at once (the sites
    /// that do so are deadlock-free by construction, e.g. index-ordered full
    /// sweeps or probes under a pinning `try_lock`).
    pub nestable: bool,
    /// Whether device I/O is forbidden while a lock of this class is held —
    /// the PR 4/5 "no device op under a shard lock" property.
    pub forbids_io: bool,
    /// One-line description rendered into the generated docs block.
    pub doc: &'static str,
}

/// All lock classes, ascending by rank. Index = [`LockClassId`] value.
pub const CLASSES: &[LockClassSpec] = &[
    LockClassSpec {
        name: "txn_stripe",
        rank: 10,
        nestable: false,
        forbids_io: false,
        doc: "transaction-table stripe (`face_engine::db`); never held across a call into another layer",
    },
    LockClassSpec {
        name: "buffer_structural",
        rank: 20,
        nestable: false,
        forbids_io: false,
        doc: "buffer-pool shard structural mutex (`face_buffer::pool`); cross-shard GSC pulls use `try_lock` only",
    },
    LockClassSpec {
        name: "buffer_map",
        rank: 30,
        nestable: false,
        forbids_io: false,
        doc: "buffer-pool shard id-to-frame map (`face_buffer::pool`)",
    },
    LockClassSpec {
        name: "page_latch",
        rank: 40,
        nestable: true,
        forbids_io: false,
        doc: "per-frame page latch (`face_buffer::pool`); the GSC donor probe latches candidate frames while the evicted victim's latch is held, with the donor shard pinned by `try_lock`",
    },
    LockClassSpec {
        name: "cache_shard",
        rank: 50,
        nestable: true,
        forbids_io: true,
        doc: "flash-cache shard directory, policy and journal state (`face_cache::concurrent`); full sweeps (stats, recovery) take shards in ascending index order",
    },
    LockClassSpec {
        name: "ghost_admission",
        rank: 55,
        nestable: false,
        forbids_io: true,
        doc: "ghost-queue admission directory stripe (`face_cache::admission`); taken under the cache shard to decide whether a clean first-touch page earns a flash write",
    },
    LockClassSpec {
        name: "wash_table",
        rank: 60,
        nestable: false,
        forbids_io: true,
        doc: "stage-out wash table (`face_engine::tier`)",
    },
    LockClassSpec {
        name: "destage_queue",
        rank: 70,
        nestable: false,
        forbids_io: true,
        doc: "destager worker queue mutex and condvars (`face_cache::destage`)",
    },
    LockClassSpec {
        name: "wal_flush",
        rank: 80,
        nestable: false,
        forbids_io: false,
        doc: "WAL flush lock (`face_wal::writer`); held across the log-device force by the group-commit leader",
    },
    LockClassSpec {
        name: "wal_append",
        rank: 90,
        nestable: false,
        forbids_io: false,
        doc: "WAL append lock over the in-RAM tail (`face_wal::writer`)",
    },
    LockClassSpec {
        name: "wal_storage",
        rank: 100,
        nestable: false,
        forbids_io: false,
        doc: "log-storage internals: append cursor or in-memory buffer (`face_wal::storage`)",
    },
    LockClassSpec {
        name: "flash_slots",
        rank: 110,
        nestable: false,
        forbids_io: false,
        doc: "in-memory flash-store slot and header arrays (`face_cache::store`) — device-internal",
    },
    LockClassSpec {
        name: "page_store",
        rank: 120,
        nestable: false,
        forbids_io: false,
        doc: "page-store internals: segment file handles or in-memory frames (`face_pagestore`) — device-internal",
    },
    LockClassSpec {
        name: "io_stripe",
        rank: 130,
        nestable: false,
        forbids_io: false,
        doc: "striped I/O accounting log (`face_cache::io`) — leaf",
    },
    LockClassSpec {
        name: "diag",
        rank: 140,
        nestable: false,
        forbids_io: false,
        doc: "diagnostic cells (destager last-error and similar) — leaf",
    },
    // Scratch classes below exist only for the witness's own deliberate-
    // violation tests. They share rank 900 so no static rank relation holds
    // between them — ordering is learned dynamically by the acquisition
    // graph, which is what the cycle-detection tests exercise. Names starting
    // with `scratch_` are excluded from the generated docs block.
    LockClassSpec {
        name: "scratch_a",
        rank: 900,
        nestable: false,
        forbids_io: false,
        doc: "witness self-test only",
    },
    LockClassSpec {
        name: "scratch_b",
        rank: 900,
        nestable: false,
        forbids_io: false,
        doc: "witness self-test only",
    },
    LockClassSpec {
        name: "scratch_c",
        rank: 900,
        nestable: false,
        forbids_io: false,
        doc: "witness self-test only",
    },
    LockClassSpec {
        name: "scratch_outer",
        rank: 920,
        nestable: false,
        forbids_io: false,
        doc: "witness self-test only",
    },
    LockClassSpec {
        name: "scratch_inner",
        rank: 930,
        nestable: false,
        forbids_io: true,
        doc: "witness self-test only",
    },
];

/// Handle for a lock class: an index into [`CLASSES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClassId(pub usize);

impl LockClassId {
    /// The class's static spec.
    pub fn spec(self) -> &'static LockClassSpec {
        &CLASSES[self.0]
    }

    /// The class's machine name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// The class's rank in the documented order.
    pub fn rank(self) -> u32 {
        self.spec().rank
    }
}

pub const TXN_STRIPE: LockClassId = LockClassId(0);
pub const BUFFER_STRUCTURAL: LockClassId = LockClassId(1);
pub const BUFFER_MAP: LockClassId = LockClassId(2);
pub const PAGE_LATCH: LockClassId = LockClassId(3);
pub const CACHE_SHARD: LockClassId = LockClassId(4);
pub const GHOST_ADMISSION: LockClassId = LockClassId(5);
pub const WASH_TABLE: LockClassId = LockClassId(6);
pub const DESTAGE_QUEUE: LockClassId = LockClassId(7);
pub const WAL_FLUSH: LockClassId = LockClassId(8);
pub const WAL_APPEND: LockClassId = LockClassId(9);
pub const WAL_STORAGE: LockClassId = LockClassId(10);
pub const FLASH_SLOTS: LockClassId = LockClassId(11);
pub const PAGE_STORE: LockClassId = LockClassId(12);
pub const IO_STRIPE: LockClassId = LockClassId(13);
pub const DIAG: LockClassId = LockClassId(14);
pub const SCRATCH_A: LockClassId = LockClassId(15);
pub const SCRATCH_B: LockClassId = LockClassId(16);
pub const SCRATCH_C: LockClassId = LockClassId(17);
pub const SCRATCH_OUTER: LockClassId = LockClassId(18);
pub const SCRATCH_INNER: LockClassId = LockClassId(19);

/// Number of registered classes, scratch included.
pub const NUM_CLASSES: usize = CLASSES.len();

/// Whether a class is one of the witness-self-test scratch classes, which
/// are excluded from the generated documentation block.
pub fn is_scratch(spec: &LockClassSpec) -> bool {
    spec.name.starts_with("scratch_")
}

/// Render the canonical lock-order documentation block — the exact lines that
/// must appear between the `lock-order:begin`/`lock-order:end` markers in
/// README.md and ROADMAP.md. `face-lint --check-docs` regenerates this text
/// from [`CLASSES`] and rejects any drift.
pub fn lock_order_doc() -> String {
    let mut out = String::new();
    out.push_str("Lock classes, outer → inner (machine-checked by the `face-analysis` lockdep witness; rank ties are ordered dynamically by the acquisition graph):\n\n");
    for c in CLASSES.iter().filter(|c| !is_scratch(c)) {
        out.push_str(&format!(
            "- `{}` (rank {}){}{} — {}\n",
            c.name,
            c.rank,
            if c.nestable { ", nestable" } else { "" },
            if c.forbids_io {
                ", no device I/O while held"
            } else {
                ""
            },
            c.doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_match_table_order() {
        let ids = [
            (TXN_STRIPE, "txn_stripe"),
            (BUFFER_STRUCTURAL, "buffer_structural"),
            (BUFFER_MAP, "buffer_map"),
            (PAGE_LATCH, "page_latch"),
            (CACHE_SHARD, "cache_shard"),
            (GHOST_ADMISSION, "ghost_admission"),
            (WASH_TABLE, "wash_table"),
            (DESTAGE_QUEUE, "destage_queue"),
            (WAL_FLUSH, "wal_flush"),
            (WAL_APPEND, "wal_append"),
            (WAL_STORAGE, "wal_storage"),
            (FLASH_SLOTS, "flash_slots"),
            (PAGE_STORE, "page_store"),
            (IO_STRIPE, "io_stripe"),
            (DIAG, "diag"),
            (SCRATCH_A, "scratch_a"),
            (SCRATCH_B, "scratch_b"),
            (SCRATCH_C, "scratch_c"),
            (SCRATCH_OUTER, "scratch_outer"),
            (SCRATCH_INNER, "scratch_inner"),
        ];
        assert_eq!(ids.len(), NUM_CLASSES);
        for (id, name) in ids {
            assert_eq!(id.name(), name);
        }
    }

    #[test]
    fn ranks_ascend() {
        for w in CLASSES.windows(2) {
            assert!(w[0].rank <= w[1].rank, "{} vs {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn doc_block_mentions_every_class_but_scratch() {
        let doc = lock_order_doc();
        for c in CLASSES {
            assert_eq!(doc.contains(c.name), !is_scratch(c), "{}", c.name);
        }
    }
}
