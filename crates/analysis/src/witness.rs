//! The lockdep runtime witness: a thread-local held-lock stack, a global
//! acquisition-order graph with cycle detection, and the I/O-under-lock
//! detector's held-stack query.
//!
//! Semantics (Linux-lockdep style, adapted to the documented rank order):
//!
//! - Every blocking acquisition is checked against the locks the thread
//!   already holds. Holding a class of **higher rank** while acquiring a
//!   lower-ranked one is an order violation; acquiring a lock of a class
//!   already held is a same-class violation unless the class is `nestable`
//!   or both acquisitions are shared (reentrant reads).
//! - Each blocking acquisition also inserts `held → acquired` edges into a
//!   global graph. Inserting an edge that closes a cycle is a violation even
//!   when no rank relation is declared (classes with equal ranks are ordered
//!   dynamically, exactly like lockdep's learned ordering).
//! - `try_lock` acquisitions are never checked and add no edges — they
//!   cannot block, hence cannot close a wait cycle — but the locks they took
//!   are pushed on the held stack, because *holding* them still blocks other
//!   threads and still forbids device I/O where the class says so.
//! - [`nested_region`] suspends order checks for acquisitions that are
//!   deadlock-free by construction (the GSC donor probe under a pinning
//!   `try_lock`); held-stack bookkeeping and the I/O detector stay active.
//! - [`allow_device_io`] exempts a scope from the I/O-under-lock check for
//!   the acknowledged under-lock device paths (classic exclusive fetch,
//!   checkpoint sync, quiesced admin ops, the residual GSC dequeue read).
//!
//! A violation increments a global counter and panics on the offending
//! thread, unless a [`capture`] scope is active on that thread — the
//! deliberate-violation tests use capture to observe the witness without
//! dying, and capture keeps its edges in a thread-local graph so self-tests
//! cannot pollute the real acquisition graph.
//!
//! When the witness is compiled out ([`ENABLED`] is false: release build
//! without the `lockdep` feature) every function here is an inlined no-op.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::classes::{LockClassId, CLASSES, NUM_CLASSES};

/// Whether the witness is compiled in: debug builds and `lockdep` builds.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "lockdep"));

/// How a guard holds its lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Shared (read) guard.
    Shared,
    /// Exclusive (write / mutex) guard.
    Exclusive,
}

/// How an acquisition was made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A blocking `lock()`/`read()`/`write()`.
    Block,
    /// A successful `try_*` — cannot block, so never checked.
    Try,
    /// Re-acquisition after a condvar wait — checked like `Block`.
    Reacquire,
}

/// Opaque receipt for one acquisition; returned by [`acquire`], consumed by
/// [`release`]. Token 0 is the disabled-witness no-op.
#[derive(Debug, Clone, Copy)]
pub struct Token(u64);

/// One kind of contract violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Acquired a lower-ranked class while holding a higher-ranked one.
    Order,
    /// Acquired a class already held (not nestable, not read-read).
    SameClass,
    /// The new acquisition edge closed a cycle in the acquisition graph.
    Cycle,
    /// A device operation ran while an I/O-forbidding class was held.
    IoUnderLock,
}

/// A recorded violation (only materialised under [`capture`]).
#[derive(Debug, Clone)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Human-readable description with the held stack.
    pub message: String,
}

#[derive(Debug, Clone, Copy)]
struct HeldLock {
    token: u64,
    class: LockClassId,
    mode: Mode,
}

struct CaptureState {
    violations: Vec<Violation>,
    // Thread-local scratch graph so self-tests never pollute the real one.
    edges: Vec<bool>,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    static NESTED_DEPTH: Cell<u32> = const { Cell::new(0) };
    static IO_ALLOW_DEPTH: Cell<u32> = const { Cell::new(0) };
    static CAPTURE: RefCell<Option<CaptureState>> = const { RefCell::new(None) };
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);
static ORDER_VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static IO_VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static EXEMPTED_IO_OPS: AtomicU64 = AtomicU64::new(0);
static GRAPH: Mutex<Option<Vec<bool>>> = Mutex::new(None);
static REPORTS: Mutex<Vec<String>> = Mutex::new(Vec::new());

const MAX_REPORTS: usize = 64;

fn edge_index(from: LockClassId, to: LockClassId) -> usize {
    from.0 * NUM_CLASSES + to.0
}

/// Depth-first search: is `to` reachable from `from` in `edges`?
fn reachable(edges: &[bool], from: LockClassId, to: LockClassId) -> bool {
    let mut seen = [false; NUM_CLASSES];
    let mut stack = vec![from.0];
    while let Some(n) = stack.pop() {
        if n == to.0 {
            return true;
        }
        if seen[n] {
            continue;
        }
        seen[n] = true;
        for m in 0..NUM_CLASSES {
            if edges[n * NUM_CLASSES + m] && !seen[m] {
                stack.push(m);
            }
        }
    }
    false
}

/// Insert `from → to`; returns true when the edge closes a cycle.
fn insert_edge(edges: &mut [bool], from: LockClassId, to: LockClassId) -> bool {
    if edges[edge_index(from, to)] {
        return false; // seen before: any cycle was reported on first sight
    }
    let closes_cycle = reachable(edges, to, from);
    edges[edge_index(from, to)] = true;
    closes_cycle
}

fn held_summary(held: &[HeldLock]) -> String {
    let names: Vec<&str> = held.iter().map(|h| h.class.name()).collect();
    format!("[{}]", names.join(" → "))
}

fn record_violation(kind: ViolationKind, message: String) {
    let captured = CAPTURE.with(|c| {
        if let Some(state) = c.borrow_mut().as_mut() {
            state.violations.push(Violation {
                kind,
                message: message.clone(),
            });
            true
        } else {
            false
        }
    });
    if captured {
        return;
    }
    match kind {
        ViolationKind::IoUnderLock => IO_VIOLATIONS.fetch_add(1, Ordering::Relaxed),
        _ => ORDER_VIOLATIONS.fetch_add(1, Ordering::Relaxed),
    };
    if let Ok(mut reports) = REPORTS.lock() {
        if reports.len() < MAX_REPORTS {
            reports.push(message.clone());
        }
    }
    panic!("lockdep: {message}");
}

/// Register an acquisition of `class`. Call before a blocking lock attempt
/// (the thread is committed to waiting) or after a successful try-lock.
pub fn acquire(class: LockClassId, mode: Mode, kind: Kind) -> Token {
    if !ENABLED {
        return Token(0);
    }
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let checking = kind != Kind::Try && NESTED_DEPTH.with(|d| d.get()) == 0;
    // Decide violations with the held borrow released, so the panic path
    // cannot collide with guard drops re-entering the witness.
    let mut violation: Option<(ViolationKind, String)> = None;
    let mut new_edges: Vec<LockClassId> = Vec::new();
    HELD.with(|h| {
        let held = h.borrow();
        if checking {
            for held_lock in held.iter() {
                let hc = held_lock.class.spec();
                let nc = class.spec();
                if held_lock.class == class {
                    let read_read = mode == Mode::Shared && held_lock.mode == Mode::Shared;
                    if !nc.nestable && !read_read {
                        violation = Some((
                            ViolationKind::SameClass,
                            format!(
                                "same-class acquisition of `{}` ({:?}) while already held ({:?}); held {}",
                                nc.name,
                                mode,
                                held_lock.mode,
                                held_summary(&held)
                            ),
                        ));
                        break;
                    }
                } else if hc.rank > nc.rank {
                    violation = Some((
                        ViolationKind::Order,
                        format!(
                            "acquired `{}` (rank {}) while holding `{}` (rank {}); held {}",
                            nc.name,
                            nc.rank,
                            hc.name,
                            hc.rank,
                            held_summary(&held)
                        ),
                    ));
                    break;
                } else {
                    new_edges.push(held_lock.class);
                }
            }
        }
    });
    if violation.is_none() && checking {
        // Insert edges and detect cycles — in the capture-local graph when a
        // capture scope is active, in the global graph otherwise.
        let in_capture = CAPTURE.with(|c| {
            let mut c = c.borrow_mut();
            match c.as_mut() {
                Some(state) => {
                    for &from in &new_edges {
                        if insert_edge(&mut state.edges, from, class) && violation.is_none() {
                            violation = Some((
                                ViolationKind::Cycle,
                                format!(
                                    "acquisition edge `{}` → `{}` closes a cycle in the lock-order graph",
                                    from.name(),
                                    class.name()
                                ),
                            ));
                        }
                    }
                    true
                }
                None => false,
            }
        });
        if !in_capture {
            let mut graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
            let edges = graph.get_or_insert_with(|| vec![false; NUM_CLASSES * NUM_CLASSES]);
            for &from in &new_edges {
                if insert_edge(edges, from, class) && violation.is_none() {
                    violation = Some((
                        ViolationKind::Cycle,
                        format!(
                            "acquisition edge `{}` → `{}` closes a cycle in the lock-order graph",
                            from.name(),
                            class.name()
                        ),
                    ));
                }
            }
        }
    }
    if let Some((kind, message)) = violation {
        record_violation(kind, message);
        // Only reached under capture: the acquisition proceeds so the caller
        // keeps a consistent guard.
    }
    HELD.with(|h| h.borrow_mut().push(HeldLock { token, class, mode }));
    Token(token)
}

/// Unregister the acquisition behind `token`. Off-order (non-LIFO) release
/// is legal: the entry is removed wherever it sits in the stack.
pub fn release(token: Token) {
    if !ENABLED || token.0 == 0 {
        return;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|l| l.token == token.0) {
            held.remove(pos);
        }
    });
}

/// The I/O-under-lock detector: device wrappers call this on every physical
/// operation. Panics (or records, under capture) when a lock of an
/// I/O-forbidding class is held and no [`allow_device_io`] scope is active.
pub fn check_device_op(op: &'static str) {
    if !ENABLED {
        return;
    }
    let offending = HELD.with(|h| {
        let held = h.borrow();
        held.iter()
            .find(|l| l.class.spec().forbids_io)
            .map(|l| (l.class, held_summary(&held)))
    });
    let Some((class, summary)) = offending else {
        return;
    };
    if IO_ALLOW_DEPTH.with(|d| d.get()) > 0 {
        EXEMPTED_IO_OPS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    record_violation(
        ViolationKind::IoUnderLock,
        format!(
            "device op `{op}` while holding `{}`; held {summary}",
            class.name()
        ),
    );
}

/// RAII scope suspending order checks (see [`nested_region`]).
pub struct NestedRegion {
    _private: (),
}

impl Drop for NestedRegion {
    fn drop(&mut self) {
        if ENABLED {
            NESTED_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
}

/// Open a scope in which blocking acquisitions skip order checking and edge
/// recording — for code that is deadlock-free by construction in a way the
/// class order cannot express (e.g. probing a donor shard's frames while the
/// donor is pinned by `try_lock`). The held stack and the I/O detector stay
/// live inside the region. `reason` documents the site in the source.
pub fn nested_region(reason: &'static str) -> NestedRegion {
    let _ = reason;
    if ENABLED {
        NESTED_DEPTH.with(|d| d.set(d.get() + 1));
    }
    NestedRegion { _private: () }
}

/// RAII scope exempting device ops from the I/O-under-lock check (see
/// [`allow_device_io`]).
pub struct IoAllowScope {
    _private: (),
}

impl Drop for IoAllowScope {
    fn drop(&mut self) {
        if ENABLED {
            IO_ALLOW_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
}

/// Open a scope in which device ops under an I/O-forbidding lock are counted
/// as exempted instead of reported — the acknowledged under-lock device
/// paths. `reason` documents the site; exempted ops are tallied in
/// [`exempted_io_ops`].
pub fn allow_device_io(reason: &'static str) -> IoAllowScope {
    let _ = reason;
    if ENABLED {
        IO_ALLOW_DEPTH.with(|d| d.set(d.get() + 1));
    }
    IoAllowScope { _private: () }
}

/// Run `f` with this thread's violations captured instead of panicking.
/// Acquisition edges go to a capture-local graph, so deliberate violations
/// in tests cannot pollute the global one. Returns `f`'s result and the
/// violations observed. Panics if a capture is already active on the thread.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Violation>) {
    CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        assert!(slot.is_none(), "nested lockdep capture");
        *slot = Some(CaptureState {
            violations: Vec::new(),
            edges: vec![false; NUM_CLASSES * NUM_CLASSES],
        });
    });
    let result = f();
    let state = CAPTURE
        .with(|c| c.borrow_mut().take())
        .expect("capture state vanished");
    (result, state.violations)
}

/// Number of lock-order / same-class / cycle violations reported globally
/// (captured violations excluded).
pub fn order_violation_count() -> u64 {
    ORDER_VIOLATIONS.load(Ordering::Relaxed)
}

/// Number of I/O-under-lock violations reported globally.
pub fn io_violation_count() -> u64 {
    IO_VIOLATIONS.load(Ordering::Relaxed)
}

/// Number of device ops that ran under an I/O-forbidding lock inside an
/// [`allow_device_io`] scope.
pub fn exempted_io_ops() -> u64 {
    EXEMPTED_IO_OPS.load(Ordering::Relaxed)
}

/// The first few (up to `MAX_REPORTS`) violation messages reported globally.
pub fn reports() -> Vec<String> {
    REPORTS
        .lock()
        .map(|r| r.clone())
        .unwrap_or_else(|e| e.into_inner().clone())
}

/// Snapshot of the global acquisition graph as `(from, to)` class pairs.
pub fn edges() -> Vec<(LockClassId, LockClassId)> {
    let graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    let Some(edges) = graph.as_ref() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for from in 0..NUM_CLASSES {
        for to in 0..NUM_CLASSES {
            if edges[from * NUM_CLASSES + to] {
                out.push((LockClassId(from), LockClassId(to)));
            }
        }
    }
    out
}

/// Number of classes the witness knows about (for DOT rendering).
pub fn class_count() -> usize {
    CLASSES.len()
}

/// The classes currently held by this thread, outermost first (test aid and
/// instrumentation hook).
pub fn held_classes() -> Vec<LockClassId> {
    if !ENABLED {
        return Vec::new();
    }
    HELD.with(|h| h.borrow().iter().map(|l| l.class).collect())
}
