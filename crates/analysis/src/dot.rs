//! Render the observed acquisition-order graph as Graphviz DOT — uploaded
//! as a CI artifact by the `lockdep` job so the learned lock order can be
//! inspected next to the documented one.

use crate::classes::{is_scratch, LockClassId, CLASSES};
use crate::witness;

/// Render the global acquisition graph. Nodes are lock classes (scratch
/// classes omitted unless they acquired edges), ranked by their documented
/// order; solid edges are observed `held → acquired` pairs.
pub fn render() -> String {
    let edges = witness::edges();
    let mut used = vec![false; CLASSES.len()];
    for (from, to) in &edges {
        used[from.0] = true;
        used[to.0] = true;
    }
    let mut out = String::from("digraph lock_order {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for (i, c) in CLASSES.iter().enumerate() {
        if is_scratch(c) && !used[i] {
            continue;
        }
        out.push_str(&format!(
            "  {} [label=\"{}\\nrank {}\"{}];\n",
            c.name,
            c.name,
            c.rank,
            if c.forbids_io {
                ", style=filled, fillcolor=lightyellow"
            } else {
                ""
            }
        ));
    }
    for (from, to) in &edges {
        out.push_str(&format!("  {} -> {};\n", name(*from), name(*to)));
    }
    out.push_str("}\n");
    out
}

fn name(id: LockClassId) -> &'static str {
    CLASSES[id.0].name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_wellformed_dot() {
        let dot = render();
        assert!(dot.starts_with("digraph lock_order {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("cache_shard"));
    }
}
