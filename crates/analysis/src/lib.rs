//! Machine-checking for the workspace's concurrency contract.
//!
//! Three pieces:
//!
//! - [`classes`] — the lock-class registry: every lock in the workspace
//!   belongs to a named class, and the class ranks *are* the documented
//!   acquisition order (README "Lock order" is generated from this table;
//!   `face-lint --check-docs` rejects drift).
//! - [`ordered`] — [`OrderedMutex`]/[`OrderedRwLock`]/[`OrderedCondvar`]
//!   wrappers over the vendored `parking_lot` stub that feed the witness.
//! - [`witness`] — the lockdep runtime: a thread-local held-lock stack, a
//!   global acquisition graph with cycle detection, and the I/O-under-lock
//!   detector that device wrappers consult via [`check_device_op`].
//!
//! The witness is active in debug builds and under the `lockdep` cargo
//! feature; otherwise everything compiles to pass-throughs ([`enabled`]
//! reports which). [`dot`] renders the observed graph for the CI artifact.

pub mod classes;
pub mod dot;
pub mod ordered;
pub mod witness;

pub use classes::LockClassId;
pub use ordered::{
    OrderedCondvar, OrderedMutex, OrderedMutexGuard, OrderedRwLock, OrderedRwLockReadGuard,
    OrderedRwLockWriteGuard,
};
pub use witness::{allow_device_io, check_device_op, nested_region};

/// Whether the lockdep witness is compiled into this build.
pub const fn enabled() -> bool {
    witness::ENABLED
}
