//! Lock wrappers that register every acquisition with the lockdep witness.
//!
//! `OrderedMutex` and `OrderedRwLock` wrap the vendored `parking_lot` stub
//! and carry a [`LockClassId`] from the registry. In witness-enabled builds
//! (debug, or the `lockdep` feature) each `lock`/`read`/`write` runs the
//! order checks in [`crate::witness`]; otherwise the wrappers inline to the
//! raw primitives and the witness calls are no-ops the optimiser removes.
//!
//! `OrderedCondvar` exists because condvar waits release and re-acquire the
//! mutex: the witness entry is popped for the duration of the wait and the
//! re-acquisition is checked like any other blocking acquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::classes::LockClassId;
use crate::witness::{self, Kind, Mode, Token};

/// A mutex bound to a lock class.
pub struct OrderedMutex<T: ?Sized> {
    class: LockClassId,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Create a mutex of the given class protecting `value`.
    pub fn new(class: LockClassId, value: T) -> Self {
        Self {
            class,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// The class this lock was registered under.
    pub fn class(&self) -> LockClassId {
        self.class
    }

    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = witness::acquire(self.class, Mode::Exclusive, Kind::Block);
        OrderedMutexGuard {
            inner: Some(self.inner.lock()),
            token,
            class: self.class,
        }
    }

    /// Acquire the lock without blocking, if it is free. Try acquisitions
    /// are exempt from order checks — they cannot close a wait cycle.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        let token = witness::acquire(self.class, Mode::Exclusive, Kind::Try);
        Some(OrderedMutexGuard {
            inner: Some(guard),
            token,
            class: self.class,
        })
    }

    /// Mutably access the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("class", &self.class.name())
            .finish_non_exhaustive()
    }
}

/// RAII guard returned by [`OrderedMutex::lock`].
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    inner: Option<parking_lot::MutexGuard<'a, T>>,
    token: Token,
    class: LockClassId,
}

impl<'a, T: ?Sized> OrderedMutexGuard<'a, T> {
    fn raw(&self) -> &parking_lot::MutexGuard<'a, T> {
        match self.inner.as_ref() {
            Some(g) => g,
            None => unreachable!("guard used after condvar handoff"),
        }
    }

    fn raw_mut(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        match self.inner.as_mut() {
            Some(g) => g,
            None => unreachable!("guard used after condvar handoff"),
        }
    }

    /// Hand the raw guard to a condvar; releases the witness entry.
    fn into_raw(mut self) -> (parking_lot::MutexGuard<'a, T>, LockClassId) {
        let raw = self.inner.take().expect("guard already handed off");
        witness::release(self.token);
        (raw, self.class)
    }

    fn from_raw(raw: parking_lot::MutexGuard<'a, T>, class: LockClassId) -> Self {
        let token = witness::acquire(class, Mode::Exclusive, Kind::Reacquire);
        Self {
            inner: Some(raw),
            token,
            class,
        }
    }
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.raw()
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.raw_mut()
    }
}

impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(guard) = self.inner.take() {
            drop(guard);
            witness::release(self.token);
        }
    }
}

/// A reader-writer lock bound to a lock class.
pub struct OrderedRwLock<T: ?Sized> {
    class: LockClassId,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Create a lock of the given class protecting `value`.
    pub fn new(class: LockClassId, value: T) -> Self {
        Self {
            class,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// The class this lock was registered under.
    pub fn class(&self) -> LockClassId {
        self.class
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        let token = witness::acquire(self.class, Mode::Shared, Kind::Block);
        OrderedRwLockReadGuard {
            inner: self.inner.read(),
            token,
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        let token = witness::acquire(self.class, Mode::Exclusive, Kind::Block);
        OrderedRwLockWriteGuard {
            inner: self.inner.write(),
            token,
        }
    }

    /// Acquire a shared read guard without blocking, if possible.
    pub fn try_read(&self) -> Option<OrderedRwLockReadGuard<'_, T>> {
        let inner = self.inner.try_read()?;
        let token = witness::acquire(self.class, Mode::Shared, Kind::Try);
        Some(OrderedRwLockReadGuard { inner, token })
    }

    /// Acquire an exclusive write guard without blocking, if possible.
    pub fn try_write(&self) -> Option<OrderedRwLockWriteGuard<'_, T>> {
        let inner = self.inner.try_write()?;
        let token = witness::acquire(self.class, Mode::Exclusive, Kind::Try);
        Some(OrderedRwLockWriteGuard { inner, token })
    }

    /// Mutably access the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("class", &self.class.name())
            .finish_non_exhaustive()
    }
}

/// RAII guard returned by [`OrderedRwLock::read`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    token: Token,
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.token);
    }
}

/// RAII guard returned by [`OrderedRwLock::write`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    token: Token,
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.token);
    }
}

/// A condition variable for [`OrderedMutex`] guards. Waiting pops the
/// witness entry for the duration of the wait and re-registers (with order
/// checks) on wake-up. Like the vendored stub, `wait`/`wait_while` take and
/// return the guard by value.
#[derive(Debug, Default)]
pub struct OrderedCondvar {
    inner: parking_lot::Condvar,
}

impl OrderedCondvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified, atomically releasing and re-acquiring the lock.
    pub fn wait<'a, T>(&self, guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
        let (raw, class) = guard.into_raw();
        let raw = self.inner.wait(raw);
        OrderedMutexGuard::from_raw(raw, class)
    }

    /// Block until `condition` returns false (wait *while* it holds).
    pub fn wait_while<'a, T>(
        &self,
        guard: OrderedMutexGuard<'a, T>,
        condition: impl FnMut(&mut T) -> bool,
    ) -> OrderedMutexGuard<'a, T> {
        let (raw, class) = guard.into_raw();
        let raw = self.inner.wait_while(raw, condition);
        OrderedMutexGuard::from_raw(raw, class)
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}
