//! Deliberate-violation tests: prove the witness actually fires on broken
//! acquisition patterns, and stays silent on the legal ones it must accept
//! (off-order release, reentrant same-class reads, try-locks, nested
//! regions). All violating code runs under `witness::capture`, which records
//! instead of panicking and keeps its edges off the global graph.

use face_analysis::classes::{SCRATCH_A, SCRATCH_B, SCRATCH_C, SCRATCH_INNER, SCRATCH_OUTER};
use face_analysis::witness::{self, ViolationKind};
use face_analysis::{OrderedMutex, OrderedRwLock};

#[test]
fn inverted_two_lock_acquisition_trips_the_witness() {
    if !face_analysis::enabled() {
        return;
    }
    let outer = OrderedMutex::new(SCRATCH_OUTER, ());
    let inner = OrderedMutex::new(SCRATCH_INNER, ());
    let ((), violations) = witness::capture(|| {
        let _i = inner.lock();
        let _o = outer.lock(); // rank 920 acquired while holding rank 930
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::Order);
    assert!(violations[0].message.contains("scratch_outer"));
    assert!(violations[0].message.contains("scratch_inner"));
}

#[test]
fn three_lock_cycle_trips_the_graph_detector() {
    if !face_analysis::enabled() {
        return;
    }
    // a, b, c share a rank: no static order exists between them, so only the
    // acquisition graph can catch the cycle a → b → c → a.
    let a = OrderedMutex::new(SCRATCH_A, ());
    let b = OrderedMutex::new(SCRATCH_B, ());
    let c = OrderedMutex::new(SCRATCH_C, ());
    let ((), violations) = witness::capture(|| {
        {
            let _a = a.lock();
            let _b = b.lock(); // edge a → b
        }
        {
            let _b = b.lock();
            let _c = c.lock(); // edge b → c
        }
        {
            let _c = c.lock();
            let _a = a.lock(); // edge c → a closes the cycle
        }
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::Cycle);
    assert!(violations[0].message.contains("scratch_a"));
}

#[test]
fn off_order_release_does_not_false_positive() {
    if !face_analysis::enabled() {
        return;
    }
    let outer = OrderedMutex::new(SCRATCH_OUTER, ());
    let inner = OrderedMutex::new(SCRATCH_INNER, ());
    let ((), violations) = witness::capture(|| {
        let o = outer.lock();
        let i = inner.lock();
        // Non-LIFO: release the outer lock first, then take another inner-
        // ranked acquisition while only `i` is held.
        drop(o);
        drop(i);
        let _i2 = inner.lock();
    });
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn reentrant_same_class_read_does_not_false_positive() {
    if !face_analysis::enabled() {
        return;
    }
    let l1 = OrderedRwLock::new(SCRATCH_OUTER, 1u32);
    let l2 = OrderedRwLock::new(SCRATCH_OUTER, 2u32);
    let ((), violations) = witness::capture(|| {
        let r1 = l1.read();
        let r2 = l2.read(); // same class, both shared: legal
        assert_eq!(*r1 + *r2, 3);
    });
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn same_class_write_nesting_trips_the_witness() {
    if !face_analysis::enabled() {
        return;
    }
    let l1 = OrderedRwLock::new(SCRATCH_OUTER, ());
    let l2 = OrderedRwLock::new(SCRATCH_OUTER, ());
    let ((), violations) = witness::capture(|| {
        let _w1 = l1.write();
        let _w2 = l2.write(); // same non-nestable class, exclusive: violation
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::SameClass);
}

#[test]
fn try_lock_is_exempt_from_order_checks() {
    if !face_analysis::enabled() {
        return;
    }
    let outer = OrderedMutex::new(SCRATCH_OUTER, ());
    let inner = OrderedMutex::new(SCRATCH_INNER, ());
    let ((), violations) = witness::capture(|| {
        let _i = inner.lock();
        // Inverted, but try_lock cannot block, hence cannot deadlock.
        let _o = outer.try_lock().expect("uncontended");
    });
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn nested_region_suspends_order_checks_but_not_io_checks() {
    if !face_analysis::enabled() {
        return;
    }
    let outer = OrderedMutex::new(SCRATCH_OUTER, ());
    let inner = OrderedMutex::new(SCRATCH_INNER, ()); // forbids_io
    let ((), violations) = witness::capture(|| {
        let _i = inner.lock();
        let _region = witness::nested_region("test: deadlock-free by construction");
        let _o = outer.lock(); // inverted, but annotated
                               // The I/O detector must keep firing inside the region.
        witness::check_device_op("test.op");
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::IoUnderLock);
}

#[test]
fn device_op_under_forbidding_lock_trips_the_detector() {
    if !face_analysis::enabled() {
        return;
    }
    let shard = OrderedMutex::new(SCRATCH_INNER, ()); // forbids_io
    let ((), violations) = witness::capture(|| {
        let _g = shard.lock();
        witness::check_device_op("flash.read_slot");
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::IoUnderLock);
    assert!(violations[0].message.contains("flash.read_slot"));
}

#[test]
fn allow_scope_exempts_acknowledged_device_paths() {
    if !face_analysis::enabled() {
        return;
    }
    let shard = OrderedMutex::new(SCRATCH_INNER, ());
    let before = witness::exempted_io_ops();
    let ((), violations) = witness::capture(|| {
        let _g = shard.lock();
        let _allow = witness::allow_device_io("test: acknowledged under-lock path");
        witness::check_device_op("flash.read_slot");
    });
    assert!(violations.is_empty(), "{violations:?}");
    assert!(witness::exempted_io_ops() > before);
}

#[test]
fn device_op_with_no_forbidding_lock_is_clean() {
    if !face_analysis::enabled() {
        return;
    }
    let outer = OrderedMutex::new(SCRATCH_OUTER, ()); // does not forbid I/O
    let ((), violations) = witness::capture(|| {
        let _g = outer.lock();
        witness::check_device_op("disk.write_page");
    });
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn condvar_wait_releases_and_reacquires_the_witness_entry() {
    if !face_analysis::enabled() {
        return;
    }
    use face_analysis::OrderedCondvar;
    use std::sync::Arc;
    let pair = Arc::new((
        OrderedMutex::new(SCRATCH_OUTER, false),
        OrderedCondvar::new(),
    ));
    let waiter = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (lock, cv) = &*pair;
            let guard = lock.lock();
            let guard = cv.wait_while(guard, |ready| !*ready);
            assert!(*guard);
            // After the wait the entry must be back on the held stack.
            assert_eq!(witness::held_classes(), vec![SCRATCH_OUTER]);
        })
    };
    {
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
    }
    waiter.join().unwrap();
}
