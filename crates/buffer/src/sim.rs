//! A metadata-only twin of the buffer pool for the performance experiments.
//!
//! The paper's evaluation uses a 50 GB database with a 200 MB DRAM buffer and
//! a 2–14 GB flash cache. Reproducing the *behaviour* of the buffer pool and
//! flash cache only requires the replacement decisions and flag transitions,
//! not the page bodies, so the experiment driver uses this structure and
//! charges simulated device time for the physical I/O the decisions imply.
//! The flag logic is identical to [`crate::BufferPool`].

use std::collections::HashMap;

use face_pagestore::PageId;

use crate::flags::FrameFlags;
use crate::lru::LruList;

/// Metadata describing a page leaving the DRAM buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedMeta {
    /// The page.
    pub page: PageId,
    /// Newer than the disk copy.
    pub dirty: bool,
    /// Newer than the flash-cache copy.
    pub fdirty: bool,
}

/// The outcome of a logical page access against the simulated buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimAccess {
    /// Whether the page was already resident.
    pub hit: bool,
}

/// Counters for the simulated buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimBufferStats {
    /// Logical accesses.
    pub accesses: u64,
    /// DRAM hits.
    pub hits: u64,
    /// DRAM misses.
    pub misses: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Evictions of pages with dirty or fdirty set.
    pub dirty_evictions: u64,
}

/// The metadata-only DRAM buffer.
#[derive(Debug, Clone)]
pub struct BufferSim {
    capacity: usize,
    frames: HashMap<PageId, FrameFlags>,
    lru: LruList<PageId>,
    stats: SimBufferStats,
}

impl BufferSim {
    /// A buffer of `capacity` page frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer needs at least one frame");
        Self {
            capacity,
            frames: HashMap::with_capacity(capacity),
            lru: LruList::with_capacity(capacity),
            stats: SimBufferStats::default(),
        }
    }

    /// Capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident page count.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.frames.len() >= self.capacity
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: PageId) -> bool {
        self.frames.contains_key(&id)
    }

    /// The flags of a resident page.
    pub fn flags(&self, id: PageId) -> Option<FrameFlags> {
        self.frames.get(&id).copied()
    }

    /// Activity counters.
    pub fn stats(&self) -> SimBufferStats {
        self.stats
    }

    /// Reset counters (after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = SimBufferStats::default();
    }

    /// A logical access to `id`. On a hit the LRU position and (for writes)
    /// the flags are updated. On a miss the caller must fetch the page from
    /// the lower tiers and then call [`BufferSim::install`].
    pub fn access(&mut self, id: PageId, is_write: bool) -> SimAccess {
        self.stats.accesses += 1;
        if let Some(flags) = self.frames.get_mut(&id) {
            self.stats.hits += 1;
            if is_write {
                flags.mark_updated();
            }
            self.lru.touch(&id);
            SimAccess { hit: true }
        } else {
            self.stats.misses += 1;
            SimAccess { hit: false }
        }
    }

    /// Install a page after a miss. `dirty_from_below` is the dirty flag of
    /// the copy obtained from the flash cache (false when fetched from disk).
    /// If the buffer is full, the LRU page is evicted and returned so the
    /// caller can stage it into the flash cache / disk.
    pub fn install(
        &mut self,
        id: PageId,
        dirty_from_below: bool,
        is_write: bool,
    ) -> Option<EvictedMeta> {
        debug_assert!(!self.frames.contains_key(&id), "install of resident page");
        let evicted = if self.is_full() {
            self.evict_lru()
        } else {
            None
        };
        let mut flags = FrameFlags {
            dirty: dirty_from_below,
            fdirty: false,
        };
        if is_write {
            flags.mark_updated();
        }
        self.frames.insert(id, flags);
        self.lru.insert_mru(id);
        evicted
    }

    /// Evict the least-recently-used page and return its metadata, or `None`
    /// if the buffer is empty. Used both for capacity misses and by Group
    /// Second Chance when it pulls extra pages from the LRU tail to fill a
    /// flash write batch.
    pub fn evict_lru(&mut self) -> Option<EvictedMeta> {
        let victim = self.lru.pop_lru()?;
        let flags = self.frames.remove(&victim).expect("lru and map in sync");
        self.stats.evictions += 1;
        if flags.needs_writeback() {
            self.stats.dirty_evictions += 1;
        }
        Some(EvictedMeta {
            page: victim,
            dirty: flags.dirty,
            fdirty: flags.fdirty,
        })
    }

    /// Evict the least-recently-used *dirty* page, searching from the LRU end.
    /// Returns `None` if no dirty page is resident. This is the variant GSC
    /// prefers when filling a batch: pulling a clean page would waste a flash
    /// write slot.
    pub fn evict_lru_dirty(&mut self) -> Option<EvictedMeta> {
        let victim = self.lru.iter_lru_to_mru().copied().find(|id| {
            self.frames
                .get(id)
                .map(|f| f.needs_writeback())
                .unwrap_or(false)
        })?;
        let flags = self.frames.remove(&victim).expect("resident");
        self.lru.remove(&victim);
        self.stats.evictions += 1;
        self.stats.dirty_evictions += 1;
        Some(EvictedMeta {
            page: victim,
            dirty: flags.dirty,
            fdirty: flags.fdirty,
        })
    }

    /// Pages that a checkpoint must flush (dirty or fdirty), in LRU order.
    pub fn dirty_pages(&self) -> Vec<EvictedMeta> {
        self.lru
            .iter_lru_to_mru()
            .filter_map(|id| {
                let f = self.frames.get(id)?;
                if f.needs_writeback() {
                    Some(EvictedMeta {
                        page: *id,
                        dirty: f.dirty,
                        fdirty: f.fdirty,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Record the outcome of a checkpoint write for a page that stays
    /// resident: `in_flash` / `on_disk` describe where the copy landed.
    pub fn mark_checkpointed(&mut self, id: PageId, in_flash: bool, on_disk: bool) {
        if let Some(flags) = self.frames.get_mut(&id) {
            if on_disk {
                flags.written_to_disk();
            }
            if in_flash {
                flags.staged_to_flash();
            }
        }
    }

    /// Drop everything (crash).
    pub fn crash(&mut self) {
        self.frames.clear();
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PageId {
        PageId::new(0, n)
    }

    #[test]
    fn miss_install_hit_cycle() {
        let mut b = BufferSim::new(2);
        assert!(!b.access(pid(1), false).hit);
        assert!(b.install(pid(1), false, false).is_none());
        assert!(b.access(pid(1), false).hit);
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 1);
        assert_eq!(b.len(), 1);
        assert!(!b.is_full());
    }

    #[test]
    fn eviction_returns_lru_with_flags() {
        let mut b = BufferSim::new(2);
        b.access(pid(1), true);
        b.install(pid(1), false, true); // dirty+fdirty
        b.access(pid(2), false);
        b.install(pid(2), false, false); // clean

        // Installing a third page evicts page 1 (LRU).
        b.access(pid(3), false);
        let evicted = b.install(pid(3), false, false).unwrap();
        assert_eq!(evicted.page, pid(1));
        assert!(evicted.dirty && evicted.fdirty);
        assert_eq!(b.stats().evictions, 1);
        assert_eq!(b.stats().dirty_evictions, 1);
        assert!(!b.contains(pid(1)));
    }

    #[test]
    fn write_hit_marks_flags() {
        let mut b = BufferSim::new(2);
        b.access(pid(1), false);
        b.install(pid(1), false, false);
        assert!(!b.flags(pid(1)).unwrap().dirty);
        b.access(pid(1), true);
        let f = b.flags(pid(1)).unwrap();
        assert!(f.dirty && f.fdirty);
    }

    #[test]
    fn install_from_flash_inherits_dirty() {
        let mut b = BufferSim::new(2);
        b.access(pid(7), false);
        b.install(pid(7), true, false);
        let f = b.flags(pid(7)).unwrap();
        assert!(f.dirty);
        assert!(!f.fdirty);
    }

    #[test]
    fn evict_lru_dirty_skips_clean_pages() {
        let mut b = BufferSim::new(4);
        b.access(pid(1), false);
        b.install(pid(1), false, false); // clean, LRU
        b.access(pid(2), true);
        b.install(pid(2), false, true); // dirty
        b.access(pid(3), false);
        b.install(pid(3), false, false); // clean, MRU
        let e = b.evict_lru_dirty().unwrap();
        assert_eq!(e.page, pid(2));
        assert!(b.contains(pid(1)));
        assert!(b.contains(pid(3)));
        // No dirty pages left.
        assert!(b.evict_lru_dirty().is_none());
    }

    #[test]
    fn dirty_pages_and_checkpoint_marking() {
        let mut b = BufferSim::new(4);
        for i in 1..=3 {
            b.access(pid(i), i == 2);
            b.install(pid(i), false, i == 2);
        }
        let dirty = b.dirty_pages();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].page, pid(2));

        // Checkpoint to flash: fdirty cleared, dirty kept.
        b.mark_checkpointed(pid(2), true, false);
        let f = b.flags(pid(2)).unwrap();
        assert!(f.dirty && !f.fdirty);
        // Checkpoint to disk clears both.
        b.mark_checkpointed(pid(2), false, true);
        assert!(!b.flags(pid(2)).unwrap().needs_writeback());
        // Marking a non-resident page is a no-op.
        b.mark_checkpointed(pid(99), true, true);
    }

    #[test]
    fn crash_drops_all_frames() {
        let mut b = BufferSim::new(4);
        b.access(pid(1), true);
        b.install(pid(1), false, true);
        b.crash();
        assert!(b.is_empty());
        assert!(b.evict_lru().is_none());
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let mut b = BufferSim::new(8);
        for i in 0..1000u32 {
            let id = pid(i % 50);
            if !b.access(id, i % 3 == 0).hit {
                b.install(id, false, i % 3 == 0);
            }
            assert!(b.len() <= 8);
        }
        assert_eq!(b.capacity(), 8);
        let s = b.stats();
        assert_eq!(s.accesses, 1000);
        assert_eq!(s.hits + s.misses, 1000);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = BufferSim::new(0);
    }
}
