//! Per-frame state flags.

use serde::{Deserialize, Serialize};

/// The dirty / flash-dirty flag pair carried by every DRAM frame.
///
/// Following the paper (§3.3):
/// * `dirty` — the frame is newer than the copy in the *disk-resident*
///   database.
/// * `fdirty` ("flash dirty") — the frame is newer than the corresponding
///   copy in the *flash cache* (or no flash copy exists yet because the page
///   was last fetched from disk and then updated).
///
/// Transitions:
/// * fetch from disk: `dirty = fdirty = false`;
/// * fetch from flash cache: `fdirty = false`, `dirty` inherited from the
///   flash metadata entry (the flash copy may itself be newer than disk);
/// * update in the DRAM buffer: `dirty = fdirty = true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FrameFlags {
    /// Newer than the disk copy.
    pub dirty: bool,
    /// Newer than the flash-cache copy.
    pub fdirty: bool,
}

impl FrameFlags {
    /// Flags for a page just fetched from disk.
    pub fn fetched_from_disk() -> Self {
        Self {
            dirty: false,
            fdirty: false,
        }
    }

    /// Flags for a page just fetched from the flash cache, whose flash
    /// metadata entry carried `flash_dirty`.
    pub fn fetched_from_flash(flash_dirty: bool) -> Self {
        Self {
            dirty: flash_dirty,
            fdirty: false,
        }
    }

    /// Apply an update: both flags raised.
    pub fn mark_updated(&mut self) {
        self.dirty = true;
        self.fdirty = true;
    }

    /// The page (in its current form) has been staged into the flash cache;
    /// the flash copy is now in sync with the DRAM copy.
    pub fn staged_to_flash(&mut self) {
        self.fdirty = false;
    }

    /// The page has been written to disk; both copies are in sync with disk.
    pub fn written_to_disk(&mut self) {
        self.dirty = false;
        self.fdirty = false;
    }

    /// Whether the page needs any write-back at all when evicted (it is newer
    /// than at least one lower tier).
    pub fn needs_writeback(&self) -> bool {
        self.dirty || self.fdirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_fetch_starts_clean() {
        let f = FrameFlags::fetched_from_disk();
        assert!(!f.dirty);
        assert!(!f.fdirty);
        assert!(!f.needs_writeback());
    }

    #[test]
    fn flash_fetch_inherits_dirty() {
        let f = FrameFlags::fetched_from_flash(true);
        assert!(f.dirty);
        assert!(!f.fdirty);
        assert!(f.needs_writeback());

        let f = FrameFlags::fetched_from_flash(false);
        assert!(!f.dirty);
        assert!(!f.fdirty);
    }

    #[test]
    fn update_raises_both() {
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        assert!(f.dirty && f.fdirty);
    }

    #[test]
    fn staging_clears_only_fdirty() {
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        f.staged_to_flash();
        assert!(f.dirty);
        assert!(!f.fdirty);
        assert!(f.needs_writeback());
    }

    #[test]
    fn disk_write_clears_both() {
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        f.written_to_disk();
        assert!(!f.needs_writeback());
    }

    #[test]
    fn paper_lifecycle_example() {
        // Fetch from disk, update, evict to flash, re-fetch from flash,
        // evict again without update: the second eviction must not raise
        // fdirty (conditional enqueue), but the page is still dirty vs disk.
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        // Evicted: the flash cache records dirty=true. The DRAM copy is gone.
        let flash_entry_dirty = f.dirty;
        // Re-fetch from flash:
        let f2 = FrameFlags::fetched_from_flash(flash_entry_dirty);
        assert!(f2.dirty, "still newer than disk");
        assert!(!f2.fdirty, "in sync with the flash copy");
    }
}
