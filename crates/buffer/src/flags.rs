//! Per-frame state flags.

use std::sync::atomic::{AtomicU8, Ordering};

use serde::{Deserialize, Serialize};

/// The dirty / flash-dirty flag pair carried by every DRAM frame.
///
/// Following the paper (§3.3):
/// * `dirty` — the frame is newer than the copy in the *disk-resident*
///   database.
/// * `fdirty` ("flash dirty") — the frame is newer than the corresponding
///   copy in the *flash cache* (or no flash copy exists yet because the page
///   was last fetched from disk and then updated).
///
/// Transitions:
/// * fetch from disk: `dirty = fdirty = false`;
/// * fetch from flash cache: `fdirty = false`, `dirty` inherited from the
///   flash metadata entry (the flash copy may itself be newer than disk);
/// * update in the DRAM buffer: `dirty = fdirty = true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FrameFlags {
    /// Newer than the disk copy.
    pub dirty: bool,
    /// Newer than the flash-cache copy.
    pub fdirty: bool,
}

impl FrameFlags {
    /// Flags for a page just fetched from disk.
    pub fn fetched_from_disk() -> Self {
        Self {
            dirty: false,
            fdirty: false,
        }
    }

    /// Flags for a page just fetched from the flash cache, whose flash
    /// metadata entry carried `flash_dirty`.
    pub fn fetched_from_flash(flash_dirty: bool) -> Self {
        Self {
            dirty: flash_dirty,
            fdirty: false,
        }
    }

    /// Apply an update: both flags raised.
    pub fn mark_updated(&mut self) {
        self.dirty = true;
        self.fdirty = true;
    }

    /// The page (in its current form) has been staged into the flash cache;
    /// the flash copy is now in sync with the DRAM copy.
    pub fn staged_to_flash(&mut self) {
        self.fdirty = false;
    }

    /// The page has been written to disk; both copies are in sync with disk.
    pub fn written_to_disk(&mut self) {
        self.dirty = false;
        self.fdirty = false;
    }

    /// Whether the page needs any write-back at all when evicted (it is newer
    /// than at least one lower tier).
    pub fn needs_writeback(&self) -> bool {
        self.dirty || self.fdirty
    }
}

const DIRTY_BIT: u8 = 1;
const FDIRTY_BIT: u8 = 2;

/// Atomic twin of [`FrameFlags`], packed into one byte, so the buffer pool's
/// lock-light read path can inspect (and updaters raise) frame state without
/// an exclusive shard lock. Transitions that *clear* bits (checkpoint,
/// eviction) run under the frame's page latch or the shard's structural
/// mutex; concurrent raises use atomic RMW, so no transition is ever lost.
#[derive(Debug)]
pub struct AtomicFrameFlags(AtomicU8);

impl AtomicFrameFlags {
    /// Start from `flags`.
    pub fn new(flags: FrameFlags) -> Self {
        let cell = Self(AtomicU8::new(0));
        cell.store(flags);
        cell
    }

    fn pack(flags: FrameFlags) -> u8 {
        u8::from(flags.dirty) * DIRTY_BIT + u8::from(flags.fdirty) * FDIRTY_BIT
    }

    /// A point-in-time copy.
    pub fn load(&self) -> FrameFlags {
        let bits = self.0.load(Ordering::Acquire);
        FrameFlags {
            dirty: bits & DIRTY_BIT != 0,
            fdirty: bits & FDIRTY_BIT != 0,
        }
    }

    /// Overwrite both flags.
    pub fn store(&self, flags: FrameFlags) {
        self.0.store(Self::pack(flags), Ordering::Release);
    }

    /// See [`FrameFlags::mark_updated`].
    pub fn mark_updated(&self) {
        self.0.fetch_or(DIRTY_BIT | FDIRTY_BIT, Ordering::AcqRel);
    }

    /// See [`FrameFlags::staged_to_flash`].
    pub fn staged_to_flash(&self) {
        self.0.fetch_and(!FDIRTY_BIT, Ordering::AcqRel);
    }

    /// See [`FrameFlags::written_to_disk`].
    pub fn written_to_disk(&self) {
        self.0
            .fetch_and(!(DIRTY_BIT | FDIRTY_BIT), Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_fetch_starts_clean() {
        let f = FrameFlags::fetched_from_disk();
        assert!(!f.dirty);
        assert!(!f.fdirty);
        assert!(!f.needs_writeback());
    }

    #[test]
    fn flash_fetch_inherits_dirty() {
        let f = FrameFlags::fetched_from_flash(true);
        assert!(f.dirty);
        assert!(!f.fdirty);
        assert!(f.needs_writeback());

        let f = FrameFlags::fetched_from_flash(false);
        assert!(!f.dirty);
        assert!(!f.fdirty);
    }

    #[test]
    fn update_raises_both() {
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        assert!(f.dirty && f.fdirty);
    }

    #[test]
    fn staging_clears_only_fdirty() {
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        f.staged_to_flash();
        assert!(f.dirty);
        assert!(!f.fdirty);
        assert!(f.needs_writeback());
    }

    #[test]
    fn disk_write_clears_both() {
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        f.written_to_disk();
        assert!(!f.needs_writeback());
    }

    #[test]
    fn atomic_flags_mirror_the_plain_transitions() {
        let f = AtomicFrameFlags::new(FrameFlags::fetched_from_disk());
        assert!(!f.load().needs_writeback());
        f.mark_updated();
        assert!(f.load().dirty && f.load().fdirty);
        f.staged_to_flash();
        assert!(f.load().dirty && !f.load().fdirty);
        f.written_to_disk();
        assert!(!f.load().needs_writeback());
        f.store(FrameFlags::fetched_from_flash(true));
        assert!(f.load().dirty && !f.load().fdirty);
    }

    #[test]
    fn concurrent_raises_are_never_lost() {
        let f = std::sync::Arc::new(AtomicFrameFlags::new(FrameFlags::default()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let f = std::sync::Arc::clone(&f);
                s.spawn(move || {
                    for _ in 0..500 {
                        f.mark_updated();
                    }
                });
            }
        });
        assert!(f.load().dirty && f.load().fdirty);
    }

    #[test]
    fn paper_lifecycle_example() {
        // Fetch from disk, update, evict to flash, re-fetch from flash,
        // evict again without update: the second eviction must not raise
        // fdirty (conditional enqueue), but the page is still dirty vs disk.
        let mut f = FrameFlags::fetched_from_disk();
        f.mark_updated();
        // Evicted: the flash cache records dirty=true. The DRAM copy is gone.
        let flash_entry_dirty = f.dirty;
        // Re-fetch from flash:
        let f2 = FrameFlags::fetched_from_flash(flash_entry_dirty);
        assert!(f2.dirty, "still newer than disk");
        assert!(!f2.fdirty, "in sync with the flash copy");
    }
}
