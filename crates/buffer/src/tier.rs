//! The interface between the DRAM buffer pool and whatever sits below it.
//!
//! With FaCE enabled the lower tier is the flash cache backed by the disk
//! array; without it the lower tier is the disk alone. The buffer pool does
//! not know the difference — exactly the paper's point that the flash cache
//! "simply goes along with the replacement mechanism provided by the DRAM
//! buffer pool".

use std::sync::Arc;

use face_pagestore::{Counter, DeviceError, Page, PageId, PageStore, StoreError};

/// Errors surfaced by a lower tier.
#[derive(Debug)]
pub enum TierError {
    /// The page does not exist anywhere below the buffer.
    PageNotFound(PageId),
    /// An error from the underlying page store (disk).
    Store(StoreError),
    /// An error from the flash-cache layer.
    Cache(String),
    /// A typed device failure that survived retry, failover and quarantine —
    /// what the tier surfaces when degraded-mode machinery could not absorb
    /// a flash or disk fault (e.g. a dirty flash page whose bytes are gone).
    Device(DeviceError),
    /// The WAL could not be forced up to a page's LSN before persisting the
    /// page (tiers that observe the write-ahead rule refuse to write a dirty
    /// page whose log records are not durable).
    Wal(String),
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::PageNotFound(id) => write!(f, "page {id} not found in any tier"),
            TierError::Store(e) => write!(f, "store error: {e}"),
            TierError::Cache(msg) => write!(f, "flash cache error: {msg}"),
            TierError::Device(e) => write!(f, "device error: {e}"),
            TierError::Wal(msg) => write!(f, "write-ahead rule violated: {msg}"),
        }
    }
}

impl std::error::Error for TierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TierError::Store(e) => Some(e),
            TierError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for TierError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::PageNotFound(id) => TierError::PageNotFound(id),
            StoreError::Device(e) => TierError::Device(e),
            other => TierError::Store(other),
        }
    }
}

impl From<DeviceError> for TierError {
    fn from(e: DeviceError) -> Self {
        TierError::Device(e)
    }
}

/// Result alias for tier operations.
pub type TierResult<T> = Result<T, TierError>;

/// Where a fetched page came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// The flash cache ("flash hit").
    FlashCache,
    /// The disk-resident database.
    Disk,
}

/// The result of fetching a page from the lower tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Where the page was found.
    pub source: FetchSource,
    /// Whether the fetched copy is newer than the disk copy (only possible
    /// for flash-cache hits under a write-back policy).
    pub dirty: bool,
}

/// Why a page is being handed to the lower tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteBackReason {
    /// The DRAM buffer evicted the page to make room.
    Eviction,
    /// A checkpoint is flushing dirty pages.
    Checkpoint,
}

/// What the lower tier did with a written-back page, so the buffer pool can
/// maintain its flags when the page stays resident (checkpoint case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBackOutcome {
    /// The page (this exact version) now exists in the flash cache.
    pub in_flash: bool,
    /// The page (this exact version) now exists on disk.
    pub on_disk: bool,
}

/// A source of additional cold dirty victims the lower tier may pull while
/// absorbing an eviction — the paper's §3.3 hook where Group Second Chance
/// tops a flash write batch up "with dirty pages from the LRU tail of the
/// DRAM buffer" (like Linux's writeback daemons or Oracle's DBWR batching).
///
/// Implementations must be **non-blocking with respect to buffer shards**
/// (the pool's implementation only `try_lock`s other shards) because the
/// tier invokes this while cache-internal locks are held; a blocking wait on
/// a buffer shard would close a lock cycle.
pub trait VictimPull {
    /// Remove and return a cold dirty frame whose page satisfies `filter`
    /// (page id and pageLSN), or `None` if none is available cheaply. The
    /// frame leaves the DRAM buffer for good: the caller owns its fate.
    /// Returns `(page, dirty, fdirty)`.
    fn pull(
        &mut self,
        filter: &dyn Fn(PageId, face_pagestore::Lsn) -> bool,
    ) -> Option<(Page, bool, bool)>;
}

/// A pull source that never yields anything (checkpoint flushes and tiers
/// without batching use this).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoVictims;

impl VictimPull for NoVictims {
    fn pull(
        &mut self,
        _filter: &dyn Fn(PageId, face_pagestore::Lsn) -> bool,
    ) -> Option<(Page, bool, bool)> {
        None
    }
}

/// The storage stack below the DRAM buffer pool.
///
/// Every method takes `&self`: the sharded buffer pool calls into the tier
/// from many threads at once (one per shard), so implementations must manage
/// their own interior mutability (atomics for counters, locks around any
/// structural state).
pub trait LowerTier: Send + Sync {
    /// Fetch page `id` into `buf`, looking in the flash cache first if one is
    /// present.
    fn fetch(&self, id: PageId, buf: &mut Page) -> TierResult<FetchOutcome>;

    /// Accept a page leaving the DRAM buffer (eviction) or being flushed by a
    /// checkpoint. `dirty` / `fdirty` are the DRAM frame's flags.
    fn write_back(
        &self,
        page: &Page,
        dirty: bool,
        fdirty: bool,
        reason: WriteBackReason,
    ) -> TierResult<WriteBackOutcome>;

    /// Like [`LowerTier::write_back`], with a [`VictimPull`] the tier may
    /// use to pull additional cold dirty pages out of the DRAM buffer (Group
    /// Second Chance batch top-up). The default ignores the source; tiers
    /// without batching need not override.
    fn write_back_with(
        &self,
        page: &Page,
        dirty: bool,
        fdirty: bool,
        reason: WriteBackReason,
        victims: &mut dyn VictimPull,
    ) -> TierResult<WriteBackOutcome> {
        let _ = victims;
        self.write_back(page, dirty, fdirty, reason)
    }

    /// Allocate a brand-new page on the backing store.
    fn allocate(&self, file: u32) -> TierResult<PageId>;

    /// Force everything the tier has buffered to durable storage.
    fn sync(&self) -> TierResult<()>;
}

/// The no-flash-cache baseline: fetches come from disk, dirty write-backs go
/// straight to disk. This is the paper's "HDD only" configuration (and, with
/// the data store placed on an SSD profile, the "SSD only" configuration).
pub struct DirectDiskTier {
    store: Arc<dyn PageStore>,
    disk_reads: Counter,
    disk_writes: Counter,
}

impl DirectDiskTier {
    /// Create a tier over the given store.
    pub fn new(store: Arc<dyn PageStore>) -> Self {
        Self {
            store,
            disk_reads: Counter::default(),
            disk_writes: Counter::default(),
        }
    }

    /// Physical reads issued to the store.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.get()
    }

    /// Physical writes issued to the store.
    pub fn disk_writes(&self) -> u64 {
        self.disk_writes.get()
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }
}

impl LowerTier for DirectDiskTier {
    fn fetch(&self, id: PageId, buf: &mut Page) -> TierResult<FetchOutcome> {
        self.store.read_page(id, buf)?;
        self.disk_reads.inc();
        Ok(FetchOutcome {
            source: FetchSource::Disk,
            dirty: false,
        })
    }

    fn write_back(
        &self,
        page: &Page,
        dirty: bool,
        _fdirty: bool,
        _reason: WriteBackReason,
    ) -> TierResult<WriteBackOutcome> {
        if dirty {
            let mut copy = page.clone();
            copy.update_checksum();
            self.store.write_page(copy.id(), &copy)?;
            self.disk_writes.inc();
        }
        Ok(WriteBackOutcome {
            in_flash: false,
            on_disk: true,
        })
    }

    fn allocate(&self, file: u32) -> TierResult<PageId> {
        Ok(self.store.allocate(file)?)
    }

    fn sync(&self) -> TierResult<()> {
        self.store.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use face_pagestore::InMemoryPageStore;

    #[test]
    fn direct_tier_reads_and_writes_disk() {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone());
        let id = tier.allocate(0).unwrap();

        let mut page = Page::new(id);
        page.write_body(0, b"v1");
        let out = tier
            .write_back(&page, true, true, WriteBackReason::Eviction)
            .unwrap();
        assert!(out.on_disk);
        assert!(!out.in_flash);
        assert_eq!(tier.disk_writes(), 1);

        let mut buf = Page::zeroed();
        let fetched = tier.fetch(id, &mut buf).unwrap();
        assert_eq!(fetched.source, FetchSource::Disk);
        assert!(!fetched.dirty);
        assert_eq!(buf.read_body(0, 2), b"v1");
        assert_eq!(tier.disk_reads(), 1);
        tier.sync().unwrap();
    }

    #[test]
    fn clean_writeback_skips_disk() {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store);
        let id = tier.allocate(0).unwrap();
        let page = Page::new(id);
        tier.write_back(&page, false, false, WriteBackReason::Eviction)
            .unwrap();
        assert_eq!(tier.disk_writes(), 0);
    }

    #[test]
    fn missing_page_maps_to_tier_error() {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store);
        let mut buf = Page::zeroed();
        let err = tier.fetch(PageId::new(0, 99), &mut buf).unwrap_err();
        assert!(matches!(err, TierError::PageNotFound(_)));
        assert!(format!("{err}").contains("0:99"));
    }

    #[test]
    fn error_display_variants() {
        let e = TierError::Cache("bad state".into());
        assert!(format!("{e}").contains("bad state"));
        let e: TierError = StoreError::Closed.into();
        assert!(matches!(e, TierError::Store(_)));
        let e = TierError::Wal("log force failed".into());
        assert!(format!("{e}").contains("log force failed"));
        let e: TierError = face_pagestore::DeviceError::permanent_device(
            face_pagestore::DeviceOp::Write,
            "controller gone",
        )
        .into();
        assert!(matches!(e, TierError::Device(_)));
        assert!(format!("{e}").contains("controller gone"));
    }
}
