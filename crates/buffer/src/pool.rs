//! The data-carrying DRAM buffer pool, sharded for concurrent callers.
//!
//! The pool hashes page ids over `N` independent shards — the same lock
//! striping PostgreSQL applies to its buffer table — so threads touching
//! different pages proceed in parallel. Each shard owns a fixed slice of the
//! frame budget and splits its state two ways:
//!
//! * a **read-optimized mapping** (`RwLock<HashMap<PageId, Arc<FrameCell>>>`)
//!   that lookups share, and
//! * a **structural mutex** guarding the replacement order; misses,
//!   evictions and updates serialize here.
//!
//! With [`BufferPool::lock_light_reads`] enabled, a read **hit** is a shared
//! map lookup, a shared page latch and an atomic reference-bit touch — no
//! exclusive lock anywhere. Replacement switches from strict LRU to a
//! second-chance sweep over those reference bits (a clock approximation of
//! LRU, as in the paper's host system). Without the flag every access takes
//! the structural mutex and maintains exact LRU order, which several tests
//! pin down.
//!
//! Frames live in `Arc`ed cells, so an eviction (or a destage completing
//! mid-read) can never free a frame a reader still holds; the evictor flips
//! the cell's `evicted` flag under the page latch and optimistic readers
//! revalidate it after acquiring theirs, retrying the lookup if they lost
//! the race ([`BufferStats::read_retries`]).
//!
//! Lock order within the pool: structural mutex → mapping lock → page latch.
//! A thread holds at most one shard's structural mutex (the GSC victim pull
//! only ever `try_lock`s others), and may call into the lower tier (which
//! takes its own internal locks) while holding it. The lower tier never
//! calls back into the pool, so `shard → tier-internals` stays acyclic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use face_analysis::classes::{BUFFER_MAP, BUFFER_STRUCTURAL, PAGE_LATCH};
use face_analysis::{witness, OrderedMutex, OrderedRwLock};
use face_pagestore::{Counter, Lsn, Page, PageId};

use crate::flags::{AtomicFrameFlags, FrameFlags};
use crate::lru::LruList;
use crate::tier::{FetchSource, LowerTier, TierResult, VictimPull, WriteBackReason};

/// How many LRU-tail frames a shard is probed for when the lower tier pulls
/// extra dirty victims (Group Second Chance batch top-up). Bounds the time
/// spent under an opportunistically `try_lock`ed shard.
const VICTIM_PROBE_DEPTH: usize = 8;

/// Default shard count for pools that do not specify one.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Counters describing buffer pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Logical page accesses (reads + updates).
    pub accesses: u64,
    /// Accesses satisfied from a DRAM frame.
    pub hits: u64,
    /// Accesses that had to fetch from the lower tier.
    pub misses: u64,
    /// Misses satisfied by the flash cache.
    pub flash_hits: u64,
    /// Misses satisfied by the disk.
    pub disk_fetches: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evicted frames that were dirty or fdirty (needed write-back).
    pub dirty_evictions: u64,
    /// Pages flushed by checkpoints.
    pub checkpoint_writes: u64,
    /// Lock-light read hits that caught their frame mid-eviction and
    /// retried the lookup (the optimistic path's revalidation firing).
    pub read_retries: u64,
    /// Eviction candidates spared by the second-chance sweep because their
    /// reference bit was set (lock-light mode only).
    pub ref_rescues: u64,
}

impl BufferStats {
    /// DRAM hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Share of DRAM misses that were served by the flash cache — the
    /// paper's Table 3(a) metric.
    pub fn flash_hit_ratio(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.flash_hits as f64 / self.misses as f64
        }
    }
}

/// Atomic twin of [`BufferStats`]: bumped from any shard without extra locks.
#[derive(Debug, Default)]
struct AtomicBufferStats {
    accesses: Counter,
    hits: Counter,
    misses: Counter,
    flash_hits: Counter,
    disk_fetches: Counter,
    evictions: Counter,
    dirty_evictions: Counter,
    checkpoint_writes: Counter,
    read_retries: Counter,
    ref_rescues: Counter,
}

impl AtomicBufferStats {
    fn snapshot(&self) -> BufferStats {
        BufferStats {
            accesses: self.accesses.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            flash_hits: self.flash_hits.get(),
            disk_fetches: self.disk_fetches.get(),
            evictions: self.evictions.get(),
            dirty_evictions: self.dirty_evictions.get(),
            checkpoint_writes: self.checkpoint_writes.get(),
            read_retries: self.read_retries.get(),
            ref_rescues: self.ref_rescues.get(),
        }
    }

    fn reset(&self) {
        self.accesses.set(0);
        self.hits.set(0);
        self.misses.set(0);
        self.flash_hits.set(0);
        self.disk_fetches.set(0);
        self.evictions.set(0);
        self.dirty_evictions.set(0);
        self.checkpoint_writes.set(0);
        self.read_retries.set(0);
        self.ref_rescues.set(0);
    }
}

/// One resident frame: the page body behind its latch, plus the atomic
/// per-frame state the lock-light read path touches without the shard lock.
struct FrameCell {
    /// The page latch. Readers share it; updaters and the evictor hold it
    /// exclusively (WAL appends happen under it, keeping per-page log order
    /// consistent with apply order).
    page: OrderedRwLock<Page>,
    flags: AtomicFrameFlags,
    /// Reference bit for the second-chance sweep: set by hits, cleared (one
    /// rescue each) by the evictor.
    referenced: AtomicBool,
    /// Flipped by the evictor under the page latch; an optimistic reader
    /// that sees it set lost the race and retries its lookup.
    evicted: AtomicBool,
}

impl FrameCell {
    fn new(page: Page, flags: FrameFlags) -> Self {
        Self {
            page: OrderedRwLock::new(PAGE_LATCH, page),
            flags: AtomicFrameFlags::new(flags),
            referenced: AtomicBool::new(false),
            evicted: AtomicBool::new(false),
        }
    }
}

/// Replacement state of one shard, behind the structural mutex.
struct ShardCore {
    lru: LruList<PageId>,
}

/// One lock-striped slice of the pool.
struct Shard {
    capacity: usize,
    /// The read-optimized mapping; see the module docs for the lock order.
    map: OrderedRwLock<HashMap<PageId, Arc<FrameCell>>>,
    core: OrderedMutex<ShardCore>,
}

/// A fixed-capacity, sharded DRAM buffer pool with per-shard replacement
/// over a pluggable [`LowerTier`].
///
/// All operations take `&self`; the pool is `Send + Sync` whenever its lower
/// tier is. The pool owns page data; callers access pages through closures so
/// that a page reference can never outlive its latch.
pub struct BufferPool<L: LowerTier> {
    capacity: usize,
    shards: Vec<Shard>,
    lower: L,
    stats: AtomicBufferStats,
    /// Resident-frame mirror, so [`BufferPool::len`] never sweeps the shard
    /// locks. Maintained at insert/evict; exact at quiesce.
    resident: Counter,
    lock_light: bool,
}

impl<L: LowerTier> BufferPool<L> {
    /// A pool holding at most `capacity` pages over `lower`, striped over
    /// [`DEFAULT_POOL_SHARDS`] shards (fewer if the capacity is smaller).
    pub fn new(capacity: usize, lower: L) -> Self {
        Self::with_shards(capacity, DEFAULT_POOL_SHARDS, lower)
    }

    /// A pool striped over exactly `shards` shards (clamped to `capacity` so
    /// every shard owns at least one frame). `shards == 1` reproduces the
    /// classic single-LRU pool, which some tests rely on for exact eviction
    /// order. Reads take the exclusive structural path; see
    /// [`BufferPool::lock_light_reads`].
    pub fn with_shards(capacity: usize, shards: usize, lower: L) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let rem = capacity % shards;
        let shards = (0..shards)
            .map(|i| {
                let cap = base + usize::from(i < rem);
                Shard {
                    capacity: cap,
                    map: OrderedRwLock::new(BUFFER_MAP, HashMap::with_capacity(cap)),
                    core: OrderedMutex::new(
                        BUFFER_STRUCTURAL,
                        ShardCore {
                            lru: LruList::with_capacity(cap),
                        },
                    ),
                }
            })
            .collect();
        Self {
            capacity,
            shards,
            lower,
            stats: AtomicBufferStats::default(),
            resident: Counter::default(),
            lock_light: false,
        }
    }

    /// Builder-style switch for the lock-light read path: hits become a
    /// shared map lookup + shared page latch + atomic reference-bit touch,
    /// and replacement becomes a second-chance sweep over those bits. Off
    /// (the default), every access takes the structural mutex and maintains
    /// exact LRU order.
    pub fn lock_light_reads(mut self, on: bool) -> Self {
        self.lock_light = on;
        self
    }

    /// Whether the lock-light read path is enabled.
    pub fn is_lock_light(&self) -> bool {
        self.lock_light
    }

    /// Pool capacity in frames (summed over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident pages, from the atomic mirror — no shard lock is
    /// taken (the previous implementation locked every shard per call).
    /// Exact whenever no insert/evict is in flight.
    pub fn len(&self) -> usize {
        self.resident.get() as usize
    }

    /// Whether the pool holds no pages (same contract as [`BufferPool::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident pages per shard, counted under the mapping locks (test and
    /// diagnostic support for checking the [`BufferPool::len`] mirror).
    pub fn resident_by_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.map.read().len()).collect()
    }

    /// Whether `id` is resident. A shared map lookup — never an exclusive
    /// lock.
    pub fn contains(&self, id: PageId) -> bool {
        self.shard(id).map.read().contains_key(&id)
    }

    /// The flags of a resident page.
    pub fn flags(&self, id: PageId) -> Option<FrameFlags> {
        self.shard(id).map.read().get(&id).map(|c| c.flags.load())
    }

    /// Activity counters (a point-in-time snapshot of the atomic tallies).
    pub fn stats(&self) -> BufferStats {
        self.stats.snapshot()
    }

    /// Reset activity counters (e.g. after warm-up).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Shared access to the lower tier.
    pub fn lower(&self) -> &L {
        &self.lower
    }

    fn shard_index(&self, id: PageId) -> usize {
        id.stripe_of(self.shards.len())
    }

    fn shard(&self, id: PageId) -> &Shard {
        &self.shards[self.shard_index(id)]
    }

    /// Read access to a page: fetches it from the lower tier on a miss and
    /// passes a shared reference to `f`.
    ///
    /// In lock-light mode a hit holds only the shared mapping lock (briefly)
    /// and the shared page latch for the duration of `f`; otherwise the
    /// shard's structural mutex is held throughout, as the classic pool did.
    pub fn read<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> TierResult<R> {
        self.stats.accesses.inc();
        let sidx = self.shard_index(id);
        if self.lock_light {
            loop {
                let cell = self.shards[sidx].map.read().get(&id).cloned();
                let Some(cell) = cell else { break };
                let page = cell.page.read();
                if cell.evicted.load(Ordering::Acquire) {
                    // The frame left the pool between our lookup and our
                    // latch; the map already reflects it — retry.
                    self.stats.read_retries.inc();
                    drop(page);
                    continue;
                }
                cell.referenced.store(true, Ordering::Relaxed);
                self.stats.hits.inc();
                return Ok(f(&page));
            }
        }
        let mut core = self.shards[sidx].core.lock();
        let cell = self.resident_cell(sidx, &mut core, id)?;
        let page = cell.page.read();
        Ok(f(&page))
    }

    /// Update a page: fetches on miss, applies `f`, stamps `lsn` into the
    /// page header if it is newer, and raises the dirty/fdirty flags.
    ///
    /// Write-ahead discipline is the caller's responsibility: append the log
    /// record (obtaining `lsn`) *before* calling `update`, or use
    /// [`BufferPool::update_with`] to append while the page latch is held.
    pub fn update<R>(&self, id: PageId, lsn: Lsn, f: impl FnOnce(&mut Page) -> R) -> TierResult<R> {
        self.update_with(id, |page| {
            let r = f(page);
            if lsn > page.lsn() {
                page.set_lsn(lsn);
            }
            r
        })
    }

    /// Update a page under its page latch, leaving LSN stamping to the
    /// closure. This is the concurrent engine's write path: appending the
    /// WAL record and applying the change inside one critical section keeps
    /// the log order consistent with the page's update order, which redo
    /// correctness requires once multiple threads write. Updates always take
    /// the structural mutex (they may need to evict), so an update can never
    /// race an eviction of its own frame.
    pub fn update_with<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> TierResult<R> {
        self.stats.accesses.inc();
        let sidx = self.shard_index(id);
        let mut core = self.shards[sidx].core.lock();
        let cell = self.resident_cell(sidx, &mut core, id)?;
        let mut page = cell.page.write();
        let r = f(&mut page);
        cell.flags.mark_updated();
        Ok(r)
    }

    /// Allocate a new page on the backing store and install it resident and
    /// dirty (it exists nowhere below the buffer yet).
    pub fn allocate_page(&self, file: u32) -> TierResult<PageId> {
        let id = self.lower.allocate(file)?;
        let sidx = self.shard_index(id);
        let mut core = self.shards[sidx].core.lock();
        self.make_room(sidx, &mut core)?;
        let mut flags = FrameFlags::fetched_from_disk();
        flags.mark_updated();
        self.shards[sidx]
            .map
            .write()
            .insert(id, Arc::new(FrameCell::new(Page::new(id), flags)));
        core.lru.insert_mru(id);
        self.resident.inc();
        Ok(id)
    }

    /// Evict the least-recently-used frame of the *fullest* shard, handing it
    /// to the lower tier. Returns the evicted page id, or `None` if the pool
    /// is empty.
    ///
    /// With one shard this is the exact global LRU victim; with several it is
    /// the LRU victim of the most loaded stripe — the hook Group Second
    /// Chance uses to "pull pages from the LRU tail of the DRAM buffer"
    /// (paper §3.3) only needs *a* cold dirty page, not *the* coldest.
    pub fn evict_lru_frame(&self) -> TierResult<Option<PageId>> {
        let fullest = self
            .shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.map.read().len())
            .map(|(i, _)| i)
            .expect("at least one shard");
        let mut core = self.shards[fullest].core.lock();
        self.evict_from(fullest, &mut core)
    }

    /// Opportunistically remove one cold dirty frame matching `filter` from
    /// a shard other than `exclude`, probing each shard's LRU tail at most
    /// [`VICTIM_PROBE_DEPTH`] deep. Only `try_lock` is used on the
    /// structural mutex, so this can run while the caller holds other locks
    /// (it never blocks on a buffer shard); shards currently contended are
    /// simply skipped. Returns the frame's page and flags; the frame leaves
    /// the pool.
    fn pull_dirty_victim(
        &self,
        exclude: usize,
        filter: &dyn Fn(PageId, Lsn) -> bool,
    ) -> Option<(Page, bool, bool)> {
        // The lower tier invokes this pull while holding its own (higher-
        // ranked) locks, so the donor shard's map/latch acquisitions below
        // run against the documented order. They are deadlock-free by
        // construction: the donor's structural mutex is only ever
        // `try_lock`ed, and holding it excludes every exclusive path on that
        // shard, so nothing the donor side holds can be waiting on us.
        let _region =
            witness::nested_region("buffer: GSC donor-shard probe under the cache shard lock");
        for (i, shard) in self.shards.iter().enumerate() {
            if i == exclude {
                continue;
            }
            let Some(mut core) = shard.core.try_lock() else {
                continue;
            };
            let candidate = {
                let map = shard.map.read();
                core.lru
                    .iter_lru_to_mru()
                    .take(VICTIM_PROBE_DEPTH)
                    .copied()
                    .find(|id| {
                        map.get(id).is_some_and(|c| {
                            c.flags.load().dirty && filter(*id, c.page.read().lsn())
                        })
                    })
            };
            if let Some(id) = candidate {
                let cell = shard
                    .map
                    .write()
                    .remove(&id)
                    .expect("candidate is resident");
                core.lru.remove(&id);
                let page = cell.page.write();
                cell.evicted.store(true, Ordering::Release);
                self.resident.sub(1);
                let flags = cell.flags.load();
                self.stats.evictions.inc();
                self.stats.dirty_evictions.inc();
                return Some((page.clone(), flags.dirty, flags.fdirty));
            }
        }
        None
    }

    /// Checkpoint support: hand every dirty page to the lower tier (which
    /// will direct it to the flash cache under FaCE, or to disk otherwise)
    /// and update the resident flags according to where the copy landed.
    /// Returns the number of pages written.
    ///
    /// Shards are flushed one at a time (their structural mutex held, so no
    /// frame evicts mid-flush; lock-light read hits keep flowing); updates
    /// racing ahead of the checkpoint simply leave their pages dirty for the
    /// next one (a fuzzy checkpoint, as in the paper's host system).
    pub fn flush_all_dirty(&self) -> TierResult<usize> {
        let mut written = 0;
        for shard in &self.shards {
            let _core = shard.core.lock();
            let dirty: Vec<Arc<FrameCell>> = shard
                .map
                .read()
                .values()
                .filter(|c| c.flags.load().needs_writeback())
                .map(Arc::clone)
                .collect();
            for cell in dirty {
                // The shared latch keeps the body stable; updaters are held
                // off by the structural mutex, so the flag transition below
                // cannot swallow a concurrent mark_updated.
                let page = cell.page.read();
                let flags = cell.flags.load();
                let outcome = self.lower.write_back(
                    &page,
                    flags.dirty,
                    flags.fdirty,
                    WriteBackReason::Checkpoint,
                )?;
                if outcome.on_disk {
                    cell.flags.written_to_disk();
                }
                if outcome.in_flash {
                    cell.flags.staged_to_flash();
                }
                written += 1;
                self.stats.checkpoint_writes.inc();
            }
        }
        self.lower.sync()?;
        Ok(written)
    }

    /// Drop every frame without writing anything back. This models a crash:
    /// the DRAM buffer's contents are lost. Callers must have quiesced
    /// concurrent operations (a real crash does so by definition).
    pub fn crash(&self) {
        for shard in &self.shards {
            let mut core = shard.core.lock();
            let mut map = shard.map.write();
            for cell in map.values() {
                cell.evicted.store(true, Ordering::Release);
            }
            map.clear();
            core.lru.clear();
        }
        self.resident.set(0);
    }

    /// The resident pages from least- to most-recently used within each
    /// shard, concatenated in shard order (for inspection and tests; exact
    /// global order only with one shard and the exclusive read path).
    pub fn resident_lru_order(&self) -> Vec<PageId> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.core
                    .lock()
                    .lru
                    .iter_lru_to_mru()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// The frame cell for `id`, fetched from the lower tier on a miss. Runs
    /// under the shard's structural mutex.
    fn resident_cell(
        &self,
        sidx: usize,
        core: &mut ShardCore,
        id: PageId,
    ) -> TierResult<Arc<FrameCell>> {
        let shard = &self.shards[sidx];
        if let Some(cell) = shard.map.read().get(&id).cloned() {
            self.stats.hits.inc();
            if self.lock_light {
                cell.referenced.store(true, Ordering::Relaxed);
            } else {
                core.lru.touch(&id);
            }
            return Ok(cell);
        }
        self.stats.misses.inc();
        self.make_room(sidx, core)?;
        let mut page = Page::zeroed();
        let outcome = self.lower.fetch(id, &mut page)?;
        match outcome.source {
            FetchSource::FlashCache => self.stats.flash_hits.inc(),
            FetchSource::Disk => self.stats.disk_fetches.inc(),
        }
        let flags = match outcome.source {
            FetchSource::FlashCache => FrameFlags::fetched_from_flash(outcome.dirty),
            FetchSource::Disk => FrameFlags::fetched_from_disk(),
        };
        // A page fetched from storage may be unformatted (never written);
        // give it a proper header so later updates are well-formed.
        if !page.is_formatted() {
            page.set_id(id);
        }
        let cell = Arc::new(FrameCell::new(page, flags));
        shard.map.write().insert(id, Arc::clone(&cell));
        core.lru.insert_mru(id);
        self.resident.inc();
        Ok(cell)
    }

    fn make_room(&self, sidx: usize, core: &mut ShardCore) -> TierResult<()> {
        while self.shards[sidx].map.read().len() >= self.shards[sidx].capacity {
            self.evict_from(sidx, core)?;
        }
        Ok(())
    }

    fn evict_from(&self, sidx: usize, core: &mut ShardCore) -> TierResult<Option<PageId>> {
        let shard = &self.shards[sidx];
        // Pick the victim. In lock-light mode the LRU tail is only an
        // admission order, so sweep it with second chances for frames whose
        // reference bit readers set; bound the sweep to one full rotation so
        // hammered shards still make progress.
        let mut sweep = core.lru.len();
        let victim = loop {
            let Some(candidate) = core.lru.pop_lru() else {
                return Ok(None);
            };
            if self.lock_light && sweep > 0 {
                let referenced = shard
                    .map
                    .read()
                    .get(&candidate)
                    .is_some_and(|c| c.referenced.swap(false, Ordering::Relaxed));
                if referenced {
                    core.lru.insert_mru(candidate);
                    self.stats.ref_rescues.inc();
                    sweep -= 1;
                    continue;
                }
            }
            break candidate;
        };
        let cell = shard
            .map
            .write()
            .remove(&victim)
            .expect("lru and map in sync");
        // The exclusive latch waits out in-flight readers; `evicted` then
        // turns away optimistic readers that already hold the cell.
        let page = cell.page.write();
        cell.evicted.store(true, Ordering::Release);
        self.resident.sub(1);
        let flags = cell.flags.load();
        self.stats.evictions.inc();
        if flags.needs_writeback() {
            self.stats.dirty_evictions.inc();
        }
        // Offer the tier a pull source over the *other* shards so a batching
        // cache (GSC) can top its write group up with more cold dirty pages.
        // The source excludes this shard (its structural mutex is held) and
        // only try_locks the rest, so the lock graph stays acyclic.
        let mut victims = PoolVictims {
            pool: self,
            exclude: sidx,
        };
        self.lower.write_back_with(
            &page,
            flags.dirty,
            flags.fdirty,
            WriteBackReason::Eviction,
            &mut victims,
        )?;
        Ok(Some(victim))
    }
}

/// The pool's [`VictimPull`] implementation handed to the lower tier during
/// evictions (see [`BufferPool::evict_from`]).
struct PoolVictims<'a, L: LowerTier> {
    pool: &'a BufferPool<L>,
    exclude: usize,
}

impl<L: LowerTier> VictimPull for PoolVictims<'_, L> {
    fn pull(&mut self, filter: &dyn Fn(PageId, Lsn) -> bool) -> Option<(Page, bool, bool)> {
        self.pool.pull_dirty_victim(self.exclude, filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::DirectDiskTier;
    use face_pagestore::{InMemoryPageStore, PageStore};
    use std::sync::Arc;

    /// Single-shard pool: exact global LRU, as the original pool had.
    fn pool(capacity: usize) -> (BufferPool<DirectDiskTier>, Arc<InMemoryPageStore>) {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        (BufferPool::with_shards(capacity, 1, tier), store)
    }

    fn sharded_pool(
        capacity: usize,
        shards: usize,
    ) -> (BufferPool<DirectDiskTier>, Arc<InMemoryPageStore>) {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        (BufferPool::with_shards(capacity, shards, tier), store)
    }

    fn lock_light_pool(
        capacity: usize,
        shards: usize,
    ) -> (BufferPool<DirectDiskTier>, Arc<InMemoryPageStore>) {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        (
            BufferPool::with_shards(capacity, shards, tier).lock_light_reads(true),
            store,
        )
    }

    #[test]
    fn allocate_update_read_round_trip() {
        let (pool, _store) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update(id, Lsn(10), |p| p.write_body(0, b"hello"))
            .unwrap();
        let val = pool.read(id, |p| p.read_body(0, 5).to_vec()).unwrap();
        assert_eq!(val, b"hello");
        let flags = pool.flags(id).unwrap();
        assert!(flags.dirty && flags.fdirty);
        // LSN stamped.
        let lsn = pool.read(id, |p| p.lsn()).unwrap();
        assert_eq!(lsn, Lsn(10));
    }

    #[test]
    fn older_lsn_does_not_regress_page_lsn() {
        let (pool, _) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update(id, Lsn(10), |_| ()).unwrap();
        pool.update(id, Lsn(5), |_| ()).unwrap();
        assert_eq!(pool.read(id, |p| p.lsn()).unwrap(), Lsn(10));
    }

    #[test]
    fn update_with_leaves_lsn_to_the_closure() {
        let (pool, _) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update_with(id, |p| {
            p.write_body(0, b"latched");
            p.set_lsn(Lsn(33));
        })
        .unwrap();
        assert_eq!(pool.read(id, |p| p.lsn()).unwrap(), Lsn(33));
        assert!(pool.flags(id).unwrap().dirty);
    }

    #[test]
    fn eviction_writes_dirty_pages_to_lower_tier() {
        let (pool, store) = pool(2);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"a")).unwrap();
        pool.update(b, Lsn(2), |p| p.write_body(0, b"b")).unwrap();
        // Third page forces the eviction of `a` (LRU).
        let c = pool.allocate_page(0).unwrap();
        assert!(!pool.contains(a));
        assert!(pool.contains(b));
        assert!(pool.contains(c));
        // `a` must now be readable from the store with its update.
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert_eq!(out.read_body(0, 1), b"a");
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn hits_and_misses_counted() {
        let (pool, _) = pool(2);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        let _c = pool.allocate_page(0).unwrap(); // evicts a
        pool.read(b, |_| ()).unwrap(); // hit
        pool.read(a, |_| ()).unwrap(); // miss -> disk fetch
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.disk_fetches, 1);
        assert_eq!(s.flash_hits, 0);
        assert!(s.hit_ratio() > 0.0);
        pool.reset_stats();
        assert_eq!(pool.stats().accesses, 0);
    }

    #[test]
    fn lru_order_follows_access_recency() {
        let (pool, _) = pool(3);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        let c = pool.allocate_page(0).unwrap();
        pool.read(a, |_| ()).unwrap();
        assert_eq!(pool.resident_lru_order(), vec![b, c, a]);
    }

    #[test]
    fn flush_all_dirty_cleans_frames_without_evicting() {
        let (pool, store) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"ck")).unwrap();
        let written = pool.flush_all_dirty().unwrap();
        // Both pages were dirty (freshly allocated counts as dirty).
        assert_eq!(written, 2);
        assert!(pool.contains(a) && pool.contains(b));
        // DirectDiskTier reports on_disk, so frames are now clean.
        assert!(!pool.flags(a).unwrap().dirty);
        assert!(!pool.flags(b).unwrap().dirty);
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert_eq!(out.read_body(0, 2), b"ck");
        // A second checkpoint has nothing to write.
        assert_eq!(pool.flush_all_dirty().unwrap(), 0);
    }

    #[test]
    fn crash_drops_unflushed_updates() {
        let (pool, store) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"lost"))
            .unwrap();
        pool.crash();
        assert!(pool.is_empty());
        // The store never saw the update.
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert!(!out.is_formatted());
    }

    #[test]
    fn explicit_evict_lru_frame() {
        let (pool, _) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        assert_eq!(pool.evict_lru_frame().unwrap(), Some(a));
        assert_eq!(pool.evict_lru_frame().unwrap(), Some(b));
        assert_eq!(pool.evict_lru_frame().unwrap(), None);
    }

    #[test]
    fn capacity_never_exceeded() {
        let (pool, _) = pool(3);
        for _ in 0..20 {
            pool.allocate_page(0).unwrap();
        }
        assert!(pool.len() <= 3);
        assert_eq!(pool.capacity(), 3);
    }

    #[test]
    fn sharded_capacity_never_exceeded() {
        let (pool, _) = sharded_pool(13, 4);
        assert_eq!(pool.shard_count(), 4);
        for _ in 0..100 {
            pool.allocate_page(0).unwrap();
        }
        assert!(pool.len() <= 13, "len {} over capacity", pool.len());
        assert_eq!(pool.capacity(), 13);
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let (pool, _) = sharded_pool(3, 64);
        assert_eq!(pool.shard_count(), 3);
        // Per-shard capacities sum to the total.
        for _ in 0..10 {
            pool.allocate_page(0).unwrap();
        }
        assert!(pool.len() <= 3);
    }

    #[test]
    fn resident_mirror_matches_shards_at_quiesce() {
        let (pool, _) = lock_light_pool(64, 8);
        let ids: Vec<PageId> = (0..48).map(|_| pool.allocate_page(0).unwrap()).collect();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let pool = &pool;
                let ids = ids.clone();
                s.spawn(move || {
                    for (i, id) in ids.iter().enumerate() {
                        if i % 8 == t {
                            pool.update(*id, Lsn(1), |_| ()).unwrap();
                        } else {
                            pool.read(*id, |_| ()).unwrap();
                        }
                    }
                });
            }
        });
        // At quiesce, the lock-free mirror equals the per-shard truth.
        let swept: usize = pool.resident_by_shard().iter().sum();
        assert_eq!(pool.len(), swept);
        assert!(pool.len() <= pool.capacity());
    }

    #[test]
    fn lock_light_hits_round_trip_and_count() {
        let (pool, _) = lock_light_pool(8, 2);
        assert!(pool.is_lock_light());
        let id = pool.allocate_page(0).unwrap();
        pool.update(id, Lsn(3), |p| p.write_body(0, b"optimistic"))
            .unwrap();
        for _ in 0..10 {
            let val = pool.read(id, |p| p.read_body(0, 10).to_vec()).unwrap();
            assert_eq!(val, b"optimistic");
        }
        let s = pool.stats();
        assert_eq!(s.hits, 11, "update hit + 10 read hits");
        assert_eq!(s.read_retries, 0, "nothing evicted under us");
    }

    #[test]
    fn second_chance_spares_referenced_frames() {
        // Capacity 2, one shard, lock-light: hits do not reorder the LRU
        // list, but the reference bit must rescue the hot page from
        // eviction (the clock sweep standing in for recency).
        let (pool, _) = lock_light_pool(2, 1);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        pool.read(a, |_| ()).unwrap(); // sets a's reference bit
        let c = pool.allocate_page(0).unwrap();
        assert!(pool.contains(a), "referenced frame was evicted");
        assert!(!pool.contains(b), "unreferenced frame should have gone");
        assert!(pool.contains(c));
        assert!(pool.stats().ref_rescues > 0);
    }

    #[test]
    fn lock_light_concurrent_reads_and_updates_do_not_lose_pages() {
        use std::sync::Arc;
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        let pool = Arc::new(BufferPool::with_shards(24, 4, tier).lock_light_reads(true));
        // Fewer frames than pages: constant eviction under the readers.
        let ids: Vec<PageId> = (0..32).map(|_| pool.allocate_page(0).unwrap()).collect();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let pool = Arc::clone(&pool);
                let ids = ids.clone();
                s.spawn(move || {
                    for round in 0..50u64 {
                        for (i, id) in ids.iter().enumerate() {
                            if i % 8 == t {
                                // Each thread owns a disjoint slice of pages.
                                pool.update(*id, Lsn(round + 1), |p| {
                                    p.write_body(0, &(t as u64 * 1000 + round).to_le_bytes())
                                })
                                .unwrap();
                            } else {
                                pool.read(*id, |p| p.lsn()).unwrap();
                            }
                        }
                    }
                });
            }
        });
        // Every owned page carries its owner's final round value.
        for (i, id) in ids.iter().enumerate() {
            let t = i % 8;
            let val = pool
                .read(*id, |p| {
                    u64::from_le_bytes(p.read_body(0, 8).try_into().unwrap())
                })
                .unwrap();
            assert_eq!(val, t as u64 * 1000 + 49, "page {i} lost an update");
        }
        let stats = pool.stats();
        assert_eq!(stats.accesses, 8 * 50 * 32 + 32);
        assert_eq!(stats.hits + stats.misses, stats.accesses);
    }

    #[test]
    fn concurrent_reads_and_updates_do_not_lose_pages() {
        use std::sync::Arc;
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        let pool = Arc::new(BufferPool::with_shards(64, 8, tier));
        // Pre-allocate pages single-threaded (allocation order is global).
        let ids: Vec<PageId> = (0..32).map(|_| pool.allocate_page(0).unwrap()).collect();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let pool = Arc::clone(&pool);
                let ids = ids.clone();
                s.spawn(move || {
                    for round in 0..50u64 {
                        for (i, id) in ids.iter().enumerate() {
                            if i % 8 == t {
                                // Each thread owns a disjoint slice of pages.
                                pool.update(*id, Lsn(round + 1), |p| {
                                    p.write_body(0, &(t as u64 * 1000 + round).to_le_bytes())
                                })
                                .unwrap();
                            } else {
                                pool.read(*id, |p| p.lsn()).unwrap();
                            }
                        }
                    }
                });
            }
        });
        // Every owned page carries its owner's final round value.
        for (i, id) in ids.iter().enumerate() {
            let t = i % 8;
            let val = pool
                .read(*id, |p| {
                    u64::from_le_bytes(p.read_body(0, 8).try_into().unwrap())
                })
                .unwrap();
            assert_eq!(val, t as u64 * 1000 + 49, "page {i} lost an update");
        }
        let stats = pool.stats();
        assert_eq!(stats.accesses, 8 * 50 * 32 + 32);
    }

    #[test]
    fn eviction_offers_dirty_victims_from_other_shards() {
        use crate::tier::{LowerTier, VictimPull, WriteBackOutcome};
        use std::sync::Mutex as StdMutex;

        /// A tier that pulls every dirty victim it is offered, recording them.
        struct PullingTier {
            inner: DirectDiskTier,
            pulled: StdMutex<Vec<PageId>>,
        }
        impl LowerTier for PullingTier {
            fn fetch(&self, id: PageId, buf: &mut Page) -> TierResult<crate::tier::FetchOutcome> {
                self.inner.fetch(id, buf)
            }
            fn write_back(
                &self,
                page: &Page,
                dirty: bool,
                fdirty: bool,
                reason: WriteBackReason,
            ) -> TierResult<WriteBackOutcome> {
                self.inner.write_back(page, dirty, fdirty, reason)
            }
            fn write_back_with(
                &self,
                page: &Page,
                dirty: bool,
                fdirty: bool,
                reason: WriteBackReason,
                victims: &mut dyn VictimPull,
            ) -> TierResult<WriteBackOutcome> {
                while let Some((extra, d, f)) = victims.pull(&|_, _| true) {
                    self.pulled.lock().unwrap().push(extra.id());
                    self.inner.write_back(&extra, d, f, reason)?;
                }
                self.inner.write_back(page, dirty, fdirty, reason)
            }
            fn allocate(&self, file: u32) -> TierResult<PageId> {
                self.inner.allocate(file)
            }
            fn sync(&self) -> TierResult<()> {
                self.inner.sync()
            }
        }

        let store = Arc::new(InMemoryPageStore::new());
        let tier = PullingTier {
            inner: DirectDiskTier::new(store.clone() as Arc<dyn PageStore>),
            pulled: StdMutex::new(Vec::new()),
        };
        let pool = BufferPool::with_shards(8, 4, tier);
        // Fill the pool with dirty pages, then overflow it: the eviction
        // offers cold dirty frames from the other shards to the tier.
        let ids: Vec<PageId> = (0..8).map(|_| pool.allocate_page(0).unwrap()).collect();
        for id in &ids {
            pool.update(*id, Lsn(1), |p| p.write_body(0, b"d")).unwrap();
        }
        for _ in 0..4 {
            pool.allocate_page(0).unwrap();
        }
        let pulled = pool.lower().pulled.lock().unwrap().clone();
        assert!(!pulled.is_empty(), "no victims were pulled across shards");
        // Pulled frames really left the pool, and their data reached disk.
        for id in &pulled {
            assert!(!pool.contains(*id));
            let mut buf = Page::zeroed();
            store.read_page(*id, &mut buf).unwrap();
            assert!(buf.is_formatted(), "pulled dirty page lost");
        }
        assert!(pool.len() <= pool.capacity());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store as Arc<dyn PageStore>);
        let _ = BufferPool::new(0, tier);
    }
}
