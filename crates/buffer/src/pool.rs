//! The data-carrying DRAM buffer pool.

use std::collections::HashMap;

use face_pagestore::{Lsn, Page, PageId};

use crate::flags::FrameFlags;
use crate::lru::LruList;
use crate::tier::{FetchSource, LowerTier, TierResult, WriteBackReason};

/// Counters describing buffer pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Logical page accesses (reads + updates).
    pub accesses: u64,
    /// Accesses satisfied from a DRAM frame.
    pub hits: u64,
    /// Accesses that had to fetch from the lower tier.
    pub misses: u64,
    /// Misses satisfied by the flash cache.
    pub flash_hits: u64,
    /// Misses satisfied by the disk.
    pub disk_fetches: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evicted frames that were dirty or fdirty (needed write-back).
    pub dirty_evictions: u64,
    /// Pages flushed by checkpoints.
    pub checkpoint_writes: u64,
}

impl BufferStats {
    /// DRAM hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Share of DRAM misses that were served by the flash cache — the
    /// paper's Table 3(a) metric.
    pub fn flash_hit_ratio(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.flash_hits as f64 / self.misses as f64
        }
    }
}

struct Frame {
    page: Page,
    flags: FrameFlags,
}

/// A fixed-capacity DRAM buffer pool with LRU replacement over a pluggable
/// [`LowerTier`].
///
/// The pool owns page data; callers access pages through closures so that a
/// page reference can never outlive its residency.
pub struct BufferPool<L: LowerTier> {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    lru: LruList<PageId>,
    lower: L,
    stats: BufferStats,
}

impl<L: LowerTier> BufferPool<L> {
    /// A pool holding at most `capacity` pages, over `lower`.
    pub fn new(capacity: usize, lower: L) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            capacity,
            frames: HashMap::with_capacity(capacity),
            lru: LruList::with_capacity(capacity),
            lower,
            stats: BufferStats::default(),
        }
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: PageId) -> bool {
        self.frames.contains_key(&id)
    }

    /// The flags of a resident page.
    pub fn flags(&self, id: PageId) -> Option<FrameFlags> {
        self.frames.get(&id).map(|f| f.flags)
    }

    /// Activity counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Reset activity counters (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// Shared access to the lower tier.
    pub fn lower(&self) -> &L {
        &self.lower
    }

    /// Mutable access to the lower tier.
    pub fn lower_mut(&mut self) -> &mut L {
        &mut self.lower
    }

    /// Read access to a page: fetches it from the lower tier on a miss and
    /// passes a shared reference to `f`.
    pub fn read<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> TierResult<R> {
        self.ensure_resident(id)?;
        let frame = self.frames.get(&id).expect("just made resident");
        Ok(f(&frame.page))
    }

    /// Update a page: fetches on miss, applies `f`, stamps `lsn` into the
    /// page header if it is newer, and raises the dirty/fdirty flags.
    ///
    /// Write-ahead discipline is the caller's responsibility: append the log
    /// record (obtaining `lsn`) *before* calling `update`.
    pub fn update<R>(
        &mut self,
        id: PageId,
        lsn: Lsn,
        f: impl FnOnce(&mut Page) -> R,
    ) -> TierResult<R> {
        self.ensure_resident(id)?;
        let frame = self.frames.get_mut(&id).expect("just made resident");
        let r = f(&mut frame.page);
        if lsn > frame.page.lsn() {
            frame.page.set_lsn(lsn);
        }
        frame.flags.mark_updated();
        Ok(r)
    }

    /// Allocate a new page on the backing store and install it resident and
    /// dirty (it exists nowhere below the buffer yet).
    pub fn allocate_page(&mut self, file: u32) -> TierResult<PageId> {
        let id = self.lower.allocate(file)?;
        self.make_room()?;
        let mut flags = FrameFlags::fetched_from_disk();
        flags.mark_updated();
        self.frames.insert(
            id,
            Frame {
                page: Page::new(id),
                flags,
            },
        );
        self.lru.insert_mru(id);
        Ok(id)
    }

    /// Evict the least-recently-used frame, handing it to the lower tier.
    /// Returns the evicted page id, or `None` if the pool is empty.
    ///
    /// This is also the hook Group Second Chance uses to "pull pages from the
    /// LRU tail of the DRAM buffer" to fill a flash write batch (paper §3.3).
    pub fn evict_lru_frame(&mut self) -> TierResult<Option<PageId>> {
        let Some(victim) = self.lru.pop_lru() else {
            return Ok(None);
        };
        let frame = self.frames.remove(&victim).expect("lru and map in sync");
        self.stats.evictions += 1;
        if frame.flags.needs_writeback() {
            self.stats.dirty_evictions += 1;
        }
        self.lower.write_back(
            &frame.page,
            frame.flags.dirty,
            frame.flags.fdirty,
            WriteBackReason::Eviction,
        )?;
        Ok(Some(victim))
    }

    /// Checkpoint support: hand every dirty page to the lower tier (which
    /// will direct it to the flash cache under FaCE, or to disk otherwise)
    /// and update the resident flags according to where the copy landed.
    /// Returns the number of pages written.
    pub fn flush_all_dirty(&mut self) -> TierResult<usize> {
        // Collect ids first to avoid holding a borrow across write_back.
        let dirty_ids: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.flags.needs_writeback())
            .map(|(id, _)| *id)
            .collect();
        let mut written = 0;
        for id in dirty_ids {
            let frame = self.frames.get(&id).expect("still resident");
            let outcome = self.lower.write_back(
                &frame.page,
                frame.flags.dirty,
                frame.flags.fdirty,
                WriteBackReason::Checkpoint,
            )?;
            let frame = self.frames.get_mut(&id).expect("still resident");
            if outcome.on_disk {
                frame.flags.written_to_disk();
            }
            if outcome.in_flash {
                frame.flags.staged_to_flash();
            }
            written += 1;
            self.stats.checkpoint_writes += 1;
        }
        self.lower.sync()?;
        Ok(written)
    }

    /// Drop every frame without writing anything back. This models a crash:
    /// the DRAM buffer's contents are lost.
    pub fn crash(&mut self) {
        self.frames.clear();
        self.lru.clear();
    }

    /// The resident pages from least- to most-recently used (for inspection
    /// and tests).
    pub fn resident_lru_order(&self) -> Vec<PageId> {
        self.lru.iter_lru_to_mru().copied().collect()
    }

    fn ensure_resident(&mut self, id: PageId) -> TierResult<()> {
        self.stats.accesses += 1;
        if self.frames.contains_key(&id) {
            self.stats.hits += 1;
            self.lru.touch(&id);
            return Ok(());
        }
        self.stats.misses += 1;
        self.make_room()?;
        let mut page = Page::zeroed();
        let outcome = self.lower.fetch(id, &mut page)?;
        match outcome.source {
            FetchSource::FlashCache => self.stats.flash_hits += 1,
            FetchSource::Disk => self.stats.disk_fetches += 1,
        }
        let flags = match outcome.source {
            FetchSource::FlashCache => FrameFlags::fetched_from_flash(outcome.dirty),
            FetchSource::Disk => FrameFlags::fetched_from_disk(),
        };
        // A page fetched from storage may be unformatted (never written);
        // give it a proper header so later updates are well-formed.
        if !page.is_formatted() {
            page.set_id(id);
        }
        self.frames.insert(id, Frame { page, flags });
        self.lru.insert_mru(id);
        Ok(())
    }

    fn make_room(&mut self) -> TierResult<()> {
        while self.frames.len() >= self.capacity {
            self.evict_lru_frame()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::DirectDiskTier;
    use face_pagestore::{InMemoryPageStore, PageStore};
    use std::sync::Arc;

    fn pool(capacity: usize) -> (BufferPool<DirectDiskTier>, Arc<InMemoryPageStore>) {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        (BufferPool::new(capacity, tier), store)
    }

    #[test]
    fn allocate_update_read_round_trip() {
        let (mut pool, _store) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update(id, Lsn(10), |p| p.write_body(0, b"hello"))
            .unwrap();
        let val = pool.read(id, |p| p.read_body(0, 5).to_vec()).unwrap();
        assert_eq!(val, b"hello");
        let flags = pool.flags(id).unwrap();
        assert!(flags.dirty && flags.fdirty);
        // LSN stamped.
        let lsn = pool.read(id, |p| p.lsn()).unwrap();
        assert_eq!(lsn, Lsn(10));
    }

    #[test]
    fn older_lsn_does_not_regress_page_lsn() {
        let (mut pool, _) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update(id, Lsn(10), |_| ()).unwrap();
        pool.update(id, Lsn(5), |_| ()).unwrap();
        assert_eq!(pool.read(id, |p| p.lsn()).unwrap(), Lsn(10));
    }

    #[test]
    fn eviction_writes_dirty_pages_to_lower_tier() {
        let (mut pool, store) = pool(2);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"a")).unwrap();
        pool.update(b, Lsn(2), |p| p.write_body(0, b"b")).unwrap();
        // Third page forces the eviction of `a` (LRU).
        let c = pool.allocate_page(0).unwrap();
        assert!(!pool.contains(a));
        assert!(pool.contains(b));
        assert!(pool.contains(c));
        // `a` must now be readable from the store with its update.
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert_eq!(out.read_body(0, 1), b"a");
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn hits_and_misses_counted() {
        let (mut pool, _) = pool(2);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        let _c = pool.allocate_page(0).unwrap(); // evicts a
        pool.read(b, |_| ()).unwrap(); // hit
        pool.read(a, |_| ()).unwrap(); // miss -> disk fetch
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.disk_fetches, 1);
        assert_eq!(s.flash_hits, 0);
        assert!(s.hit_ratio() > 0.0);
        pool.reset_stats();
        assert_eq!(pool.stats().accesses, 0);
    }

    #[test]
    fn lru_order_follows_access_recency() {
        let (mut pool, _) = pool(3);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        let c = pool.allocate_page(0).unwrap();
        pool.read(a, |_| ()).unwrap();
        assert_eq!(pool.resident_lru_order(), vec![b, c, a]);
    }

    #[test]
    fn flush_all_dirty_cleans_frames_without_evicting() {
        let (mut pool, store) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"ck")).unwrap();
        let written = pool.flush_all_dirty().unwrap();
        // Both pages were dirty (freshly allocated counts as dirty).
        assert_eq!(written, 2);
        assert!(pool.contains(a) && pool.contains(b));
        // DirectDiskTier reports on_disk, so frames are now clean.
        assert!(!pool.flags(a).unwrap().dirty);
        assert!(!pool.flags(b).unwrap().dirty);
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert_eq!(out.read_body(0, 2), b"ck");
        // A second checkpoint has nothing to write.
        assert_eq!(pool.flush_all_dirty().unwrap(), 0);
    }

    #[test]
    fn crash_drops_unflushed_updates() {
        let (mut pool, store) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"lost"))
            .unwrap();
        pool.crash();
        assert!(pool.is_empty());
        // The store never saw the update.
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert!(!out.is_formatted());
    }

    #[test]
    fn explicit_evict_lru_frame() {
        let (mut pool, _) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        assert_eq!(pool.evict_lru_frame().unwrap(), Some(a));
        assert_eq!(pool.evict_lru_frame().unwrap(), Some(b));
        assert_eq!(pool.evict_lru_frame().unwrap(), None);
    }

    #[test]
    fn capacity_never_exceeded() {
        let (mut pool, _) = pool(3);
        for _ in 0..20 {
            pool.allocate_page(0).unwrap();
        }
        assert!(pool.len() <= 3);
        assert_eq!(pool.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store as Arc<dyn PageStore>);
        let _ = BufferPool::new(0, tier);
    }
}
