//! The data-carrying DRAM buffer pool, sharded for concurrent callers.
//!
//! The pool hashes page ids over `N` independent shards — the same lock
//! striping PostgreSQL applies to its buffer table — so threads touching
//! different pages proceed in parallel. Each shard owns a fixed slice of the
//! frame budget, its own LRU list and its own mutex; the lower tier is shared
//! and must itself be concurrency-safe ([`LowerTier`] takes `&self`).
//!
//! Lock order: a thread holds at most one shard lock at a time, and may call
//! into the lower tier (which takes its own internal locks) while holding it.
//! The lower tier never calls back into the pool, so the order
//! `shard → tier-internals` is acyclic.

use std::collections::HashMap;

use face_pagestore::{Counter, Lsn, Page, PageId};
use parking_lot::Mutex;

use crate::flags::FrameFlags;
use crate::lru::LruList;
use crate::tier::{FetchSource, LowerTier, TierResult, VictimPull, WriteBackReason};

/// How many LRU-tail frames a shard is probed for when the lower tier pulls
/// extra dirty victims (Group Second Chance batch top-up). Bounds the time
/// spent under an opportunistically `try_lock`ed shard.
const VICTIM_PROBE_DEPTH: usize = 8;

/// Default shard count for pools that do not specify one.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Counters describing buffer pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Logical page accesses (reads + updates).
    pub accesses: u64,
    /// Accesses satisfied from a DRAM frame.
    pub hits: u64,
    /// Accesses that had to fetch from the lower tier.
    pub misses: u64,
    /// Misses satisfied by the flash cache.
    pub flash_hits: u64,
    /// Misses satisfied by the disk.
    pub disk_fetches: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evicted frames that were dirty or fdirty (needed write-back).
    pub dirty_evictions: u64,
    /// Pages flushed by checkpoints.
    pub checkpoint_writes: u64,
}

impl BufferStats {
    /// DRAM hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Share of DRAM misses that were served by the flash cache — the
    /// paper's Table 3(a) metric.
    pub fn flash_hit_ratio(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.flash_hits as f64 / self.misses as f64
        }
    }
}

/// Atomic twin of [`BufferStats`]: bumped from any shard without extra locks.
#[derive(Debug, Default)]
struct AtomicBufferStats {
    accesses: Counter,
    hits: Counter,
    misses: Counter,
    flash_hits: Counter,
    disk_fetches: Counter,
    evictions: Counter,
    dirty_evictions: Counter,
    checkpoint_writes: Counter,
}

impl AtomicBufferStats {
    fn snapshot(&self) -> BufferStats {
        BufferStats {
            accesses: self.accesses.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            flash_hits: self.flash_hits.get(),
            disk_fetches: self.disk_fetches.get(),
            evictions: self.evictions.get(),
            dirty_evictions: self.dirty_evictions.get(),
            checkpoint_writes: self.checkpoint_writes.get(),
        }
    }

    fn reset(&self) {
        self.accesses.set(0);
        self.hits.set(0);
        self.misses.set(0);
        self.flash_hits.set(0);
        self.disk_fetches.set(0);
        self.evictions.set(0);
        self.dirty_evictions.set(0);
        self.checkpoint_writes.set(0);
    }
}

struct Frame {
    page: Page,
    flags: FrameFlags,
}

/// One lock-striped slice of the pool: a frame table and its LRU list.
struct Shard {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    lru: LruList<PageId>,
}

/// A fixed-capacity, sharded DRAM buffer pool with per-shard LRU replacement
/// over a pluggable [`LowerTier`].
///
/// All operations take `&self`; the pool is `Send + Sync` whenever its lower
/// tier is. The pool owns page data; callers access pages through closures so
/// that a page reference can never outlive its residency (or its shard lock).
pub struct BufferPool<L: LowerTier> {
    capacity: usize,
    shards: Vec<Mutex<Shard>>,
    lower: L,
    stats: AtomicBufferStats,
}

impl<L: LowerTier> BufferPool<L> {
    /// A pool holding at most `capacity` pages over `lower`, striped over
    /// [`DEFAULT_POOL_SHARDS`] shards (fewer if the capacity is smaller).
    pub fn new(capacity: usize, lower: L) -> Self {
        Self::with_shards(capacity, DEFAULT_POOL_SHARDS, lower)
    }

    /// A pool striped over exactly `shards` shards (clamped to `capacity` so
    /// every shard owns at least one frame). `shards == 1` reproduces the
    /// classic single-LRU pool, which some tests rely on for exact eviction
    /// order.
    pub fn with_shards(capacity: usize, shards: usize, lower: L) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let rem = capacity % shards;
        let shards = (0..shards)
            .map(|i| {
                let cap = base + usize::from(i < rem);
                Mutex::new(Shard {
                    capacity: cap,
                    frames: HashMap::with_capacity(cap),
                    lru: LruList::with_capacity(cap),
                })
            })
            .collect();
        Self {
            capacity,
            shards,
            lower,
            stats: AtomicBufferStats::default(),
        }
    }

    /// Pool capacity in frames (summed over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: PageId) -> bool {
        self.shard(id).lock().frames.contains_key(&id)
    }

    /// The flags of a resident page.
    pub fn flags(&self, id: PageId) -> Option<FrameFlags> {
        self.shard(id).lock().frames.get(&id).map(|f| f.flags)
    }

    /// Activity counters (a point-in-time snapshot of the atomic tallies).
    pub fn stats(&self) -> BufferStats {
        self.stats.snapshot()
    }

    /// Reset activity counters (e.g. after warm-up).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Shared access to the lower tier.
    pub fn lower(&self) -> &L {
        &self.lower
    }

    fn shard(&self, id: PageId) -> &Mutex<Shard> {
        &self.shards[id.stripe_of(self.shards.len())]
    }

    /// Read access to a page: fetches it from the lower tier on a miss and
    /// passes a shared reference to `f`. The shard lock is held for the
    /// duration of `f`.
    pub fn read<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> TierResult<R> {
        let mut shard = self.shard(id).lock();
        self.ensure_resident(&mut shard, id)?;
        let frame = shard.frames.get(&id).expect("just made resident");
        Ok(f(&frame.page))
    }

    /// Update a page: fetches on miss, applies `f`, stamps `lsn` into the
    /// page header if it is newer, and raises the dirty/fdirty flags.
    ///
    /// Write-ahead discipline is the caller's responsibility: append the log
    /// record (obtaining `lsn`) *before* calling `update`, or use
    /// [`BufferPool::update_with`] to append while the page latch is held.
    pub fn update<R>(&self, id: PageId, lsn: Lsn, f: impl FnOnce(&mut Page) -> R) -> TierResult<R> {
        self.update_with(id, |page| {
            let r = f(page);
            if lsn > page.lsn() {
                page.set_lsn(lsn);
            }
            r
        })
    }

    /// Update a page under its shard lock (the page latch), leaving LSN
    /// stamping to the closure. This is the concurrent engine's write path:
    /// appending the WAL record and applying the change inside one critical
    /// section keeps the log order consistent with the page's update order,
    /// which redo correctness requires once multiple threads write.
    pub fn update_with<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> TierResult<R> {
        let mut shard = self.shard(id).lock();
        self.ensure_resident(&mut shard, id)?;
        let frame = shard.frames.get_mut(&id).expect("just made resident");
        let r = f(&mut frame.page);
        frame.flags.mark_updated();
        Ok(r)
    }

    /// Allocate a new page on the backing store and install it resident and
    /// dirty (it exists nowhere below the buffer yet).
    pub fn allocate_page(&self, file: u32) -> TierResult<PageId> {
        let id = self.lower.allocate(file)?;
        let mut shard = self.shard(id).lock();
        self.make_room(id.stripe_of(self.shards.len()), &mut shard)?;
        let mut flags = FrameFlags::fetched_from_disk();
        flags.mark_updated();
        shard.frames.insert(
            id,
            Frame {
                page: Page::new(id),
                flags,
            },
        );
        shard.lru.insert_mru(id);
        Ok(id)
    }

    /// Evict the least-recently-used frame of the *fullest* shard, handing it
    /// to the lower tier. Returns the evicted page id, or `None` if the pool
    /// is empty.
    ///
    /// With one shard this is the exact global LRU victim; with several it is
    /// the LRU victim of the most loaded stripe — the hook Group Second
    /// Chance uses to "pull pages from the LRU tail of the DRAM buffer"
    /// (paper §3.3) only needs *a* cold dirty page, not *the* coldest.
    pub fn evict_lru_frame(&self) -> TierResult<Option<PageId>> {
        let fullest = self
            .shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.lock().frames.len())
            .map(|(i, _)| i)
            .expect("at least one shard");
        let mut shard = self.shards[fullest].lock();
        self.evict_from(fullest, &mut shard)
    }

    /// Opportunistically remove one cold dirty frame matching `filter` from
    /// a shard other than `exclude`, probing each shard's LRU tail at most
    /// [`VICTIM_PROBE_DEPTH`] deep. Only `try_lock` is used, so this can run
    /// while the caller holds other locks (it never blocks on a buffer
    /// shard); shards currently contended are simply skipped. Returns the
    /// frame's page and flags; the frame leaves the pool.
    fn pull_dirty_victim(
        &self,
        exclude: usize,
        filter: &dyn Fn(PageId, Lsn) -> bool,
    ) -> Option<(Page, bool, bool)> {
        for (i, shard) in self.shards.iter().enumerate() {
            if i == exclude {
                continue;
            }
            let Some(mut shard) = shard.try_lock() else {
                continue;
            };
            let candidate = shard
                .lru
                .iter_lru_to_mru()
                .take(VICTIM_PROBE_DEPTH)
                .copied()
                .find(|id| {
                    shard
                        .frames
                        .get(id)
                        .is_some_and(|f| f.flags.dirty && filter(*id, f.page.lsn()))
                });
            if let Some(id) = candidate {
                let frame = shard.frames.remove(&id).expect("candidate is resident");
                shard.lru.remove(&id);
                self.stats.evictions.inc();
                self.stats.dirty_evictions.inc();
                return Some((frame.page, frame.flags.dirty, frame.flags.fdirty));
            }
        }
        None
    }

    /// Checkpoint support: hand every dirty page to the lower tier (which
    /// will direct it to the flash cache under FaCE, or to disk otherwise)
    /// and update the resident flags according to where the copy landed.
    /// Returns the number of pages written.
    ///
    /// Shards are flushed one at a time; updates racing ahead of the
    /// checkpoint simply leave their pages dirty for the next one (a fuzzy
    /// checkpoint, as in the paper's host system).
    pub fn flush_all_dirty(&self) -> TierResult<usize> {
        let mut written = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dirty_ids: Vec<PageId> = shard
                .frames
                .iter()
                .filter(|(_, f)| f.flags.needs_writeback())
                .map(|(id, _)| *id)
                .collect();
            for id in dirty_ids {
                let frame = shard.frames.get(&id).expect("still resident");
                let outcome = self.lower.write_back(
                    &frame.page,
                    frame.flags.dirty,
                    frame.flags.fdirty,
                    WriteBackReason::Checkpoint,
                )?;
                let frame = shard.frames.get_mut(&id).expect("still resident");
                if outcome.on_disk {
                    frame.flags.written_to_disk();
                }
                if outcome.in_flash {
                    frame.flags.staged_to_flash();
                }
                written += 1;
                self.stats.checkpoint_writes.inc();
            }
        }
        self.lower.sync()?;
        Ok(written)
    }

    /// Drop every frame without writing anything back. This models a crash:
    /// the DRAM buffer's contents are lost. Callers must have quiesced
    /// concurrent operations (a real crash does so by definition).
    pub fn crash(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.clear();
            shard.lru.clear();
        }
    }

    /// The resident pages from least- to most-recently used within each
    /// shard, concatenated in shard order (for inspection and tests; exact
    /// global order only with one shard).
    pub fn resident_lru_order(&self) -> Vec<PageId> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().lru.iter_lru_to_mru().copied().collect::<Vec<_>>())
            .collect()
    }

    fn evict_from(&self, shard_index: usize, shard: &mut Shard) -> TierResult<Option<PageId>> {
        let Some(victim) = shard.lru.pop_lru() else {
            return Ok(None);
        };
        let frame = shard.frames.remove(&victim).expect("lru and map in sync");
        self.stats.evictions.inc();
        if frame.flags.needs_writeback() {
            self.stats.dirty_evictions.inc();
        }
        // Offer the tier a pull source over the *other* shards so a batching
        // cache (GSC) can top its write group up with more cold dirty pages.
        // The source excludes this shard (its lock is held) and only
        // try_locks the rest, so the lock graph stays acyclic.
        let mut victims = PoolVictims {
            pool: self,
            exclude: shard_index,
        };
        self.lower.write_back_with(
            &frame.page,
            frame.flags.dirty,
            frame.flags.fdirty,
            WriteBackReason::Eviction,
            &mut victims,
        )?;
        Ok(Some(victim))
    }

    fn ensure_resident(&self, shard: &mut Shard, id: PageId) -> TierResult<()> {
        self.stats.accesses.inc();
        if shard.frames.contains_key(&id) {
            self.stats.hits.inc();
            shard.lru.touch(&id);
            return Ok(());
        }
        self.stats.misses.inc();
        self.make_room(id.stripe_of(self.shards.len()), shard)?;
        let mut page = Page::zeroed();
        let outcome = self.lower.fetch(id, &mut page)?;
        match outcome.source {
            FetchSource::FlashCache => self.stats.flash_hits.inc(),
            FetchSource::Disk => self.stats.disk_fetches.inc(),
        }
        let flags = match outcome.source {
            FetchSource::FlashCache => FrameFlags::fetched_from_flash(outcome.dirty),
            FetchSource::Disk => FrameFlags::fetched_from_disk(),
        };
        // A page fetched from storage may be unformatted (never written);
        // give it a proper header so later updates are well-formed.
        if !page.is_formatted() {
            page.set_id(id);
        }
        shard.frames.insert(id, Frame { page, flags });
        shard.lru.insert_mru(id);
        Ok(())
    }

    fn make_room(&self, shard_index: usize, shard: &mut Shard) -> TierResult<()> {
        while shard.frames.len() >= shard.capacity {
            self.evict_from(shard_index, shard)?;
        }
        Ok(())
    }
}

/// The pool's [`VictimPull`] implementation handed to the lower tier during
/// evictions (see [`BufferPool::evict_from`]).
struct PoolVictims<'a, L: LowerTier> {
    pool: &'a BufferPool<L>,
    exclude: usize,
}

impl<L: LowerTier> VictimPull for PoolVictims<'_, L> {
    fn pull(&mut self, filter: &dyn Fn(PageId, Lsn) -> bool) -> Option<(Page, bool, bool)> {
        self.pool.pull_dirty_victim(self.exclude, filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::DirectDiskTier;
    use face_pagestore::{InMemoryPageStore, PageStore};
    use std::sync::Arc;

    /// Single-shard pool: exact global LRU, as the original pool had.
    fn pool(capacity: usize) -> (BufferPool<DirectDiskTier>, Arc<InMemoryPageStore>) {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        (BufferPool::with_shards(capacity, 1, tier), store)
    }

    fn sharded_pool(
        capacity: usize,
        shards: usize,
    ) -> (BufferPool<DirectDiskTier>, Arc<InMemoryPageStore>) {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        (BufferPool::with_shards(capacity, shards, tier), store)
    }

    #[test]
    fn allocate_update_read_round_trip() {
        let (pool, _store) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update(id, Lsn(10), |p| p.write_body(0, b"hello"))
            .unwrap();
        let val = pool.read(id, |p| p.read_body(0, 5).to_vec()).unwrap();
        assert_eq!(val, b"hello");
        let flags = pool.flags(id).unwrap();
        assert!(flags.dirty && flags.fdirty);
        // LSN stamped.
        let lsn = pool.read(id, |p| p.lsn()).unwrap();
        assert_eq!(lsn, Lsn(10));
    }

    #[test]
    fn older_lsn_does_not_regress_page_lsn() {
        let (pool, _) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update(id, Lsn(10), |_| ()).unwrap();
        pool.update(id, Lsn(5), |_| ()).unwrap();
        assert_eq!(pool.read(id, |p| p.lsn()).unwrap(), Lsn(10));
    }

    #[test]
    fn update_with_leaves_lsn_to_the_closure() {
        let (pool, _) = pool(4);
        let id = pool.allocate_page(0).unwrap();
        pool.update_with(id, |p| {
            p.write_body(0, b"latched");
            p.set_lsn(Lsn(33));
        })
        .unwrap();
        assert_eq!(pool.read(id, |p| p.lsn()).unwrap(), Lsn(33));
        assert!(pool.flags(id).unwrap().dirty);
    }

    #[test]
    fn eviction_writes_dirty_pages_to_lower_tier() {
        let (pool, store) = pool(2);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"a")).unwrap();
        pool.update(b, Lsn(2), |p| p.write_body(0, b"b")).unwrap();
        // Third page forces the eviction of `a` (LRU).
        let c = pool.allocate_page(0).unwrap();
        assert!(!pool.contains(a));
        assert!(pool.contains(b));
        assert!(pool.contains(c));
        // `a` must now be readable from the store with its update.
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert_eq!(out.read_body(0, 1), b"a");
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn hits_and_misses_counted() {
        let (pool, _) = pool(2);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        let _c = pool.allocate_page(0).unwrap(); // evicts a
        pool.read(b, |_| ()).unwrap(); // hit
        pool.read(a, |_| ()).unwrap(); // miss -> disk fetch
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.disk_fetches, 1);
        assert_eq!(s.flash_hits, 0);
        assert!(s.hit_ratio() > 0.0);
        pool.reset_stats();
        assert_eq!(pool.stats().accesses, 0);
    }

    #[test]
    fn lru_order_follows_access_recency() {
        let (pool, _) = pool(3);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        let c = pool.allocate_page(0).unwrap();
        pool.read(a, |_| ()).unwrap();
        assert_eq!(pool.resident_lru_order(), vec![b, c, a]);
    }

    #[test]
    fn flush_all_dirty_cleans_frames_without_evicting() {
        let (pool, store) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"ck")).unwrap();
        let written = pool.flush_all_dirty().unwrap();
        // Both pages were dirty (freshly allocated counts as dirty).
        assert_eq!(written, 2);
        assert!(pool.contains(a) && pool.contains(b));
        // DirectDiskTier reports on_disk, so frames are now clean.
        assert!(!pool.flags(a).unwrap().dirty);
        assert!(!pool.flags(b).unwrap().dirty);
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert_eq!(out.read_body(0, 2), b"ck");
        // A second checkpoint has nothing to write.
        assert_eq!(pool.flush_all_dirty().unwrap(), 0);
    }

    #[test]
    fn crash_drops_unflushed_updates() {
        let (pool, store) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        pool.update(a, Lsn(1), |p| p.write_body(0, b"lost"))
            .unwrap();
        pool.crash();
        assert!(pool.is_empty());
        // The store never saw the update.
        let mut out = Page::zeroed();
        store.read_page(a, &mut out).unwrap();
        assert!(!out.is_formatted());
    }

    #[test]
    fn explicit_evict_lru_frame() {
        let (pool, _) = pool(4);
        let a = pool.allocate_page(0).unwrap();
        let b = pool.allocate_page(0).unwrap();
        assert_eq!(pool.evict_lru_frame().unwrap(), Some(a));
        assert_eq!(pool.evict_lru_frame().unwrap(), Some(b));
        assert_eq!(pool.evict_lru_frame().unwrap(), None);
    }

    #[test]
    fn capacity_never_exceeded() {
        let (pool, _) = pool(3);
        for _ in 0..20 {
            pool.allocate_page(0).unwrap();
        }
        assert!(pool.len() <= 3);
        assert_eq!(pool.capacity(), 3);
    }

    #[test]
    fn sharded_capacity_never_exceeded() {
        let (pool, _) = sharded_pool(13, 4);
        assert_eq!(pool.shard_count(), 4);
        for _ in 0..100 {
            pool.allocate_page(0).unwrap();
        }
        assert!(pool.len() <= 13, "len {} over capacity", pool.len());
        assert_eq!(pool.capacity(), 13);
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let (pool, _) = sharded_pool(3, 64);
        assert_eq!(pool.shard_count(), 3);
        // Per-shard capacities sum to the total.
        for _ in 0..10 {
            pool.allocate_page(0).unwrap();
        }
        assert!(pool.len() <= 3);
    }

    #[test]
    fn concurrent_reads_and_updates_do_not_lose_pages() {
        use std::sync::Arc;
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store.clone() as Arc<dyn PageStore>);
        let pool = Arc::new(BufferPool::with_shards(64, 8, tier));
        // Pre-allocate pages single-threaded (allocation order is global).
        let ids: Vec<PageId> = (0..32).map(|_| pool.allocate_page(0).unwrap()).collect();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let pool = Arc::clone(&pool);
                let ids = ids.clone();
                s.spawn(move || {
                    for round in 0..50u64 {
                        for (i, id) in ids.iter().enumerate() {
                            if i % 8 == t {
                                // Each thread owns a disjoint slice of pages.
                                pool.update(*id, Lsn(round + 1), |p| {
                                    p.write_body(0, &(t as u64 * 1000 + round).to_le_bytes())
                                })
                                .unwrap();
                            } else {
                                pool.read(*id, |p| p.lsn()).unwrap();
                            }
                        }
                    }
                });
            }
        });
        // Every owned page carries its owner's final round value.
        for (i, id) in ids.iter().enumerate() {
            let t = i % 8;
            let val = pool
                .read(*id, |p| {
                    u64::from_le_bytes(p.read_body(0, 8).try_into().unwrap())
                })
                .unwrap();
            assert_eq!(val, t as u64 * 1000 + 49, "page {i} lost an update");
        }
        let stats = pool.stats();
        assert_eq!(stats.accesses, 8 * 50 * 32 + 32);
    }

    #[test]
    fn eviction_offers_dirty_victims_from_other_shards() {
        use crate::tier::{LowerTier, VictimPull, WriteBackOutcome};
        use std::sync::Mutex as StdMutex;

        /// A tier that pulls every dirty victim it is offered, recording them.
        struct PullingTier {
            inner: DirectDiskTier,
            pulled: StdMutex<Vec<PageId>>,
        }
        impl LowerTier for PullingTier {
            fn fetch(&self, id: PageId, buf: &mut Page) -> TierResult<crate::tier::FetchOutcome> {
                self.inner.fetch(id, buf)
            }
            fn write_back(
                &self,
                page: &Page,
                dirty: bool,
                fdirty: bool,
                reason: WriteBackReason,
            ) -> TierResult<WriteBackOutcome> {
                self.inner.write_back(page, dirty, fdirty, reason)
            }
            fn write_back_with(
                &self,
                page: &Page,
                dirty: bool,
                fdirty: bool,
                reason: WriteBackReason,
                victims: &mut dyn VictimPull,
            ) -> TierResult<WriteBackOutcome> {
                while let Some((extra, d, f)) = victims.pull(&|_, _| true) {
                    self.pulled.lock().unwrap().push(extra.id());
                    self.inner.write_back(&extra, d, f, reason)?;
                }
                self.inner.write_back(page, dirty, fdirty, reason)
            }
            fn allocate(&self, file: u32) -> TierResult<PageId> {
                self.inner.allocate(file)
            }
            fn sync(&self) -> TierResult<()> {
                self.inner.sync()
            }
        }

        let store = Arc::new(InMemoryPageStore::new());
        let tier = PullingTier {
            inner: DirectDiskTier::new(store.clone() as Arc<dyn PageStore>),
            pulled: StdMutex::new(Vec::new()),
        };
        let pool = BufferPool::with_shards(8, 4, tier);
        // Fill the pool with dirty pages, then overflow it: the eviction
        // offers cold dirty frames from the other shards to the tier.
        let ids: Vec<PageId> = (0..8).map(|_| pool.allocate_page(0).unwrap()).collect();
        for id in &ids {
            pool.update(*id, Lsn(1), |p| p.write_body(0, b"d")).unwrap();
        }
        for _ in 0..4 {
            pool.allocate_page(0).unwrap();
        }
        let pulled = pool.lower().pulled.lock().unwrap().clone();
        assert!(!pulled.is_empty(), "no victims were pulled across shards");
        // Pulled frames really left the pool, and their data reached disk.
        for id in &pulled {
            assert!(!pool.contains(*id));
            let mut buf = Page::zeroed();
            store.read_page(*id, &mut buf).unwrap();
            assert!(buf.is_formatted(), "pulled dirty page lost");
        }
        assert!(pool.len() <= pool.capacity());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let store = Arc::new(InMemoryPageStore::new());
        let tier = DirectDiskTier::new(store as Arc<dyn PageStore>);
        let _ = BufferPool::new(0, tier);
    }
}
