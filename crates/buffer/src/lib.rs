//! # face-buffer — the DRAM buffer pool
//!
//! The first-level cache of the storage hierarchy. The FaCE design hinges on
//! two properties of this layer (paper §3):
//!
//! 1. Pages enter the flash cache **on exit** from the DRAM buffer — never on
//!    entry — because a flash copy is useless while the DRAM copy exists.
//!    The buffer pool therefore hands every evicted page to a pluggable
//!    [`LowerTier`] (the flash cache + disk, or disk alone).
//! 2. Each DRAM frame carries two flags: `dirty` (newer than the disk copy)
//!    and `fdirty` (newer than the flash-cache copy). The pair drives the
//!    conditional/unconditional enqueue logic of mvFIFO (paper Algorithm 1).
//!
//! The crate provides:
//! * [`LruList`] — the recency list used for DRAM replacement (the paper uses
//!   PostgreSQL's buffer replacement; LRU is the reference policy its
//!   analysis assumes).
//! * [`BufferPool`] — a data-carrying pool over any [`LowerTier`], used by the
//!   functional engine, the examples and the recovery tests.
//! * [`BufferSim`] — a metadata-only twin of the pool (same replacement and
//!   flag logic, no page bodies), used by the performance experiments where
//!   the database is far larger than what is worth materialising.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flags;
pub mod lru;
pub mod pool;
pub mod sim;
pub mod tier;

pub use flags::{AtomicFrameFlags, FrameFlags};
pub use lru::LruList;
pub use pool::{BufferPool, BufferStats, DEFAULT_POOL_SHARDS};
pub use sim::{BufferSim, EvictedMeta, SimAccess};
pub use tier::{
    DirectDiskTier, FetchOutcome, FetchSource, LowerTier, NoVictims, TierError, TierResult,
    VictimPull, WriteBackOutcome, WriteBackReason,
};
