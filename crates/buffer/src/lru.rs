//! A generic LRU recency list.
//!
//! Implemented as a doubly-linked list over a slab of nodes plus a hash map
//! from key to node index, giving O(1) touch / insert / remove / evict. Used
//! by the DRAM buffer pool and by the LC baseline's LRU-2 approximation.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// An LRU list of keys. The *front* is the most recently used end; the *back*
/// is the least recently used end (the eviction candidate).
#[derive(Debug, Clone)]
pub struct LruList<K> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    map: HashMap<K, usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Copy> Default for LruList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Copy> LruList<K> {
    /// An empty list.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// An empty list with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            map: HashMap::with_capacity(cap),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of keys in the list.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Insert `key` as most recently used. If already present, it is moved to
    /// the front. Returns `true` if the key was newly inserted.
    pub fn insert_mru(&mut self, key: K) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        true
    }

    /// Mark `key` as most recently used. Returns `false` if it is not present.
    pub fn touch(&mut self, key: &K) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Remove a specific key. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        if let Some(idx) = self.map.remove(key) {
            self.unlink(idx);
            self.free.push(idx);
            true
        } else {
            false
        }
    }

    /// The least recently used key, if any (not removed).
    pub fn peek_lru(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.nodes[self.tail].key)
        }
    }

    /// The most recently used key, if any.
    pub fn peek_mru(&self) -> Option<&K> {
        if self.head == NIL {
            None
        } else {
            Some(&self.nodes[self.head].key)
        }
    }

    /// Remove and return the least recently used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.tail == NIL {
            return None;
        }
        let key = self.nodes[self.tail].key;
        self.remove(&key);
        Some(key)
    }

    /// Iterate keys from least recently used to most recently used.
    pub fn iter_lru_to_mru(&self) -> impl Iterator<Item = &K> {
        LruIter {
            list: self,
            cur: self.tail,
            forward: false,
        }
    }

    /// Iterate keys from most recently used to least recently used.
    pub fn iter_mru_to_lru(&self) -> impl Iterator<Item = &K> {
        LruIter {
            list: self,
            cur: self.head,
            forward: true,
        }
    }

    /// Remove every key.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

struct LruIter<'a, K> {
    list: &'a LruList<K>,
    cur: usize,
    forward: bool,
}

impl<'a, K> Iterator for LruIter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur];
        self.cur = if self.forward { node.next } else { node.prev };
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_and_evict_in_lru_order() {
        let mut l = LruList::new();
        assert!(l.is_empty());
        assert!(l.insert_mru(1));
        assert!(l.insert_mru(2));
        assert!(l.insert_mru(3));
        assert_eq!(l.len(), 3);
        assert_eq!(l.peek_lru(), Some(&1));
        assert_eq!(l.peek_mru(), Some(&3));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), None);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new();
        for k in 1..=4 {
            l.insert_mru(k);
        }
        assert!(l.touch(&1));
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.peek_mru(), Some(&1));
        assert!(!l.touch(&99));
    }

    #[test]
    fn reinsert_is_a_touch() {
        let mut l = LruList::new();
        l.insert_mru(1);
        l.insert_mru(2);
        assert!(!l.insert_mru(1));
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_lru(), Some(2));
    }

    #[test]
    fn remove_arbitrary_keys() {
        let mut l = LruList::new();
        for k in 1..=5 {
            l.insert_mru(k);
        }
        assert!(l.remove(&3));
        assert!(!l.remove(&3));
        assert!(!l.contains(&3));
        assert_eq!(l.len(), 4);
        let order: Vec<_> = l.iter_lru_to_mru().copied().collect();
        assert_eq!(order, vec![1, 2, 4, 5]);
        let rev: Vec<_> = l.iter_mru_to_lru().copied().collect();
        assert_eq!(rev, vec![5, 4, 2, 1]);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut l = LruList::new();
        for k in 0..100 {
            l.insert_mru(k);
        }
        for k in 0..100 {
            l.remove(&k);
        }
        for k in 100..200 {
            l.insert_mru(k);
        }
        // The node slab should not have grown past its initial 100 entries
        // by more than a small amount (free-list reuse).
        assert!(l.nodes.len() <= 101, "slab grew to {}", l.nodes.len());
        assert_eq!(l.len(), 100);
    }

    #[test]
    fn clear_empties_list() {
        let mut l = LruList::new();
        l.insert_mru(1);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.peek_lru(), None);
        assert_eq!(l.peek_mru(), None);
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut l = LruList::with_capacity(16);
        l.insert_mru(7u64);
        assert!(l.contains(&7));
    }

    proptest! {
        /// The LRU list behaves identically to a naive Vec-based model under
        /// an arbitrary sequence of operations.
        #[test]
        fn matches_naive_model(ops in prop::collection::vec((0u8..4, 0u16..32), 0..400)) {
            let mut lru = LruList::new();
            let mut model: Vec<u16> = Vec::new(); // front = MRU

            for (op, key) in ops {
                match op {
                    0 => {
                        // insert_mru
                        lru.insert_mru(key);
                        model.retain(|&k| k != key);
                        model.insert(0, key);
                    }
                    1 => {
                        // touch
                        let expected = model.contains(&key);
                        prop_assert_eq!(lru.touch(&key), expected);
                        if expected {
                            model.retain(|&k| k != key);
                            model.insert(0, key);
                        }
                    }
                    2 => {
                        // remove
                        let expected = model.contains(&key);
                        prop_assert_eq!(lru.remove(&key), expected);
                        model.retain(|&k| k != key);
                    }
                    _ => {
                        // pop_lru
                        prop_assert_eq!(lru.pop_lru(), model.pop());
                    }
                }
                prop_assert_eq!(lru.len(), model.len());
                prop_assert_eq!(lru.peek_lru().copied(), model.last().copied());
                prop_assert_eq!(lru.peek_mru().copied(), model.first().copied());
            }
            let order: Vec<u16> = lru.iter_mru_to_lru().copied().collect();
            prop_assert_eq!(order, model);
        }
    }
}
