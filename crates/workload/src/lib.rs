//! # face-workload — deterministic workloads and tail-latency measurement
//!
//! The measurement substrate for the FaCE reproduction's benchmarks: every
//! driver in `face-tpcc` and every gate in `face-bench` builds its traffic
//! and its latency numbers from this crate.
//!
//! Real cache workloads are not uniform TPC-C means: they are **zipfian**
//! (a small hot set takes most of the traffic), **scan-polluted** (periodic
//! sequential sweeps try to flush the cache) and **bursty** (arrival rate
//! switches between idle and saturating). And caches are judged on **p99**,
//! not throughput averages. This crate supplies both halves:
//!
//! - **Generation** — [`Zipfian`] (Gray et al. inverse-CDF skew with hot-key
//!   rotation), [`WorkloadGen`] (transaction-shaped get/read-modify-write
//!   mixes), [`ScanPlan`] (sweeps sized to flush a cache of known size) and
//!   [`Arrival`]/[`Pacer`] (paced, single-burst and periodic on/off arrival
//!   schedules).
//! - **Measurement** — [`LatencyHistogram`], a log-bucketed (HDR-style)
//!   nanosecond histogram each worker thread owns privately and the driver
//!   merges after `join` (lock-free by construction), summarised as flat
//!   p50/p95/p99/p999 [`LatencySummary`] rows for the committed
//!   `BENCH_*.json` files.
//!
//! Everything is seed-deterministic and dependency-free: the same
//! `(seed, config)` pair replays the same key sequence on any thread, which
//! is what makes cross-arm benchmark comparisons (unfiltered vs ghost-gated
//! vs S3-FIFO) apples-to-apples.
//!
//! ```
//! use face_workload::{LatencyHistogram, MixConfig, WorkloadGen};
//! use std::time::Duration;
//!
//! // Per-thread: generate transactions, record each one's latency.
//! let mut gen = WorkloadGen::new(MixConfig::read_heavy(4096), 1);
//! let mut hist = LatencyHistogram::new();
//! let mut txn = Vec::new();
//! for _ in 0..100 {
//!     gen.next_txn(&mut txn);
//!     // ... run `txn` against the engine ...
//!     hist.record(Duration::from_micros(120 + txn.len() as u64));
//! }
//! // Driver-side: merge per-thread histograms after join, then summarise.
//! let mut merged = LatencyHistogram::new();
//! merged.merge(&hist);
//! assert_eq!(merged.summary().count, 100);
//! ```

mod arrival;
mod hist;
mod mix;
mod zipf;

pub use arrival::{Arrival, Pacer};
pub use hist::{LatencyHistogram, LatencySummary};
pub use mix::{MixConfig, Op, ScanPlan, WorkloadGen};
pub use zipf::{Zipfian, ZipfianConfig};
