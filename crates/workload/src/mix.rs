//! Transaction-shaped operation mixes over a zipfian key stream, plus
//! cache-flushing scan plans.
//!
//! [`WorkloadGen`] deals transactions: each is `ops_per_txn` operations whose
//! keys come from one [`Zipfian`] stream and whose read/read-modify-write
//! split comes from an independent splitmix64 coin stream (so changing the
//! mix ratio never perturbs *which* keys are touched). Hot-set drift is
//! modelled by rotating the zipfian mapping every `rotate_every_txns`
//! transactions.
//!
//! [`ScanPlan`] describes a sequential sweep over a contiguous key range —
//! the classic cache-polluting full-table scan. [`ScanPlan::sized_to_flush`]
//! sizes the sweep so its distinct pages outnumber the flash cache, which is
//! exactly the traffic a scan-resistant admission policy must shrug off.

use crate::zipf::{splitmix64, Zipfian, ZipfianConfig};

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read of `key`.
    Get { key: u64 },
    /// Read `key`, then write it back (dirties the page).
    ReadModifyWrite { key: u64 },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Get { key } | Op::ReadModifyWrite { key } => key,
        }
    }
}

/// Configuration for [`WorkloadGen`].
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// Distinct keys in the workload's active set.
    pub keys: u64,
    /// Zipfian skew exponent in `[0, 1)`; 0 = uniform.
    pub theta: f64,
    /// Percent of operations that are read-modify-write (0–100).
    pub rmw_pct: u32,
    /// Operations per generated transaction.
    pub ops_per_txn: u32,
    /// Rotate the hot set every this many transactions (0 = never).
    pub rotate_every_txns: u64,
    /// Keys to shift the hot set by on each rotation.
    pub rotate_step: u64,
}

impl MixConfig {
    /// A read-heavy default: 90 % reads over a zipfian-0.99 key stream,
    /// 8 ops per transaction, no hot-set rotation.
    pub fn read_heavy(keys: u64) -> Self {
        Self {
            keys,
            theta: 0.99,
            rmw_pct: 10,
            ops_per_txn: 8,
            rotate_every_txns: 0,
            rotate_step: 0,
        }
    }
}

/// Deterministic transaction generator: zipfian keys + RMW coin.
///
/// ```
/// use face_workload::{MixConfig, Op, WorkloadGen};
///
/// let mut gen = WorkloadGen::new(MixConfig::read_heavy(1024), 7);
/// let mut txn = Vec::new();
/// gen.next_txn(&mut txn);
/// assert_eq!(txn.len(), 8);
/// assert!(txn.iter().all(|op| op.key() < 1024));
/// // Same seed, same config => identical stream.
/// let mut replay = WorkloadGen::new(MixConfig::read_heavy(1024), 7);
/// let mut txn2 = Vec::new();
/// replay.next_txn(&mut txn2);
/// assert_eq!(txn, txn2);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    cfg: MixConfig,
    zipf: Zipfian,
    coin: u64,
    txns_dealt: u64,
}

impl WorkloadGen {
    /// Build a generator for `cfg`, seeded so distinct seeds give
    /// independent streams (give thread `t` seed `base + t`).
    pub fn new(cfg: MixConfig, seed: u64) -> Self {
        let zipf = Zipfian::new(
            ZipfianConfig {
                items: cfg.keys,
                theta: cfg.theta,
            },
            seed,
        );
        Self {
            cfg,
            zipf,
            coin: seed ^ 0xC0FF_EE00_D15C_0B41,
            txns_dealt: 0,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &MixConfig {
        &self.cfg
    }

    /// Transactions dealt so far.
    pub fn txns_dealt(&self) -> u64 {
        self.txns_dealt
    }

    /// Fill `out` with the next transaction's operations (clears it first).
    pub fn next_txn(&mut self, out: &mut Vec<Op>) {
        out.clear();
        if self.cfg.rotate_every_txns > 0
            && self.txns_dealt > 0
            && self.txns_dealt.is_multiple_of(self.cfg.rotate_every_txns)
        {
            self.zipf.rotate(self.cfg.rotate_step);
        }
        for _ in 0..self.cfg.ops_per_txn {
            let key = self.zipf.next_key();
            let rmw = (splitmix64(&mut self.coin) % 100) < self.cfg.rmw_pct as u64;
            out.push(if rmw {
                Op::ReadModifyWrite { key }
            } else {
                Op::Get { key }
            });
        }
        self.txns_dealt += 1;
    }
}

/// A sequential sweep over `[first_key, first_key + key_span)`.
#[derive(Debug, Clone, Copy)]
pub struct ScanPlan {
    /// First key of the sweep.
    pub first_key: u64,
    /// Number of consecutive keys to touch.
    pub key_span: u64,
}

impl ScanPlan {
    /// Size a scan to flush a flash cache of `cache_pages` pages: the sweep
    /// covers `margin_pct` percent more distinct pages than the cache holds,
    /// assuming `keys_per_page` keys hash to each page on average.
    pub fn sized_to_flush(
        first_key: u64,
        cache_pages: u64,
        keys_per_page: u64,
        margin_pct: u64,
    ) -> Self {
        let pages = cache_pages + cache_pages * margin_pct / 100;
        Self {
            first_key,
            key_span: pages * keys_per_page.max(1),
        }
    }

    /// The keys of the sweep, in order.
    pub fn keys(&self) -> impl Iterator<Item = u64> {
        self.first_key..self.first_key + self.key_span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_fraction_tracks_config() {
        let cfg = MixConfig {
            keys: 512,
            theta: 0.8,
            rmw_pct: 30,
            ops_per_txn: 4,
            rotate_every_txns: 0,
            rotate_step: 0,
        };
        let mut gen = WorkloadGen::new(cfg, 99);
        let mut txn = Vec::new();
        let mut rmw = 0usize;
        let mut total = 0usize;
        for _ in 0..5_000 {
            gen.next_txn(&mut txn);
            total += txn.len();
            rmw += txn
                .iter()
                .filter(|o| matches!(o, Op::ReadModifyWrite { .. }))
                .count();
        }
        let frac = rmw as f64 / total as f64;
        assert!((frac - 0.30).abs() < 0.03, "rmw fraction {frac}");
    }

    #[test]
    fn rotation_changes_hot_keys_between_epochs() {
        let cfg = MixConfig {
            keys: 100,
            theta: 0.99,
            rmw_pct: 0,
            ops_per_txn: 1,
            rotate_every_txns: 1000,
            rotate_step: 37,
        };
        let mut gen = WorkloadGen::new(cfg, 5);
        let mut txn = Vec::new();
        let mut epoch_mode = Vec::new();
        for _epoch in 0..3 {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..1000 {
                gen.next_txn(&mut txn);
                *counts.entry(txn[0].key()).or_insert(0u64) += 1;
            }
            let mode = counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0;
            epoch_mode.push(mode);
        }
        assert_eq!((epoch_mode[0] + 37) % 100, epoch_mode[1]);
        assert_eq!((epoch_mode[1] + 37) % 100, epoch_mode[2]);
    }

    #[test]
    fn scan_plan_covers_more_pages_than_cache() {
        let plan = ScanPlan::sized_to_flush(5000, 1000, 2, 20);
        assert_eq!(plan.first_key, 5000);
        assert_eq!(plan.key_span, 2400);
        assert_eq!(plan.keys().count(), 2400);
    }
}
