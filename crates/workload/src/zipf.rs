//! Seedable zipfian key-popularity generator with hot-key rotation.
//!
//! Implements the rejection-free inverse-CDF construction of Gray et al.
//! ("Quickly generating billion-record synthetic databases", SIGMOD '94),
//! the same scheme YCSB uses: rank 0 is the most popular item and rank
//! popularity falls off as `1 / rank^theta`. `theta = 0` degenerates to
//! uniform; YCSB's default skew is `theta = 0.99`.
//!
//! The generator carries its own splitmix64 stream, so a `(seed, config)`
//! pair replays bit-identically on any thread — the property the
//! `zipf_props` proptest pins down.
//!
//! **Hot-key rotation**: ranks map to keys through a rotating offset
//! (`key = (rank + rotation) % items`), so [`Zipfian::rotate`] shifts which
//! region of the key space is hot without disturbing the popularity
//! distribution or the random stream. Drivers use this to model hot-set
//! drift mid-run.

/// Configuration for a [`Zipfian`] generator.
#[derive(Debug, Clone, Copy)]
pub struct ZipfianConfig {
    /// Number of distinct items (keys); ranks and keys are `0 .. items`.
    pub items: u64,
    /// Skew exponent in `[0.0, 1.0)`. 0 = uniform, 0.99 = YCSB default.
    pub theta: f64,
}

/// A deterministic zipfian generator over `0 .. items`.
///
/// ```
/// use face_workload::{Zipfian, ZipfianConfig};
///
/// let cfg = ZipfianConfig { items: 1000, theta: 0.99 };
/// let mut a = Zipfian::new(cfg, 42);
/// let mut b = Zipfian::new(cfg, 42);
/// let seq: Vec<u64> = (0..16).map(|_| a.next_key()).collect();
/// assert_eq!(seq, (0..16).map(|_| b.next_key()).collect::<Vec<_>>());
/// assert!(seq.iter().all(|&k| k < 1000));
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    state: u64,
    rotation: u64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // O(n) setup; fine at bench scale (thousands of keys), precomputed once.
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1)
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Zipfian {
    /// Build a generator; `O(items)` one-time zeta computation.
    ///
    /// # Panics
    /// If `items == 0` or `theta` is outside `[0.0, 1.0)`.
    pub fn new(cfg: ZipfianConfig, seed: u64) -> Self {
        assert!(cfg.items > 0, "zipfian over an empty key space");
        assert!(
            (0.0..1.0).contains(&cfg.theta),
            "theta must be in [0, 1), got {}",
            cfg.theta
        );
        let zetan = zeta(cfg.items, cfg.theta);
        let zeta2 = zeta(2.min(cfg.items), cfg.theta);
        let alpha = 1.0 / (1.0 - cfg.theta);
        let eta = (1.0 - (2.0 / cfg.items as f64).powf(1.0 - cfg.theta)) / (1.0 - zeta2 / zetan);
        Self {
            items: cfg.items,
            theta: cfg.theta,
            alpha,
            zetan,
            eta,
            state: seed ^ 0x5ACE_1E55_0F1A_5417,
            rotation: 0,
        }
    }

    /// Number of distinct items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Current rank→key rotation offset.
    pub fn rotation(&self) -> u64 {
        self.rotation
    }

    /// Draw the next popularity *rank*: 0 is hottest, `items - 1` coldest.
    pub fn next_rank(&mut self) -> u64 {
        let u = unit_f64(&mut self.state);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.items >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// Map a rank to a key under the current rotation.
    pub fn key_of(&self, rank: u64) -> u64 {
        (rank + self.rotation) % self.items
    }

    /// Draw the next key (rank drawn zipfian, then rotated).
    pub fn next_key(&mut self) -> u64 {
        let rank = self.next_rank();
        self.key_of(rank)
    }

    /// Shift the hot region by `step` keys (hot-key rotation). Does not
    /// consume randomness, so rotated and unrotated replays stay aligned.
    pub fn rotate(&mut self, step: u64) {
        self.rotation = (self.rotation + step % self.items) % self.items;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_zero_is_uniform() {
        let mut z = Zipfian::new(
            ZipfianConfig {
                items: 100,
                theta: 0.0,
            },
            7,
        );
        let mut counts = [0u64; 100];
        for _ in 0..100_000 {
            counts[z.next_key() as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // each key expects 1000 draws; allow wide tolerance
        assert!(*min > 700 && *max < 1300, "min {min} max {max}");
    }

    #[test]
    fn rank_zero_dominates_under_skew() {
        let mut z = Zipfian::new(
            ZipfianConfig {
                items: 1000,
                theta: 0.99,
            },
            11,
        );
        let mut head = 0u64;
        let draws = 50_000;
        for _ in 0..draws {
            if z.next_rank() == 0 {
                head += 1;
            }
        }
        // P(rank 0) = 1/zeta(1000, 0.99) ~ 0.126
        let frac = head as f64 / draws as f64;
        assert!(frac > 0.09 && frac < 0.17, "rank-0 mass {frac}");
    }

    #[test]
    fn rotation_shifts_keys_not_ranks() {
        let cfg = ZipfianConfig {
            items: 64,
            theta: 0.9,
        };
        let mut a = Zipfian::new(cfg, 3);
        let mut b = Zipfian::new(cfg, 3);
        b.rotate(10);
        for _ in 0..256 {
            let ka = a.next_key();
            let kb = b.next_key();
            assert_eq!((ka + 10) % 64, kb);
        }
    }
}
