//! Log-bucketed latency histogram with lock-free per-thread merge.
//!
//! Each worker thread owns a private [`LatencyHistogram`] and records into it
//! with plain (non-atomic) stores; the driver merges the per-thread
//! histograms after `join`, so no lock or atomic is ever taken on the hot
//! path. Values are recorded in **nanoseconds** and summarised in
//! microseconds.
//!
//! The bucket layout is HDR-style: values below `2^SUB_BITS` get one exact
//! bucket each, and every power-of-two octave above that is split into
//! `2^SUB_BITS` equal sub-buckets, bounding the relative quantisation error
//! at `2^-SUB_BITS` (~3 % for `SUB_BITS = 5`) across the full `u64` range.
//! Percentiles report the *inclusive upper bound* of the bucket they land in,
//! which keeps reported quantiles monotone (p50 ≤ p95 ≤ p99 ≤ p999) by
//! construction — the property `bench_schema_check` asserts on committed
//! benchmark JSON.

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Octaves cover exponents `SUB_BITS ..= 63`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
const BUCKETS: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of nanosecond latencies.
///
/// ```
/// use face_workload::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for us in [100u64, 200, 300, 10_000] {
///     h.record_ns(us * 1_000);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 4);
/// assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.p999_us);
/// assert!(s.p999_us >= 10_000.0);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram. ~15 KiB of flat `u64` counters.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0u64; BUCKETS]),
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn bucket_index(value_ns: u64) -> usize {
        if value_ns < SUB_BUCKETS as u64 {
            value_ns as usize
        } else {
            let exp = 63 - value_ns.leading_zeros();
            let sub = ((value_ns >> (exp - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
            SUB_BUCKETS + (exp - SUB_BITS) as usize * SUB_BUCKETS + sub
        }
    }

    /// Inclusive upper bound (ns) of the values mapped to bucket `idx`.
    fn bucket_upper_ns(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            idx as u64
        } else {
            let oct = (idx - SUB_BUCKETS) / SUB_BUCKETS;
            let sub = ((idx - SUB_BUCKETS) % SUB_BUCKETS) as u64;
            let exp = oct as u32 + SUB_BITS;
            let width = 1u64 << (exp - SUB_BITS);
            (1u64 << exp) + (sub + 1) * width - 1
        }
    }

    /// Record one latency observation, in nanoseconds.
    pub fn record_ns(&mut self, value_ns: u64) {
        self.counts[Self::bucket_index(value_ns)] += 1;
        self.count += 1;
        self.sum_ns += value_ns as u128;
        self.max_ns = self.max_ns.max(value_ns);
    }

    /// Convenience: record a [`std::time::Duration`].
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram into this one (used to merge per-thread
    /// histograms after `join`).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded value, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of recorded values in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the inclusive upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Returns 0 for an empty histogram; the exact
    /// maximum is reported for any quantile landing in the last occupied
    /// bucket's range above `max_ns`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper_ns(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Flat percentile summary in microseconds.
    pub fn summary(&self) -> LatencySummary {
        let us = |ns: u64| ns as f64 / 1_000.0;
        LatencySummary {
            count: self.count,
            mean_us: self.mean_ns() / 1_000.0,
            p50_us: us(self.quantile_ns(0.50)),
            p95_us: us(self.quantile_ns(0.95)),
            p99_us: us(self.quantile_ns(0.99)),
            p999_us: us(self.quantile_ns(0.999)),
            max_us: us(self.max_ns),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Debug doubles as the serialisation surface in this workspace, so
        // render the summary, never the 1920 raw buckets.
        self.summary().fmt(f)
    }
}

/// Flat percentile summary of a [`LatencyHistogram`], in microseconds.
///
/// `Debug`-derives so it can be embedded in serialisable benchmark rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Exact maximum, µs.
    pub max_us: f64,
}

impl LatencySummary {
    /// An all-zero summary (used for windows that saw no transactions).
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean_us: 0.0,
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
            p999_us: 0.0,
            max_us: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_linear_cutoff() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record_ns(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile_ns(1.0), 31);
        assert_eq!(h.quantile_ns(1.0 / 32.0), 0);
    }

    #[test]
    fn relative_error_bounded() {
        for exp in 6..40u32 {
            let v = (1u64 << exp) + (1u64 << (exp - 2));
            let mut h = LatencyHistogram::new();
            h.record_ns(v);
            h.record_ns(u64::MAX / 2); // pin the max far above v's bucket
            let q = h.quantile_ns(0.25);
            assert!(q >= v, "quantile {q} under-reports {v}");
            assert!(
                (q - v) as f64 <= v as f64 * 0.04,
                "quantile {q} too far above {v}"
            );
        }
    }

    #[test]
    fn quantiles_monotone_and_max_exact() {
        let mut h = LatencyHistogram::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..10_000 {
            // xorshift; values spread over ~6 orders of magnitude
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record_ns(x % 5_000_000_000);
        }
        let s = h.summary();
        assert!(s.p50_us <= s.p95_us);
        assert!(s.p95_us <= s.p99_us);
        assert!(s.p99_us <= s.p999_us);
        assert!(s.p999_us <= s.max_us);
        assert_eq!(h.quantile_ns(1.0), h.max_ns());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 997 + 13;
            if i % 2 == 0 {
                a.record_ns(v);
            } else {
                b.record_ns(v);
            }
            all.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(a.quantile_ns(q), all.quantile_ns(q));
        }
    }
}
