//! Arrival schedules: open/closed-loop pacing and on/off bursts.
//!
//! A [`Pacer`] turns an [`Arrival`] schedule into per-transaction pauses.
//! Like `face_engine::latency` (the simulated device service times), this
//! module is an *emulator of elapsed time* and is therefore the one place in
//! `face-workload` allowed to call `thread::sleep` — `face-lint` exempts
//! exactly this file, the same carve-out the device emulators get.
//!
//! Schedules are wall-clock-phase based, not per-thread-counter based: every
//! thread sharing a start instant agrees on when the burst window is open,
//! so an N-thread driver produces one coherent burst rather than N skewed
//! ones.

use std::time::{Duration, Instant};

/// When transactions are released to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Closed loop, no think time: issue as fast as the engine completes.
    Unpaced,
    /// Closed loop with a fixed think time before every transaction.
    Paced {
        /// Pause before each transaction.
        gap: Duration,
    },
    /// One burst: paced at `gap` until `pre` has elapsed, unpaced for the
    /// next `burst`, then paced at `gap` again (the recovery phase).
    SingleBurst {
        /// Paced lead-in length.
        pre: Duration,
        /// Unpaced burst length.
        burst: Duration,
        /// Think time outside the burst window.
        gap: Duration,
    },
    /// Periodic on/off bursts: each period is `on` of unpaced arrivals
    /// followed by `off` of arrivals paced at `gap`.
    OnOff {
        /// Unpaced span of each period.
        on: Duration,
        /// Paced span of each period.
        off: Duration,
        /// Think time during the off span.
        gap: Duration,
    },
}

/// Applies an [`Arrival`] schedule relative to a start instant.
#[derive(Debug, Clone)]
pub struct Pacer {
    schedule: Arrival,
    start: Instant,
}

impl Pacer {
    /// A pacer whose phase 0 is now.
    pub fn new(schedule: Arrival) -> Self {
        Self::started_at(schedule, Instant::now())
    }

    /// A pacer phased against an externally shared start instant (all
    /// threads of a driver should share one so burst windows line up).
    pub fn started_at(schedule: Arrival, start: Instant) -> Self {
        Self { schedule, start }
    }

    /// The schedule this pacer applies.
    pub fn schedule(&self) -> Arrival {
        self.schedule
    }

    /// Time since the shared start instant.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    fn gap_at(&self, elapsed: Duration) -> Option<Duration> {
        match self.schedule {
            Arrival::Unpaced => None,
            Arrival::Paced { gap } => Some(gap),
            Arrival::SingleBurst { pre, burst, gap } => {
                if elapsed >= pre && elapsed < pre + burst {
                    None
                } else {
                    Some(gap)
                }
            }
            Arrival::OnOff { on, off, gap } => {
                let period = (on + off).as_nanos().max(1);
                if elapsed.as_nanos() % period < on.as_nanos() {
                    None
                } else {
                    Some(gap)
                }
            }
        }
    }

    /// Whether `elapsed` falls inside an unpaced burst window.
    pub fn in_burst_at(&self, elapsed: Duration) -> bool {
        matches!(
            self.schedule,
            Arrival::SingleBurst { .. } | Arrival::OnOff { .. }
        ) && self.gap_at(elapsed).is_none()
    }

    /// Whether the pacer is currently inside an unpaced burst window.
    pub fn in_burst(&self) -> bool {
        self.in_burst_at(self.elapsed())
    }

    /// Block for the schedule-appropriate think time before the next
    /// transaction. No-op in unpaced phases.
    pub fn pause(&self) {
        if let Some(gap) = self.gap_at(self.elapsed()) {
            if gap > Duration::ZERO {
                std::thread::sleep(gap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_burst_phases() {
        let p = Pacer::new(Arrival::SingleBurst {
            pre: Duration::from_millis(100),
            burst: Duration::from_millis(50),
            gap: Duration::from_micros(200),
        });
        assert!(!p.in_burst_at(Duration::from_millis(0)));
        assert!(!p.in_burst_at(Duration::from_millis(99)));
        assert!(p.in_burst_at(Duration::from_millis(100)));
        assert!(p.in_burst_at(Duration::from_millis(149)));
        assert!(!p.in_burst_at(Duration::from_millis(150)));
        assert_eq!(
            p.gap_at(Duration::from_millis(10)),
            Some(Duration::from_micros(200))
        );
        assert_eq!(p.gap_at(Duration::from_millis(120)), None);
    }

    #[test]
    fn on_off_is_periodic() {
        let p = Pacer::new(Arrival::OnOff {
            on: Duration::from_millis(10),
            off: Duration::from_millis(30),
            gap: Duration::from_micros(100),
        });
        for period in 0..4u64 {
            let base = Duration::from_millis(40 * period);
            assert!(p.in_burst_at(base + Duration::from_millis(5)));
            assert!(!p.in_burst_at(base + Duration::from_millis(15)));
            assert!(!p.in_burst_at(base + Duration::from_millis(39)));
        }
    }

    #[test]
    fn unpaced_never_bursty_never_gapped() {
        let p = Pacer::new(Arrival::Unpaced);
        assert!(!p.in_burst_at(Duration::from_secs(1)));
        assert_eq!(p.gap_at(Duration::from_secs(1)), None);
        p.pause(); // must not block
    }
}
