//! Property tests for the zipfian generator: distribution sanity (the hot
//! 10 % of keys really absorb the configured share of traffic) and seed
//! determinism across threads (the same `(seed, config)` pair replays the
//! same sequence no matter which thread runs it).

use face_workload::{MixConfig, Op, WorkloadGen, Zipfian, ZipfianConfig};
use proptest::prelude::*;

/// Mass the hot 10 % of ranks must absorb per theta, with slack for
/// sampling noise. For theta=0.99 over ~1000 keys the analytic value is
/// ~0.64; for theta=0.8 it is ~0.47; theta=0.5 gives ~0.30.
fn hot_mass_floor(theta: f64) -> f64 {
    if theta >= 0.95 {
        0.55
    } else if theta >= 0.75 {
        0.40
    } else {
        0.24
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hot 10 % of keys (the rotated rank-0.. region) receive at least the
    /// configured mass, within tolerance, for any seed and supported theta.
    #[test]
    fn hot_ten_percent_receives_configured_mass(
        seed in any::<u64>(),
        theta_idx in 0usize..3,
        items in 500u64..2000,
        rotation in 0u64..5000,
    ) {
        let theta = [0.5, 0.8, 0.99][theta_idx];
        let mut z = Zipfian::new(ZipfianConfig { items, theta }, seed);
        z.rotate(rotation);
        let hot_span = (items / 10).max(1);
        let draws = 20_000u64;
        let mut hot = 0u64;
        for _ in 0..draws {
            let key = z.next_key();
            // The hot region is the rotated image of ranks 0..hot_span.
            let rank_region = (key + items - z.rotation() % items) % items;
            if rank_region < hot_span {
                hot += 1;
            }
        }
        let mass = hot as f64 / draws as f64;
        prop_assert!(
            mass >= hot_mass_floor(theta),
            "theta {} items {} rotation {}: hot mass {} below floor {}",
            theta, items, rotation, mass, hot_mass_floor(theta)
        );
    }

    /// Same seed ⇒ bit-identical rank sequence even when the two replicas
    /// run on different threads.
    #[test]
    fn same_seed_same_sequence_across_threads(
        seed in any::<u64>(),
        items in 2u64..10_000,
        theta_idx in 0usize..4,
    ) {
        let theta = [0.0, 0.5, 0.9, 0.99][theta_idx];
        let cfg = ZipfianConfig { items, theta };
        let worker = move || -> Vec<u64> {
            let mut z = Zipfian::new(cfg, seed);
            (0..512).map(|_| z.next_key()).collect()
        };
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(worker);
            let hb = s.spawn(worker);
            (ha.join().expect("thread a"), hb.join().expect("thread b"))
        });
        prop_assert_eq!(a, b);
    }

    /// The full transaction generator (keys + RMW coin + rotation schedule)
    /// is equally deterministic across threads.
    #[test]
    fn workload_gen_replays_identically_across_threads(
        seed in any::<u64>(),
        keys in 64u64..4096,
        rmw_pct in 0u32..=100,
    ) {
        let cfg = MixConfig {
            keys,
            theta: 0.9,
            rmw_pct,
            ops_per_txn: 6,
            rotate_every_txns: 40,
            rotate_step: 17,
        };
        let worker = move || -> Vec<Op> {
            let mut gen = WorkloadGen::new(cfg, seed);
            let mut txn = Vec::new();
            let mut all = Vec::new();
            for _ in 0..128 {
                gen.next_txn(&mut txn);
                all.extend_from_slice(&txn);
            }
            all
        };
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(worker);
            let hb = s.spawn(worker);
            (ha.join().expect("thread a"), hb.join().expect("thread b"))
        });
        prop_assert_eq!(a, b);
    }
}
