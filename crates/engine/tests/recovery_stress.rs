//! Warm crash-recovery stress tests — the CI `recovery` gate that runs in
//! **release mode** (`cargo test --release -p face-engine --test
//! recovery_stress`).
//!
//! What is pinned down here:
//! * repeated crashes injected between rounds of a concurrent group-commit
//!   loop recover a *warm* flash cache every time, and no recovered flash
//!   slot ever carries a pageLSN beyond the WAL's durable end (the
//!   reconciliation invariant);
//! * the volatile WAL tail really dies with a crash (LSNs rewind to the
//!   durable end) and recovery still restores every committed key;
//! * a cold restart on the same history loses the cache but not the data;
//! * crashes landing *inside the destage pipeline* — group writes enqueued
//!   but not yet on flash, and a batch on flash whose journal seal never
//!   happened — still recover a prefix-consistent cache and every committed
//!   key (PR 3's invariants survive the PR 4 asynchronous pipeline);
//! * recovery itself survives a seeded crash-anywhere schedule: restarts
//!   crashed mid-redo and mid-undo (persisted loser pages included)
//!   converge to the committed state with no loser byte visible.

use std::sync::Arc;
use std::time::Duration;

use face_cache::{CachePolicyKind, FlashStore, GateFlashStore};
use face_engine::config::FlashStoreFactory;
use face_engine::{Database, DeviceLatency, EngineConfig};

const THREADS: u64 = 8;

fn stress_db() -> Arc<Database> {
    Arc::new(
        Database::open(
            EngineConfig::in_memory()
                .buffer_frames(128)
                .buffer_shards(16)
                .table_buckets(2048)
                .flash_cache(CachePolicyKind::FaceGsc, 8192)
                .cache_shards(8),
        )
        .unwrap(),
    )
}

fn key_of(thread: u64, i: u64) -> u64 {
    thread * 1_000_000 + i
}

/// Every flash slot of every shard must satisfy the reconciliation
/// invariant: no recovered page version outruns the durable log.
fn assert_flash_below_durable(db: &Database) {
    let durable = db.wal_durable_lsn();
    for (s, store) in db.flash_stores().iter().enumerate() {
        for slot in 0..store.capacity() {
            if let Some((page, lsn)) = store.slot_header(slot) {
                assert!(
                    lsn <= durable,
                    "shard {s} slot {slot}: page {page} at lsn {lsn:?} beyond durable {durable:?}"
                );
            }
        }
    }
}

#[test]
fn crash_mid_group_commit_loop_recovers_warm_every_iteration() {
    // N iterations of: concurrent group-commit load (small DRAM buffer, so
    // plenty of pages cross into the flash cache) -> crash -> warm restart.
    // Each iteration must recover persistent cache metadata, serve redo
    // mostly from flash once the cache is populated, keep every committed
    // key, and never resurrect a flash page beyond the durable log.
    let db = stress_db();
    let keys_per_thread = 60u64;
    let iterations = 6u64;
    for iter in 0..iterations {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    // Several small transactions per round: commits interleave
                    // across threads, so group commit and the write-ahead
                    // guard both see real contention.
                    for chunk in 0..6u64 {
                        let txn = db.begin();
                        for i in 0..keys_per_thread / 6 {
                            let key = key_of(t, chunk * 10 + i);
                            db.put(txn, key, format!("i{iter}-t{t}-{key}").as_bytes())
                                .unwrap();
                        }
                        db.commit(txn).unwrap();
                    }
                });
            }
        });
        // Take a checkpoint on even iterations so both "fresh WAL tail" and
        // "bounded redo" restarts are exercised.
        if iter % 2 == 0 {
            db.checkpoint().unwrap();
        }
        db.crash();
        let report = db.restart().unwrap();
        assert!(
            report.cache_recovery.survived,
            "iteration {iter}: cache metadata lost"
        );
        assert!(
            report.cache_recovery.entries_restored > 0,
            "iteration {iter}: cache came back empty"
        );
        assert_eq!(
            report.cache_recovery.entries_discarded_beyond_wal, 0,
            "iteration {iter}: the write-ahead guard let a page outrun the log"
        );
        assert_flash_below_durable(&db);
        // Every committed key readable with its last committed value.
        for t in 0..THREADS {
            for chunk in 0..6u64 {
                for i in 0..keys_per_thread / 6 {
                    let key = key_of(t, chunk * 10 + i);
                    assert_eq!(
                        db.get(key).unwrap().as_deref(),
                        Some(format!("i{iter}-t{t}-{key}").as_bytes()),
                        "iteration {iter}: key {key} lost"
                    );
                }
            }
        }
    }
    // Across the whole loop, redo found pages in flash (the warm-restart
    // effect the gate exists to protect).
    assert!(db.buffer_stats().flash_hits > 0);
}

#[test]
fn crash_discards_the_volatile_wal_tail() {
    // A slow log device so the in-flight tail is observable: appends whose
    // force never completed must vanish with the crash, and LSN assignment
    // must rewind to the durable end.
    let db = Arc::new(
        Database::open(
            EngineConfig::in_memory()
                // Large enough that neither wave forces an eviction: the
                // loser's pages must stay purely volatile for this test.
                .buffer_frames(256)
                .table_buckets(512)
                .flash_cache(CachePolicyKind::FaceGsc, 2048)
                .device_latency(DeviceLatency {
                    log_sync: Duration::from_millis(1),
                    ..DeviceLatency::zero()
                }),
        )
        .unwrap(),
    );
    let txn = db.begin();
    for k in 0..40u64 {
        db.put(txn, k, b"committed").unwrap();
    }
    db.commit(txn).unwrap();
    let durable_before = db.wal_durable_lsn();

    // Appended, never forced: a begin + puts without commit.
    let loser = db.begin();
    for k in 100..120u64 {
        db.put(loser, k, b"in flight").unwrap();
    }
    db.crash();
    assert_eq!(
        db.wal_durable_lsn(),
        durable_before,
        "crash must not advance durability"
    );
    let report = db.restart().unwrap();
    assert_eq!(report.durable_lsn, durable_before);
    assert_flash_below_durable(&db);
    for k in 0..40u64 {
        assert_eq!(db.get(k).unwrap().as_deref(), Some(b"committed".as_ref()));
    }
    // The loser's records died in the log buffer; with no eviction of its
    // pages (they fit in DRAM and were dropped), the keys are simply gone.
    for k in 100..120u64 {
        assert_eq!(db.get(k).unwrap(), None, "loser key {k} resurrected");
    }
}

#[test]
fn crash_inside_the_destage_pipeline_recovers_prefix_consistently() {
    // One gated flash store (single cache shard) and a single destage
    // worker: the first group write parks on the closed gate while more
    // groups pile up in the queue. The crash therefore lands with
    //   * one batch in flight at the device (its seal will be discarded —
    //     "flash write done, journal seal pending"), and
    //   * several groups enqueued but never written ("work enqueued, flash
    //     write incomplete").
    // Recovery must keep every committed key and never serve a flash
    // version beyond the durable log.
    let gates: Arc<std::sync::Mutex<Vec<Arc<GateFlashStore>>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let gates_for_factory = Arc::clone(&gates);
    let db = Arc::new(
        Database::open(
            EngineConfig::in_memory()
                .buffer_frames(64)
                .buffer_shards(8)
                .table_buckets(1024)
                .flash_cache(CachePolicyKind::FaceGr, 2048)
                .cache_shards(1)
                .destage_threads(1)
                .destage_queue_depth(1024)
                .flash_store_factory(FlashStoreFactory::new(move |capacity| {
                    let store = Arc::new(GateFlashStore::new(capacity));
                    gates_for_factory.lock().unwrap().push(Arc::clone(&store));
                    store as Arc<dyn FlashStore>
                })),
        )
        .unwrap(),
    );

    // Committed load while the gate is closed: the worker parks on the
    // first batch, later groups queue up. The foreground never blocks on
    // the gate — commits keep flowing, which is itself the acceptance
    // property (no flash batch I/O on the commit path).
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for chunk in 0..5u64 {
                    let txn = db.begin();
                    for i in 0..10u64 {
                        let key = key_of(t, chunk * 10 + i);
                        db.put(txn, key, format!("pipe-{key}").as_bytes()).unwrap();
                    }
                    db.commit(txn).unwrap();
                }
            });
        }
    });
    let stats = db.destage_stats().expect("destager enabled");
    assert!(
        stats.groups_enqueued > stats.groups_completed,
        "test setup: the gate must have parked the pipeline \
         (enqueued {}, completed {})",
        stats.groups_enqueued,
        stats.groups_completed
    );

    // Crash with the pipeline full, then open the gate: the in-flight batch
    // lands on the device post-crash (a write that was racing the failure),
    // but its journal seal is discarded; the queued groups are simply gone.
    db.crash();
    for gate in gates.lock().unwrap().iter() {
        gate.release();
    }
    let report = db.restart().unwrap();
    assert!(report.cache_recovery.survived);
    assert_flash_below_durable(&db);
    let stats = db.destage_stats().unwrap();
    assert!(
        stats.groups_dropped > 0,
        "queued groups died with the crash"
    );
    for t in 0..4u64 {
        for chunk in 0..5u64 {
            for i in 0..10u64 {
                let key = key_of(t, chunk * 10 + i);
                assert_eq!(
                    db.get(key).unwrap().as_deref(),
                    Some(format!("pipe-{key}").as_bytes()),
                    "key {key} lost in the pipeline crash"
                );
            }
        }
    }

    // The reopened pipeline keeps working: more load, another crash (gate
    // now open, so this one lands at arbitrary queue depth), recover again.
    let txn = db.begin();
    for i in 0..50u64 {
        db.put(txn, 900_000 + i, b"post-recovery").unwrap();
    }
    db.commit(txn).unwrap();
    db.crash();
    let report = db.restart().unwrap();
    assert!(report.cache_recovery.survived);
    assert_flash_below_durable(&db);
    for i in 0..50u64 {
        assert_eq!(
            db.get(900_000 + i).unwrap().as_deref(),
            Some(b"post-recovery".as_ref())
        );
    }
}

#[test]
fn pipeline_backpressure_blocks_foreground_without_losing_data() {
    // A depth-1 queue against a gated store: the foreground must hit
    // backpressure (blocking in enqueue — without holding any cache lock),
    // and once the gate opens everything drains and reads back correctly.
    let gates: Arc<std::sync::Mutex<Vec<Arc<GateFlashStore>>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let gates_for_factory = Arc::clone(&gates);
    let db = Arc::new(
        Database::open(
            EngineConfig::in_memory()
                .buffer_frames(32)
                .table_buckets(512)
                .flash_cache(CachePolicyKind::FaceGr, 1024)
                .cache_shards(1)
                .destage_threads(1)
                .destage_queue_depth(1)
                .flash_store_factory(FlashStoreFactory::new(move |capacity| {
                    let store = Arc::new(GateFlashStore::new(capacity));
                    gates_for_factory.lock().unwrap().push(Arc::clone(&store));
                    store as Arc<dyn FlashStore>
                })),
        )
        .unwrap(),
    );
    // Open the gate from a helper thread shortly after the writer starts
    // stalling on the full queue.
    let opener = {
        let gates = Arc::clone(&gates);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            for gate in gates.lock().unwrap().iter() {
                gate.release();
            }
        })
    };
    let txn = db.begin();
    for k in 0..200u64 {
        db.put(txn, k, b"backpressured").unwrap();
    }
    db.commit(txn).unwrap();
    opener.join().unwrap();
    db.drain_destage().unwrap();
    let stats = db.destage_stats().unwrap();
    assert_eq!(stats.groups_enqueued, stats.groups_completed);
    for k in 0..200u64 {
        assert_eq!(
            db.get(k).unwrap().as_deref(),
            Some(b"backpressured".as_ref())
        );
    }
}

#[test]
fn crash_mid_undo_loop_converges_with_persisted_losers() {
    // The crash-anywhere loop over restart *undo*: concurrent committed
    // load, then a wave of loser transactions whose pages are pushed into
    // the flash cache by a checkpoint (so redo alone could never remove
    // them), then a crash. Recovery is crashed again and again at seeded
    // budgets — landing in redo on the early attempts and mid-undo on the
    // later ones — until it completes. Every attempt must leave a state the
    // next one converges from: committed keys intact, no loser byte
    // visible, and the reconciliation invariant holding throughout.
    let db = stress_db();
    let keys_per_thread = 48u64;
    for iter in 0..4u64 {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    let txn = db.begin();
                    for i in 0..keys_per_thread {
                        db.put(txn, key_of(t, i), format!("i{iter}-t{t}-{i}").as_bytes())
                            .unwrap();
                    }
                    db.commit(txn).unwrap();
                });
            }
        });
        // Loser wave: one in-flight transaction per thread, writing a
        // disjoint high key range, never committed.
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    let loser = db.begin();
                    for i in 0..12u64 {
                        db.put(loser, key_of(t, 500_000 + i), b"loser bytes")
                            .unwrap();
                    }
                    // No commit, no abort: in flight at the crash.
                });
            }
        });
        // The checkpoint flushes the losers' dirty pages into the flash
        // cache (WAL-ahead guard forces their records first).
        db.checkpoint().unwrap();
        db.crash();

        // Seeded crash-anywhere schedule: budgets stride differently each
        // iteration, so crash points move through redo into undo.
        let mut budget = iter * 3;
        let stride = 2 * iter + 5;
        let mut crashes = 0u64;
        let report = loop {
            db.arm_restart_crash(budget);
            match db.restart() {
                Ok(report) => break report,
                Err(face_engine::EngineError::Crashed) => {
                    crashes += 1;
                    assert!(
                        crashes < 10_000,
                        "iteration {iter}: recovery never converged"
                    );
                    budget += stride;
                }
                Err(other) => panic!("iteration {iter}: unexpected recovery error {other}"),
            }
        };
        assert!(
            crashes > 0,
            "iteration {iter}: the schedule never crashed recovery"
        );
        assert!(
            report.undo.losers_found > 0 || report.undo.clrs_skipped > 0,
            "iteration {iter}: undo saw no loser work at all"
        );
        assert_flash_below_durable(&db);
        for t in 0..THREADS {
            for i in 0..keys_per_thread {
                assert_eq!(
                    db.get(key_of(t, i)).unwrap().as_deref(),
                    Some(format!("i{iter}-t{t}-{i}").as_bytes()),
                    "iteration {iter}: committed key lost"
                );
            }
            for i in 0..12u64 {
                assert_eq!(
                    db.get(key_of(t, 500_000 + i)).unwrap(),
                    None,
                    "iteration {iter}: loser byte visible at thread {t} slot {i}"
                );
            }
        }
    }
}

#[test]
fn cold_restart_loses_the_cache_but_not_the_data() {
    let db = stress_db();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                let txn = db.begin();
                for i in 0..50u64 {
                    db.put(txn, key_of(t, i), format!("t{t}-{i}").as_bytes())
                        .unwrap();
                }
                db.commit(txn).unwrap();
            });
        }
    });
    db.checkpoint().unwrap();
    db.crash();
    let report = db.restart_cold().unwrap();
    assert!(!report.cache_recovery.survived);
    assert_eq!(report.cache_recovery.entries_restored, 0);
    assert_eq!(
        report.pages_from_flash, 0,
        "cold restart must not see flash"
    );
    for t in 0..THREADS {
        for i in 0..50u64 {
            assert_eq!(
                db.get(key_of(t, i)).unwrap().as_deref(),
                Some(format!("t{t}-{i}").as_bytes()),
                "cold restart lost a committed key"
            );
        }
    }

    // And the next crash on the refilled cache recovers warm again.
    db.crash();
    let report = db.restart().unwrap();
    assert!(report.cache_recovery.survived);
    assert_flash_below_durable(&db);
}
