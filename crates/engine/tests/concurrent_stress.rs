//! Concurrency stress tests for the sharded engine — the CI gate that runs
//! in **release mode** (`cargo test --release -p face-engine --test
//! concurrent_stress`), because data races and lock-order bugs that survive
//! debug builds tend to bite only under optimisation.
//!
//! What is pinned down here:
//! * an 8-thread mixed put/get/delete load loses no updates, and the engine's
//!   shard-merged counters equal the sum of what each thread observed itself
//!   doing;
//! * a batch of concurrent commits produces correctly ordered, recoverable
//!   WAL records — crash + restart recovers every committed key — and group
//!   commit demonstrably amortises physical log flushes.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use face_cache::CachePolicyKind;
use face_engine::{Database, DeviceLatency, EngineConfig};

const THREADS: u64 = 8;

fn stress_db() -> Arc<Database> {
    Arc::new(
        Database::open(
            EngineConfig::in_memory()
                .buffer_frames(256)
                .buffer_shards(16)
                .table_buckets(4096)
                .flash_cache(CachePolicyKind::FaceGsc, 8192)
                .cache_shards(8),
        )
        .unwrap(),
    )
}

/// Keys are partitioned per thread: the engine page-latches but does not lock
/// rows, so "no lost updates" is asserted for the supported discipline
/// (disjoint write sets), exactly like the TPC-C driver's warehouse split.
fn key_of(thread: u64, i: u64) -> u64 {
    thread * 1_000_000 + i
}

#[derive(Default, Clone, Copy)]
struct Observed {
    puts: u64,
    gets: u64,
    deletes: u64,
    commits: u64,
}

/// What one worker reports: its op tally and the final value it committed
/// per key (`None` = deleted).
type ThreadOutcome = (Observed, HashMap<u64, Option<Vec<u8>>>);

#[test]
fn eight_thread_mixed_stress_loses_no_updates() {
    let db = stress_db();
    let keys_per_thread = 40u64;
    let rounds = 30u64;

    let mut per_thread: Vec<ThreadOutcome> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            handles.push(s.spawn(move || {
                let mut obs = Observed::default();
                let mut last: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
                for round in 0..rounds {
                    let txn = db.begin();
                    for i in 0..keys_per_thread {
                        let key = key_of(t, i);
                        // Mixed ops: mostly puts, a stripe of deletes, reads
                        // throughout.
                        if (round + i) % 5 == 4 {
                            let existed = db.delete(txn, key).unwrap();
                            if existed {
                                // The engine counts only deletes that removed
                                // a key; observe with the same semantics.
                                obs.deletes += 1;
                            }
                            assert_eq!(
                                existed,
                                last.get(&key).map(|v| v.is_some()).unwrap_or(false),
                                "thread {t} key {key}: delete saw stale state"
                            );
                            last.insert(key, None);
                        } else {
                            let value = format!("t{t}-k{i}-r{round}").into_bytes();
                            db.put(txn, key, &value).unwrap();
                            obs.puts += 1;
                            last.insert(key, Some(value));
                        }
                    }
                    db.commit(txn).unwrap();
                    obs.commits += 1;
                    // Read-your-writes across commits: nobody else touches
                    // this thread's keys, so any divergence is a lost update.
                    for i in (0..keys_per_thread).step_by(7) {
                        let key = key_of(t, i);
                        let got = db.get(key).unwrap();
                        obs.gets += 1;
                        assert_eq!(
                            got.as_deref(),
                            last.get(&key).and_then(|v| v.as_deref()),
                            "thread {t} key {key} lost an update at round {round}"
                        );
                    }
                }
                (obs, last)
            }));
        }
        for handle in handles {
            per_thread.push(handle.join().expect("worker panicked"));
        }
    });

    // Final state: every key holds exactly what its owning thread last
    // committed.
    for (obs_final, last) in &per_thread {
        let _ = obs_final;
        for (key, expect) in last {
            let got = db.get(*key).unwrap();
            assert_eq!(
                got.as_deref(),
                expect.as_deref(),
                "key {key}: final state diverged"
            );
        }
    }

    // Shard-merged engine counters equal the sum of per-thread observations.
    let stats = db.stats();
    let sum = per_thread
        .iter()
        .fold(Observed::default(), |acc, (o, _)| Observed {
            puts: acc.puts + o.puts,
            gets: acc.gets + o.gets,
            deletes: acc.deletes + o.deletes,
            commits: acc.commits + o.commits,
        });
    assert_eq!(stats.puts, sum.puts, "merged puts != sum of threads");
    // The final verification pass above also issued gets through the engine.
    let verification_gets: u64 = per_thread.iter().map(|(_, l)| l.len() as u64).sum();
    assert_eq!(stats.gets, sum.gets + verification_gets);
    assert_eq!(stats.deletes, sum.deletes);
    assert_eq!(stats.txns_committed, sum.commits);
    assert_eq!(stats.txns_started, sum.commits);

    // The flash cache saw real traffic under contention and its shard-merged
    // books balance.
    let buffer = db.buffer_stats();
    assert_eq!(buffer.misses, buffer.flash_hits + buffer.disk_fetches);
    if let Some(cache) = db.cache_stats() {
        assert!(cache.inserts >= cache.cached_inserts);
    }
}

#[test]
fn concurrent_group_commit_is_ordered_and_recoverable() {
    // A log device slow enough (2 ms per force) that committers pile up
    // behind the flush leader: group commit must amortise flushes, and the
    // resulting WAL must replay to exactly the committed state.
    let db = Arc::new(
        Database::open(
            EngineConfig::in_memory()
                .buffer_frames(512)
                .buffer_shards(16)
                .table_buckets(2048)
                .flash_cache(CachePolicyKind::FaceGsc, 4096)
                .device_latency(DeviceLatency {
                    log_sync: Duration::from_millis(2),
                    ..DeviceLatency::zero()
                }),
        )
        .unwrap(),
    );
    let txns_per_thread = 25u64;
    let puts_per_txn = 3u64;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..txns_per_thread {
                    let txn = db.begin();
                    for p in 0..puts_per_txn {
                        let key = key_of(t, i * puts_per_txn + p);
                        db.put(txn, key, format!("t{t}-{i}-{p}").as_bytes())
                            .unwrap();
                    }
                    db.commit(txn).unwrap();
                }
            });
        }
    });

    let commits = THREADS * txns_per_thread;
    let forces = db.wal_forces();
    let piggybacked = db.wal_piggybacked_forces();
    // Every physical flush was led either by a committer or by the tier's
    // write-ahead guard (a dirty eviction outrunning the durable horizon),
    // and every commit either led a flush or piggy-backed on one.
    let guard_flushes = db.tier_stats().wal_guard_forces;
    assert_eq!(forces + piggybacked, commits + guard_flushes);
    // ...and with 8 threads behind a 2 ms device, many commits must have
    // shared a leader's flush.
    assert!(
        piggybacked > 0 && forces < commits,
        "group commit never batched: {forces} flushes for {commits} commits"
    );

    // Crash and restart: the concurrently written log is correctly ordered
    // and replays every committed transaction.
    db.crash();
    let report = db.restart().unwrap();
    assert!(report.records_scanned >= commits * (puts_per_txn + 2));
    for t in 0..THREADS {
        for i in 0..txns_per_thread {
            for p in 0..puts_per_txn {
                let key = key_of(t, i * puts_per_txn + p);
                assert_eq!(
                    db.get(key).unwrap().as_deref(),
                    Some(format!("t{t}-{i}-{p}").as_bytes()),
                    "committed key {key} lost after crash"
                );
            }
        }
    }
}

#[test]
fn stress_survives_crash_restart_cycles() {
    // Alternate concurrent load with crash/restart cycles: what was committed
    // before each crash must be intact after recovery.
    let db = stress_db();
    for cycle in 0..3u64 {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    let txn = db.begin();
                    for i in 0..20u64 {
                        let key = key_of(t, i);
                        db.put(txn, key, format!("c{cycle}-t{t}-{i}").as_bytes())
                            .unwrap();
                    }
                    db.commit(txn).unwrap();
                });
            }
        });
        db.crash();
        db.restart().unwrap();
        for t in 0..THREADS {
            for i in 0..20u64 {
                let key = key_of(t, i);
                assert_eq!(
                    db.get(key).unwrap().as_deref(),
                    Some(format!("c{cycle}-t{t}-{i}").as_bytes()),
                    "cycle {cycle}: key {key} lost"
                );
            }
        }
    }
    assert_eq!(db.stats().txns_committed, 3 * THREADS);
}
