//! Seeded device-fault chaos tests — the CI `faults` gate that runs in
//! **release mode with the lockdep witness compiled in** (`cargo test
//! --release --features lockdep -p face-engine --test fault_stress`).
//!
//! Each scenario drives a concurrent commit workload through a
//! [`FaultPlan`]-wrapped device and then asserts the robustness contract:
//!
//! * **no panic** — every injected error travels a typed `Result` path;
//! * **no lost committed update** — every committed key reads back with its
//!   last committed value, either live (transient faults, write faults that
//!   fail over to disk) or after a crash-restart (permanent read faults,
//!   where WAL redo repairs what the dead flash slots dropped);
//! * **the degraded-mode counters move** — retries, quarantined slots,
//!   breaker trips and bypassed operations are observable through
//!   [`Database::degrade_stats`];
//! * **lockdep / iocheck stay clean** — with the witness enabled a lock
//!   order or I/O-under-lock violation panics the offending thread, so
//!   passing at all certifies the fault paths hold the same discipline as
//!   the happy paths.
//!
//! Every plan is seed-deterministic: the nth device operation always gets
//! the same verdict, so a failing run replays with the same fault sequence.

use std::sync::Arc;

use face_cache::{CachePolicyKind, DegradeConfig};
use face_engine::{Database, EngineConfig};
use face_pagestore::FaultPlan;

const THREADS: u64 = 4;
const KEYS_PER_THREAD: u64 = 150;

fn key_of(thread: u64, i: u64) -> u64 {
    thread * 1_000_000 + i
}

fn value_of(key: u64, round: u64) -> Vec<u8> {
    format!("r{round}-k{key}").into_bytes()
}

/// A small-buffer FaCE configuration so plenty of pages cross into (and
/// back out of) the flash cache while the workload runs.
fn faulty_db(plan: Arc<FaultPlan>, degrade: DegradeConfig) -> Arc<Database> {
    Arc::new(
        Database::open(
            EngineConfig::in_memory()
                .buffer_frames(32)
                .buffer_shards(8)
                .table_buckets(256)
                .flash_cache(CachePolicyKind::FaceGsc, 1024)
                .cache_shards(4)
                .degrade_config(degrade)
                .flash_faults(plan),
        )
        .unwrap(),
    )
}

/// Commit `KEYS_PER_THREAD` keys per thread (several transactions each) and
/// then read every key back through the faulty stack.
fn run_round(db: &Arc<Database>, round: u64) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(db);
            s.spawn(move || {
                for chunk in 0..5u64 {
                    let txn = db.begin();
                    for i in 0..KEYS_PER_THREAD / 5 {
                        let key = key_of(t, chunk * (KEYS_PER_THREAD / 5) + i);
                        db.put(txn, key, &value_of(key, round)).unwrap();
                    }
                    db.commit(txn).unwrap();
                }
            });
        }
    });
}

fn assert_all_committed_keys(db: &Database, round: u64) {
    for t in 0..THREADS {
        for i in 0..KEYS_PER_THREAD {
            let key = key_of(t, i);
            assert_eq!(
                db.get(key).unwrap().as_deref(),
                Some(value_of(key, round).as_slice()),
                "key {key} lost or stale"
            );
        }
    }
}

/// Scenario 1: a low rate of transient flash errors on both reads and
/// writes. The retry/absorb machinery must keep every operation succeeding
/// with the breaker still closed — the workload never notices the device
/// hiccuping.
#[test]
fn transient_flash_errors_are_absorbed() {
    let plan = Arc::new(
        FaultPlan::new(7)
            .probability(0.02)
            .transient()
            .max_faults(60),
    );
    // A high trip threshold keeps this scenario in the absorb/retry regime.
    let degrade = DegradeConfig {
        trip_threshold: 100_000,
        slot_failure_threshold: 100,
        ..DegradeConfig::default()
    };
    let db = faulty_db(Arc::clone(&plan), degrade);
    run_round(&db, 1);
    db.drain_destage().unwrap();
    assert_all_committed_keys(&db, 1);

    assert!(plan.faults_injected() > 0, "the plan never fired");
    let stats = db.degrade_stats().expect("cache configured");
    assert_eq!(stats.breaker, "closed", "breaker tripped in absorb regime");
    assert!(
        stats.transient_errors + stats.retries > 0,
        "no transient error ever surfaced to the degrade machinery: {stats:?}"
    );
}

/// Scenario 2: permanent read failures pinned to a slot range. The strikes
/// quarantine those slots out of the rotation, the mounting error tally
/// trips the breaker into disk-only mode, and a crash-restart replays the
/// WAL over the bypassed cache — no committed update is lost, even where
/// the flash bytes died unread.
///
/// While the device is failing, operations MAY return typed errors: a dirty
/// page whose only fresh copy died with a poisoned slot is *wounded* and
/// refuses reads (serving the stale disk copy would let later updates stamp
/// it with high LSNs and silently defeat WAL redo). The contract under test
/// is that every *successfully committed* transaction survives the crash.
#[test]
fn permanent_slot_failures_quarantine_then_trip_and_redo_repairs() {
    let plan = Arc::new(
        FaultPlan::new(13)
            .probability(1.0)
            .permanent()
            .reads_only()
            .slot_range(0, 16),
    );
    // Default thresholds: one strike quarantines a permanently failing
    // slot, eight total failures trip the breaker.
    let db = faulty_db(Arc::clone(&plan), DegradeConfig::default());

    // Fault-tolerant load: each chunk's transaction either commits whole or
    // is abandoned on the first wound error; only committed keys join the
    // expectation set.
    let committed = std::sync::Mutex::new(std::collections::HashSet::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let committed = &committed;
            s.spawn(move || {
                for chunk in 0..5u64 {
                    let txn = db.begin();
                    let keys: Vec<u64> = (0..KEYS_PER_THREAD / 5)
                        .map(|i| key_of(t, chunk * (KEYS_PER_THREAD / 5) + i))
                        .collect();
                    let ok = keys
                        .iter()
                        .all(|&key| db.put(txn, key, &value_of(key, 2)).is_ok());
                    if ok && db.commit(txn).is_ok() {
                        committed.lock().unwrap().extend(keys);
                    } else {
                        let _ = db.abort(txn);
                    }
                }
            });
        }
    });
    let committed = committed.into_inner().unwrap();
    assert!(
        !committed.is_empty(),
        "not a single transaction committed through the failing device"
    );
    let _ = db.drain_destage();
    // Touch every key so fetches land on the poisoned slots: early strikes
    // quarantine, then the error tally crosses the trip threshold. Errors
    // (wounded pages) are expected here; panics are not.
    for t in 0..THREADS {
        for i in 0..KEYS_PER_THREAD {
            let _ = db.get(key_of(t, i));
        }
    }
    let stats = db.degrade_stats().expect("cache configured");
    assert!(
        stats.quarantined_slots > 0,
        "no slot was quarantined: {stats:?}"
    );
    assert!(stats.permanent_errors > 0);
    assert_eq!(
        stats.breaker, "tripped",
        "sustained permanent failures must trip: {stats:?}"
    );

    // The breaker state survives the restart (same controller), so redo and
    // all post-restart traffic bypass the bad device; WAL replay over the
    // disk restores every committed key, including those whose only fresh
    // copy had been on a now-unreadable flash slot.
    db.crash();
    db.restart().unwrap();
    for &key in &committed {
        assert_eq!(
            db.get(key).unwrap().as_deref(),
            Some(value_of(key, 2).as_slice()),
            "committed key {key} lost or stale after redo"
        );
    }
    let stats = db.degrade_stats().expect("cache configured");
    assert_eq!(stats.breaker, "tripped");
    assert!(stats.bypassed_fetches > 0, "nothing bypassed: {stats:?}");
}

/// Scenario 3: permanent write failures hitting the destage pipeline's
/// group writes. Aborted groups must fail over to disk (write fallout), so
/// every committed key stays readable *live* — no crash needed, because a
/// failed write never destroys data that only exists elsewhere.
#[test]
fn mid_destage_batch_failure_fails_over_to_disk() {
    let plan = Arc::new(
        FaultPlan::new(23)
            .probability(0.15)
            .permanent()
            .writes_only()
            .max_faults(40),
    );
    let degrade = DegradeConfig {
        trip_threshold: 100_000,
        slot_failure_threshold: 100,
        ..DegradeConfig::default()
    };
    let db = faulty_db(Arc::clone(&plan), degrade);
    run_round(&db, 3);
    db.drain_destage().unwrap();
    assert_all_committed_keys(&db, 3);

    assert!(plan.faults_injected() > 0, "the plan never fired");
    let stats = db.degrade_stats().expect("cache configured");
    assert!(
        stats.write_errors > 0,
        "no write error reached the degrade machinery: {stats:?}"
    );
    let destage = db.destage_stats().expect("destager configured");
    assert!(
        destage.groups_aborted + destage.permanent_errors > 0,
        "the destager never saw the failing device: {destage:?}"
    );
}

/// Scenario 4: the plan stays dormant through the initial load, arms at the
/// crash, and injects transient faults into recovery itself. Redo must
/// retry through them and restore every committed key.
#[test]
fn faults_during_recovery_are_survived() {
    let plan = Arc::new(
        FaultPlan::new(31)
            .probability(0.1)
            .transient()
            .reads_only()
            .max_faults(50)
            .armed_on_crash(),
    );
    let degrade = DegradeConfig {
        trip_threshold: 100_000,
        slot_failure_threshold: 100,
        ..DegradeConfig::default()
    };
    let db = faulty_db(Arc::clone(&plan), degrade);
    run_round(&db, 4);
    db.drain_destage().unwrap();
    assert_eq!(plan.faults_injected(), 0, "dormant plan fired during load");

    db.crash();
    plan.arm();
    db.restart().unwrap();
    assert_all_committed_keys(&db, 4);
}

/// Scenario 4b: device faults injected into the *undo* path. The plan stays
/// dormant while committed and loser waves load (the losers' pages pushed
/// to flash by a checkpoint), then arms at the crash and throws transient
/// faults at recovery — whose undo pass must retry through them, roll every
/// loser back, and keep every committed key.
#[test]
fn faults_injected_into_undo_are_survived() {
    let plan = Arc::new(
        FaultPlan::new(61)
            .probability(0.1)
            .transient()
            .max_faults(50)
            .armed_on_crash(),
    );
    let degrade = DegradeConfig {
        trip_threshold: 100_000,
        slot_failure_threshold: 100,
        ..DegradeConfig::default()
    };
    let db = faulty_db(Arc::clone(&plan), degrade);
    run_round(&db, 8);
    // Loser wave: in-flight transactions over a disjoint high key range.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                let loser = db.begin();
                for i in 0..20u64 {
                    db.put(loser, key_of(t, 700_000 + i), b"loser bytes")
                        .unwrap();
                }
                // Never committed, never aborted.
            });
        }
    });
    // Persist the losers' pages so only undo can remove them.
    db.checkpoint().unwrap();
    db.drain_destage().unwrap();
    assert_eq!(plan.faults_injected(), 0, "dormant plan fired during load");

    db.crash();
    plan.arm();
    // Crash recovery once mid-way for good measure, then let it finish
    // through the faulting device.
    db.arm_restart_crash(40);
    let report = match db.restart() {
        Err(face_engine::EngineError::Crashed) => db.restart().unwrap(),
        Ok(report) => report,
        Err(other) => panic!("unexpected recovery error: {other}"),
    };
    assert!(
        report.undo.losers_found > 0 || report.undo.clrs_skipped > 0,
        "no loser reached the undo pass: {report:?}"
    );
    assert_all_committed_keys(&db, 8);
    for t in 0..THREADS {
        for i in 0..20u64 {
            assert_eq!(
                db.get(key_of(t, 700_000 + i)).unwrap(),
                None,
                "loser byte visible at thread {t} slot {i}"
            );
        }
    }
}

/// Scenario 5: a permanent whole-device error trips the breaker into
/// disk-only degraded mode — the engine keeps serving reads and writes off
/// the disk — and `heal_flash` brings the (replaced) device back cold.
#[test]
fn breaker_trips_to_disk_only_and_heals() {
    let plan = Arc::new(
        FaultPlan::new(47)
            .arm_after(200)
            .probability(1.0)
            .permanent()
            .device_scoped()
            .max_faults(1),
    );
    let db = faulty_db(Arc::clone(&plan), DegradeConfig::default());
    run_round(&db, 5);
    db.drain_destage().unwrap();
    assert_eq!(plan.faults_injected(), 1, "the device fault never fired");

    // More load after the fault: the first foreground operation claims the
    // trip (evacuating dirty flash pages), then everything bypasses flash.
    run_round(&db, 6);
    db.drain_destage().unwrap();
    assert_all_committed_keys(&db, 6);
    let stats = db.degrade_stats().expect("cache configured");
    assert_eq!(stats.breaker, "tripped", "breaker never tripped: {stats:?}");
    assert_eq!(stats.trips, 1);
    assert!(
        stats.bypassed_inserts + stats.bypassed_fetches > 0,
        "tripped breaker bypassed nothing: {stats:?}"
    );

    // Heal: the cache restarts cold and the breaker closes. The plan's
    // fault budget is spent, so the "replaced" device behaves.
    db.heal_flash().unwrap();
    let stats = db.degrade_stats().expect("cache configured");
    assert_eq!(stats.breaker, "closed", "heal did not close the breaker");
    assert_eq!(stats.heals, 1);
    run_round(&db, 7);
    db.drain_destage().unwrap();
    assert_all_committed_keys(&db, 7);
    let cache = db.cache_stats().expect("cache configured");
    assert!(cache.inserts > 0, "healed cache admits nothing: {cache:?}");
}
