//! Read-path stress tests for the lock-light fetch protocol — the CI gate
//! that runs in **release mode** (`cargo test --release -p face-engine
//! --test read_stress`), because optimistic-read races that survive debug
//! builds tend to bite only under optimisation.
//!
//! What is pinned down here:
//! * readers hammering `get` while writers churn the flash cache (destager
//!   on, groups destaged and slots reused underneath them) never observe a
//!   torn page (value/key mismatch) and never observe time running backwards
//!   (a stale wash-table or disk copy served after a newer version was
//!   readable) — and the generation-validation retry path is *actually
//!   exercised* (`CacheStats::fetch_retries > 0`), not just never needed;
//! * with the crash-point gated store holding the flash batch write open,
//!   reads of in-flight deferred groups are served from their shared RAM
//!   frames while a destage worker is parked mid-device-write.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use face_cache::{CachePolicyKind, FlashStore, GateFlashStore};
use face_engine::config::FlashStoreFactory;
use face_engine::{Database, EngineConfig};
use face_pagestore::Page;

/// The crash-point store with a read-side magnifier: every slot read costs
/// `delay`, widening the pin → validate window so eviction races that would
/// need millions of iterations to surface at memory speed occur reliably.
/// Writes and gates pass through to the [`GateFlashStore`].
struct SlowReadStore {
    inner: Arc<GateFlashStore>,
    delay: Duration,
}

impl FlashStore for SlowReadStore {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }
    fn write_slot(&self, slot: usize, page: &Page) -> face_pagestore::DeviceResult<()> {
        self.inner.write_slot(slot, page)
    }
    fn write_batch(&self, writes: &[(usize, &Page)]) -> face_pagestore::DeviceResult<()> {
        self.inner.write_batch(writes)
    }
    fn read_slot(&self, slot: usize) -> face_pagestore::DeviceResult<Option<Page>> {
        std::thread::sleep(self.delay);
        self.inner.read_slot(slot)
    }
    fn carries_data(&self) -> bool {
        true
    }
    fn clear(&self) {
        self.inner.clear();
    }
    fn clear_slot(&self, slot: usize) {
        self.inner.clear_slot(slot);
    }
}

const KEYS: u64 = 1024;

/// The per-shard gated stores collected by the injected factory.
type Gates = Arc<std::sync::Mutex<Vec<Arc<GateFlashStore>>>>;

fn value_for(key: u64, round: u64) -> [u8; 16] {
    let mut v = [0u8; 16];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..].copy_from_slice(&round.to_le_bytes());
    v
}

/// A cache too small for the bucket pages, so slots dequeue and get reused
/// constantly underneath the readers; reads pay 200 µs at the device, so a
/// pinned slot routinely loses its generation mid-read.
fn stress_db(read_delay: Duration) -> (Arc<Database>, Gates) {
    let gates: Gates = Arc::new(std::sync::Mutex::new(Vec::new()));
    let gates_for_factory = Arc::clone(&gates);
    let db = Arc::new(
        Database::open(
            EngineConfig::in_memory()
                .buffer_frames(128)
                .buffer_shards(8)
                .table_buckets(1024)
                .flash_cache(CachePolicyKind::FaceGsc, 256)
                .cache_shards(2)
                .destage_threads(2)
                .flash_store_factory(FlashStoreFactory::new(move |capacity| {
                    let gate = Arc::new(GateFlashStore::new(capacity));
                    gate.release(); // writes flow unless a test closes them
                    gates_for_factory.lock().unwrap().push(Arc::clone(&gate));
                    Arc::new(SlowReadStore {
                        inner: gate,
                        delay: read_delay,
                    }) as Arc<dyn FlashStore>
                })),
        )
        .unwrap(),
    );
    (db, gates)
}

fn load(db: &Arc<Database>) {
    let mut key = 0;
    while key < KEYS {
        let txn = db.begin();
        for k in key..(key + 64).min(KEYS) {
            db.put(txn, k, &value_for(k, 0)).unwrap();
        }
        db.commit(txn).unwrap();
        key += 64;
    }
}

#[test]
fn readers_survive_concurrent_destage_and_eviction() {
    let (db, _gates) = stress_db(Duration::from_micros(200));
    assert!(db.cache_stats().is_some());
    load(&db);

    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut exercised = false;
    while !exercised && Instant::now() < deadline {
        std::thread::scope(|s| {
            // Two writers churning disjoint halves of the key space: every
            // put dirties a bucket page, evicts through the buffer into the
            // 256-slot cache, and forces dequeues + slot reuse.
            for w in 0..2u64 {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let half = KEYS / 2;
                    let mut round = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        let txn = db.begin();
                        for i in 0..16 {
                            let key = w * half + (round * 31 + i * 17) % half;
                            db.put(txn, key, &value_for(key, round)).unwrap();
                        }
                        db.commit(txn).unwrap();
                        round += 1;
                    }
                });
            }
            // Four readers over the whole key space. Each checks both halves
            // of the contract: the value belongs to the key it asked for
            // (no torn or foreign page), and per-key rounds never regress
            // (no stale wash-table/disk copy served after a newer version).
            let mut readers = Vec::new();
            for r in 0..4u64 {
                let db = Arc::clone(&db);
                readers.push(s.spawn(move || {
                    let mut state = 0x9E37_79B9_u64.wrapping_mul(r + 1);
                    let mut last_seen: HashMap<u64, u64> = HashMap::new();
                    for _ in 0..2_000 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let key = (state >> 16) % KEYS;
                        let val = db.get(key).unwrap().expect("loaded key vanished");
                        assert_eq!(val.len(), 16, "torn value");
                        let k = u64::from_le_bytes(val[..8].try_into().unwrap());
                        assert_eq!(k, key, "read returned another page's bytes");
                        let round = u64::from_le_bytes(val[8..].try_into().unwrap());
                        let last = last_seen.entry(key).or_insert(0);
                        assert!(
                            round >= *last,
                            "stale read: key {key} went from round {last} back to {round}"
                        );
                        *last = round;
                    }
                }));
            }
            for reader in readers {
                reader.join().expect("reader panicked");
            }
            stop.store(true, Ordering::Relaxed);
        });
        stop.store(false, Ordering::Relaxed);
        exercised = db.cache_stats().unwrap().fetch_retries > 0;
    }

    let cache = db.cache_stats().unwrap();
    assert!(
        exercised,
        "the generation-validation retry path was never exercised \
         (lookups {}, hits {})",
        cache.lookups, cache.hits
    );
    assert!(cache.hits > 0, "readers never reached the flash cache");
    let destage = db.destage_stats().unwrap();
    assert!(
        destage.groups_completed > 0,
        "the destager was not actually running"
    );
    // Quiesced now: the engine still answers consistently.
    for key in 0..KEYS {
        let val = db.get(key).unwrap().expect("key lost after the storm");
        assert_eq!(u64::from_le_bytes(val[..8].try_into().unwrap()), key);
    }
}

#[test]
fn inflight_groups_serve_reads_while_destage_write_is_parked() {
    // No read delay: this test parks the *write* side (a crash-point store
    // holding the flash batch), and reads of the in-flight group must come
    // from the shared RAM frames without ever touching the parked device.
    let (db, gates) = stress_db(Duration::ZERO);
    load(&db);
    db.drain_destage().unwrap();

    // Close the write gates: the next filled groups park a destage worker
    // mid-device-write ("written but unsealed" crash point territory).
    for gate in gates.lock().unwrap().iter() {
        gate.hold_writes();
    }
    let hot: Vec<u64> = (0..64).collect();
    let txn = db.begin();
    for &key in &hot {
        db.put(txn, key, &value_for(key, 7)).unwrap();
    }
    db.commit(txn).unwrap();
    // Spill the dirty pages out of the DRAM buffer so they enter cache
    // groups (whose physical writes are now parked at the gate).
    let filler = db.begin();
    for key in KEYS..KEYS + 256 {
        db.put(filler, key, &value_for(key, 1)).unwrap();
    }
    db.commit(filler).unwrap();

    // Every hot key must read back its round-7 value right now — from DRAM,
    // from an in-flight RAM frame, or from the wash table — never the stale
    // flash/disk copy, and never blocking on the parked device write.
    let start = Instant::now();
    for &key in &hot {
        let val = db.get(key).unwrap().expect("hot key vanished");
        assert_eq!(u64::from_le_bytes(val[..8].try_into().unwrap()), key);
        let round = u64::from_le_bytes(val[8..].try_into().unwrap());
        assert!(round >= 7, "key {key} served a pre-update round {round}");
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "reads blocked behind the parked destage write"
    );

    for gate in gates.lock().unwrap().iter() {
        gate.release();
    }
    db.drain_destage().unwrap();
    for &key in &hot {
        let val = db.get(key).unwrap().unwrap();
        let round = u64::from_le_bytes(val[8..].try_into().unwrap());
        assert!(round >= 7);
    }
}
