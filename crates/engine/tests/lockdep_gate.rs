//! Engine-level lockdep gate: a concurrent mixed workload over the full
//! FaCE stack must complete with zero lock-order violations and zero
//! unacknowledged device operations under a `forbids_io` lock.
//!
//! The witness counters are process-global, so this file is the CI gate:
//! any violation recorded anywhere during these scenarios fails the final
//! assertion. When `LOCKDEP_DOT` names a path, the observed acquisition-order
//! graph is rendered there as Graphviz DOT (uploaded as a CI artifact).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use face_analysis::witness;
use face_engine::{CachePolicyKind, Database, EngineConfig};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 300;
const KEY_SPACE: u64 = 64;

/// Run a mixed put/get/delete workload from several threads, then force the
/// maintenance paths (checkpoint, destage drain, crash + warm restart).
fn hammer(db: &Arc<Database>) {
    let seed = AtomicU64::new(1);
    thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(db);
            let base = seed.fetch_add(0x9e37, Ordering::Relaxed) + t as u64;
            s.spawn(move || {
                let mut x = base | 1;
                for i in 0..OPS_PER_THREAD {
                    // xorshift keeps the mix deterministic per thread.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_SPACE;
                    match x % 10 {
                        0..=4 => {
                            let txn = db.begin();
                            let value = vec![(x % 251) as u8; 64];
                            db.put(txn, key, &value).unwrap();
                            db.commit(txn).unwrap();
                        }
                        5..=8 => {
                            let _ = db.get(key).unwrap();
                        }
                        _ => {
                            let txn = db.begin();
                            let _ = db.delete(txn, key).unwrap();
                            db.commit(txn).unwrap();
                        }
                    }
                    if i % 100 == 99 {
                        db.drain_destage().unwrap();
                    }
                }
            });
        }
    });
    db.checkpoint().unwrap();
    db.drain_destage().unwrap();
    db.crash();
    db.restart().unwrap();
    // The restarted engine must still serve reads.
    for key in 0..KEY_SPACE {
        let _ = db.get(key).unwrap();
    }
}

fn scenario(policy: CachePolicyKind, lock_light: bool) {
    let config = EngineConfig::in_memory()
        .buffer_frames(32)
        .flash_cache(policy, 128)
        .cache_shards(2)
        .buffer_shards(2)
        .destage_threads(2)
        .lock_light_reads(lock_light);
    let db = Arc::new(Database::open(config).unwrap());
    hammer(&db);
}

fn scenario_ghosted(policy: CachePolicyKind, lock_light: bool) {
    let mut config = EngineConfig::in_memory()
        .buffer_frames(32)
        .flash_cache(policy, 128)
        .cache_shards(2)
        .buffer_shards(2)
        .destage_threads(2)
        .lock_light_reads(lock_light);
    config.cache_config.ghost_admission = true;
    let db = Arc::new(Database::open(config).unwrap());
    hammer(&db);
}

#[test]
fn concurrent_engine_has_no_lockdep_violations() {
    if !face_analysis::enabled() {
        eprintln!("lockdep witness compiled out; gate is a no-op");
        return;
    }

    for policy in [
        CachePolicyKind::Face,
        CachePolicyKind::FaceGr,
        CachePolicyKind::FaceGsc,
        CachePolicyKind::S3Fifo,
    ] {
        for lock_light in [false, true] {
            scenario(policy, lock_light);
        }
    }
    // The synchronous baselines exercise the allow-scoped under-lock paths.
    scenario(CachePolicyKind::Lc, false);
    scenario(CachePolicyKind::Tac, false);
    // The ghost-admission filter nests its stripe inside the shard lock —
    // cover it over both the GSC write path and TAC's on-entry path.
    scenario_ghosted(CachePolicyKind::FaceGsc, true);
    scenario_ghosted(CachePolicyKind::Tac, false);

    if let Ok(path) = std::env::var("LOCKDEP_DOT") {
        if !path.is_empty() {
            std::fs::write(&path, face_analysis::dot::render()).unwrap();
            eprintln!("wrote acquisition-order graph to {path}");
        }
    }

    let order = witness::order_violation_count();
    let io = witness::io_violation_count();
    assert_eq!(
        (order, io),
        (0, 0),
        "lockdep violations recorded:\n{}",
        witness::reports().join("\n")
    );
    // Sanity: the witness actually watched something.
    assert!(
        !witness::edges().is_empty(),
        "no acquisition edges recorded — is the witness wired in?"
    );
}
