//! Crash-anywhere proptest for restart undo.
//!
//! Property: after a crash with a loser transaction in flight — whatever the
//! loser wrote, whether its pages were persisted (checkpoint) or merely its
//! records made durable (a later commit's log force), and wherever recovery
//! itself is crashed (`Database::arm_restart_crash` counts down redo and
//! undo page applications alike) — recovery converges, committed values are
//! intact, and **no loser byte is visible**. A final unarmed crash-restart
//! round asserts the recovered state is a fixpoint.

use std::collections::HashMap;

use face_cache::CachePolicyKind;
use face_engine::{Database, EngineConfig, EngineError};
use proptest::prelude::*;

fn small_db() -> Database {
    Database::open(
        EngineConfig::in_memory()
            .buffer_frames(8)
            .table_buckets(64)
            .flash_cache(CachePolicyKind::FaceGsc, 128),
    )
    .unwrap()
}

fn arb_value() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_loser_byte_survives_any_crash_point(
        committed in prop::collection::vec((0..40u64, arb_value()), 1..20),
        loser_puts in prop::collection::vec((0..60u64, arb_value()), 1..16),
        loser_deletes in prop::collection::vec(0..40u64, 0..4),
        checkpoint_after in any::<bool>(),
        commit_after in any::<bool>(),
        crash_budget in 0..40u64,
    ) {
        let db = small_db();

        // Committed baseline (later writes win per key).
        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
        let setup = db.begin();
        for (k, v) in &committed {
            if db.put(setup, *k, v).is_ok() {
                expected.insert(*k, v.clone());
            }
        }
        db.commit(setup).unwrap();

        // The loser: overwrites committed keys, inserts fresh ones, deletes.
        let loser = db.begin();
        for (k, v) in &loser_puts {
            let _ = db.put(loser, *k, v);
        }
        for k in &loser_deletes {
            let _ = db.delete(loser, *k);
        }
        if checkpoint_after {
            // Persist the loser's pages into the flash cache (WAL-ahead
            // guard forces its records first): the hardest case for
            // recovery, beyond redo-only reach.
            db.checkpoint().unwrap();
        }
        if commit_after {
            // An unrelated commit forces the log: the loser's records are
            // durable even though its pages may not be.
            let t = db.begin();
            db.put(t, 999, b"forcer").unwrap();
            db.commit(t).unwrap();
            expected.insert(999, b"forcer".to_vec());
        }
        db.crash();

        // Crash recovery itself at the sampled point, then keep restarting
        // until it completes.
        db.arm_restart_crash(crash_budget);
        let mut attempts = 0;
        loop {
            match db.restart() {
                Ok(_) => break,
                Err(EngineError::Crashed) => {
                    attempts += 1;
                    prop_assert!(attempts < 100, "recovery never converged");
                }
                Err(other) => panic!("recovery error: {other}"),
            }
        }

        let check = |db: &Database| {
            for (k, v) in &expected {
                prop_assert_eq!(
                    db.get(*k).unwrap().as_deref(),
                    Some(v.as_slice()),
                    "committed key {} lost or stale",
                    k
                );
            }
            for (k, _) in &loser_puts {
                if !expected.contains_key(k) {
                    prop_assert_eq!(
                        db.get(*k).unwrap(),
                        None,
                        "loser byte visible at key {}",
                        k
                    );
                }
            }
        };
        check(&db);

        // The recovered state is a fixpoint: another (unarmed) crash-restart
        // changes nothing and finds no undo work left.
        db.crash();
        let report = db.restart().unwrap();
        prop_assert_eq!(report.undo.updates_undone, 0, "undo work resurfaced");
        check(&db);
    }
}
