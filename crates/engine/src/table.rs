//! The slotted-page record layout used by the key-value table layer.
//!
//! Each table bucket is one page. The page body is divided into fixed-size
//! slots of [`SLOT_SIZE`] bytes, each holding a used flag, a 64-bit key, a
//! length and up to [`VALUE_CAPACITY`] bytes of value. Keys hash to a bucket
//! page; collisions within a page use the next free slot. This deliberately
//! simple layout keeps the record layer out of the way of what the
//! reproduction studies — the buffer and flash cache behaviour — while still
//! exercising real page contents, LSNs and redo.

use face_pagestore::{Page, PAGE_BODY_SIZE};

/// Bytes per record slot.
pub const SLOT_SIZE: usize = 128;

/// Maximum value length storable in a slot.
pub const VALUE_CAPACITY: usize = SLOT_SIZE - 1 - 8 - 2;

/// Number of slots per page.
pub const SLOTS_PER_PAGE: usize = PAGE_BODY_SIZE / SLOT_SIZE;

/// Where a record landed inside a page, expressed as a body offset and the
/// bytes written — exactly what the redo log record needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotWrite {
    /// Byte offset within the page body.
    pub offset: usize,
    /// The bytes written at that offset (the slot image).
    pub bytes: Vec<u8>,
}

/// Outcome of a put against a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PutOutcome {
    /// The key was inserted into a previously free slot.
    Inserted(SlotWrite),
    /// The key existed and its value was replaced.
    Updated(SlotWrite),
    /// No free slot is available for this key.
    PageFull,
}

fn slot_offset(slot: usize) -> usize {
    slot * SLOT_SIZE
}

fn encode_slot(key: u64, value: &[u8]) -> Vec<u8> {
    debug_assert!(value.len() <= VALUE_CAPACITY);
    let mut bytes = vec![0u8; SLOT_SIZE];
    bytes[0] = 1;
    bytes[1..9].copy_from_slice(&key.to_le_bytes());
    bytes[9..11].copy_from_slice(&(value.len() as u16).to_le_bytes());
    bytes[11..11 + value.len()].copy_from_slice(value);
    bytes
}

fn decode_slot(page: &Page, slot: usize) -> Option<(u64, Vec<u8>)> {
    let off = slot_offset(slot);
    let raw = page.read_body(off, SLOT_SIZE);
    if raw[0] != 1 {
        return None;
    }
    let key = u64::from_le_bytes(raw[1..9].try_into().unwrap());
    let len = u16::from_le_bytes(raw[9..11].try_into().unwrap()) as usize;
    Some((key, raw[11..11 + len].to_vec()))
}

/// Find the slot holding `key`, if any.
pub fn find_slot(page: &Page, key: u64) -> Option<usize> {
    (0..SLOTS_PER_PAGE).find(|&s| matches!(decode_slot(page, s), Some((k, _)) if k == key))
}

/// Read the value stored for `key`.
pub fn get(page: &Page, key: u64) -> Option<Vec<u8>> {
    let slot = find_slot(page, key)?;
    decode_slot(page, slot).map(|(_, v)| v)
}

/// Insert or update `key` with `value`, returning the slot image written so
/// the caller can log it for redo.
pub fn put(page: &mut Page, key: u64, value: &[u8]) -> PutOutcome {
    put_with_undo(page, key, value).0
}

/// Like [`put`], but also returns the overwritten slot's pre-image (exactly
/// the bytes an abort must restore). Capturing just the slot keeps the
/// engine's page-latched write path from copying the whole page body.
pub fn put_with_undo(page: &mut Page, key: u64, value: &[u8]) -> (PutOutcome, Option<Vec<u8>>) {
    assert!(
        value.len() <= VALUE_CAPACITY,
        "value exceeds slot capacity; enforce at the engine layer"
    );
    let (slot, existed) = match find_slot(page, key) {
        Some(slot) => (Some(slot), true),
        None => (
            (0..SLOTS_PER_PAGE).find(|&s| decode_slot(page, s).is_none()),
            false,
        ),
    };
    let Some(slot) = slot else {
        return (PutOutcome::PageFull, None);
    };
    let offset = slot_offset(slot);
    let undo = page.read_body(offset, SLOT_SIZE).to_vec();
    let bytes = encode_slot(key, value);
    page.write_body(offset, &bytes);
    let write = SlotWrite { offset, bytes };
    let outcome = if existed {
        PutOutcome::Updated(write)
    } else {
        PutOutcome::Inserted(write)
    };
    (outcome, Some(undo))
}

/// Remove `key` from the page. Returns the slot image written (a cleared
/// slot) or `None` if the key was absent.
pub fn delete(page: &mut Page, key: u64) -> Option<SlotWrite> {
    delete_with_undo(page, key).map(|(write, _)| write)
}

/// Like [`delete`], but also returns the removed slot's pre-image for the
/// caller's undo log.
pub fn delete_with_undo(page: &mut Page, key: u64) -> Option<(SlotWrite, Vec<u8>)> {
    let slot = find_slot(page, key)?;
    let offset = slot_offset(slot);
    let undo = page.read_body(offset, SLOT_SIZE).to_vec();
    let bytes = vec![0u8; SLOT_SIZE];
    page.write_body(offset, &bytes);
    Some((SlotWrite { offset, bytes }, undo))
}

/// Number of live records in the page.
pub fn record_count(page: &Page) -> usize {
    (0..SLOTS_PER_PAGE)
        .filter(|&s| decode_slot(page, s).is_some())
        .count()
}

/// Iterate all live `(key, value)` pairs in the page.
pub fn scan(page: &Page) -> Vec<(u64, Vec<u8>)> {
    (0..SLOTS_PER_PAGE)
        .filter_map(|s| decode_slot(page, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use face_pagestore::PageId;

    fn page() -> Page {
        Page::new(PageId::new(1, 0))
    }

    #[test]
    fn put_get_round_trip() {
        let mut p = page();
        let out = put(&mut p, 42, b"hello");
        assert!(matches!(out, PutOutcome::Inserted(_)));
        assert_eq!(get(&p, 42).unwrap(), b"hello");
        assert_eq!(get(&p, 43), None);
        assert_eq!(record_count(&p), 1);
    }

    #[test]
    fn update_replaces_value_in_place() {
        let mut p = page();
        put(&mut p, 7, b"first");
        let out = put(&mut p, 7, b"second value");
        assert!(matches!(out, PutOutcome::Updated(_)));
        assert_eq!(get(&p, 7).unwrap(), b"second value");
        assert_eq!(record_count(&p), 1);
    }

    #[test]
    fn multiple_keys_coexist() {
        let mut p = page();
        for k in 0..10u64 {
            put(&mut p, k + 1, format!("value-{k}").as_bytes());
        }
        assert_eq!(record_count(&p), 10);
        for k in 0..10u64 {
            assert_eq!(get(&p, k + 1).unwrap(), format!("value-{k}").as_bytes());
        }
        let mut all = scan(&p);
        all.sort();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].0, 1);
    }

    #[test]
    fn page_fills_up_cleanly() {
        let mut p = page();
        for k in 0..SLOTS_PER_PAGE as u64 {
            assert!(!matches!(put(&mut p, k + 1, b"x"), PutOutcome::PageFull));
        }
        assert!(matches!(
            put(&mut p, 10_000, b"overflow"),
            PutOutcome::PageFull
        ));
        assert_eq!(record_count(&p), SLOTS_PER_PAGE);
        // Updating an existing key still works when full.
        assert!(matches!(put(&mut p, 1, b"new"), PutOutcome::Updated(_)));
    }

    #[test]
    fn delete_frees_the_slot() {
        let mut p = page();
        put(&mut p, 5, b"to delete");
        assert!(delete(&mut p, 5).is_some());
        assert!(delete(&mut p, 5).is_none());
        assert_eq!(get(&p, 5), None);
        assert_eq!(record_count(&p), 0);
        // The freed slot is reusable.
        put(&mut p, 6, b"reuse");
        assert_eq!(get(&p, 6).unwrap(), b"reuse");
    }

    #[test]
    fn slot_write_describes_redo_image() {
        let mut p = page();
        let PutOutcome::Inserted(w) = put(&mut p, 9, b"redo me") else {
            panic!("expected insert");
        };
        // Applying the same bytes at the same offset to a fresh page
        // reproduces the record — exactly what redo does.
        let mut replay = page();
        replay.write_body(w.offset, &w.bytes);
        assert_eq!(get(&replay, 9).unwrap(), b"redo me");
    }

    #[test]
    fn max_value_capacity_fits() {
        let mut p = page();
        let big = vec![0xAB; VALUE_CAPACITY];
        put(&mut p, 1, &big);
        assert_eq!(get(&p, 1).unwrap(), big);
    }

    #[test]
    #[should_panic(expected = "slot capacity")]
    fn oversized_value_panics_at_this_layer() {
        let mut p = page();
        let too_big = vec![0u8; VALUE_CAPACITY + 1];
        put(&mut p, 1, &too_big);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// The slotted page behaves exactly like a bounded map under any
            /// interleaving of puts, deletes and gets.
            #[test]
            fn page_matches_map_model(
                ops in prop::collection::vec(
                    (0u8..3, 1u64..40, prop::collection::vec(any::<u8>(), 0..32)),
                    1..120,
                )
            ) {
                let mut p = page();
                let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
                for (op, key, value) in ops {
                    match op {
                        0 => {
                            match put(&mut p, key, &value) {
                                PutOutcome::PageFull => {
                                    prop_assert!(model.len() >= SLOTS_PER_PAGE);
                                }
                                _ => {
                                    model.insert(key, value);
                                }
                            }
                        }
                        1 => {
                            let removed = delete(&mut p, key).is_some();
                            prop_assert_eq!(removed, model.remove(&key).is_some());
                        }
                        _ => {
                            prop_assert_eq!(get(&p, key), model.get(&key).cloned());
                        }
                    }
                    prop_assert_eq!(record_count(&p), model.len());
                }
                for (k, v) in &model {
                    let stored = get(&p, *k);
                    prop_assert_eq!(stored.as_deref(), Some(v.as_slice()));
                }
            }
        }
    }
}
